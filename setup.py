"""Setuptools entry point.

Kept as a legacy ``setup.py`` (metadata in ``setup.cfg``) so that editable
installs work in offline environments that lack the ``wheel`` package —
PEP 517 editable builds require ``bdist_wheel``, the legacy path does not.
"""

from setuptools import setup

setup()
