"""Fig 11: ratio of attack sources handled by VIF filters at Top-n IXPs.

Paper result (both source datasets): with the single largest IXP per region
(5 IXPs total), the median victim gets ~60% of its attack sources covered
and the upper quartile 70-80%; Top-5 per region (25 IXPs) pushes medians
past 75% and upper quartiles to 80-90%.

Default run: 60 victims on the ~1,000-AS synthetic Internet (seconds).
VIF_BENCH_FULL=1: 1,000 victims as in the paper.
"""

from benchmarks.conftest import emit, full_scale
from repro.interdomain import (
    dns_resolver_population,
    generate_internet,
    ixp_coverage,
    mirai_bot_population,
)
from repro.interdomain.simulation import choose_victims, coverage_rows
from repro.util.tables import format_table


def test_fig11_coverage(benchmark):
    graph, ixps = generate_internet()
    num_victims = 1000 if full_scale() else 60
    victims = choose_victims(graph, min(num_victims, 800))
    populations = {
        "vulnerable DNS resolvers": dns_resolver_population(graph),
        "Mirai botnet": mirai_bot_population(graph),
    }

    results = {}

    def run_all():
        for label, population in populations.items():
            results[label] = ixp_coverage(graph, ixps, victims, population)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for label, result in results.items():
        emit(
            format_table(
                ["selection", "p5", "p25", "median", "p75", "p95"],
                coverage_rows(result),
                title=f"Fig 11 — attack sources handled by VIF IXPs ({label})",
            )
        )
        top1 = result.summary(1)
        top5 = result.summary(5)
        # The paper's bands.
        assert 0.45 < top1.median < 0.80
        assert top5.median > 0.65
        assert top5.p75 > 0.75
        # Monotone in the number of deployed IXPs.
        medians = [result.median(level) for level in (1, 2, 3, 4, 5)]
        assert medians == sorted(medians)
