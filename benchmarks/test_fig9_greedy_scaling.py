"""Fig 9: greedy running time for k = 10 K ... 150 K rules at 500 Gb/s.

Paper: mean runtimes grow roughly linearly and stay under 40 s even at
150 K rules — "near real-time dynamic filter rule re-distribution".

Default run sweeps 10 K/20 K/40 K (a few seconds); VIF_BENCH_FULL=1 runs
the paper's full 10 K..150 K grid.
"""

import time

import pytest

from benchmarks.conftest import emit, full_scale
from repro.optim.greedy import greedy_solve
from repro.optim.problem import RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.stats import lognormal_bandwidths
from repro.util.tables import format_table
from repro.util.units import GBPS

pytestmark = pytest.mark.slow


def test_fig9_greedy_scaling(benchmark):
    ks = (
        list(range(10_000, 150_001, 20_000))
        if full_scale()
        else [10_000, 20_000, 40_000]
    )
    rows = []
    times = []
    for k in ks:
        bandwidths = lognormal_bandwidths(k, 500 * GBPS, seed=k)
        problem = RuleDistributionProblem(bandwidths=bandwidths)
        start = time.perf_counter()
        allocation = greedy_solve(problem)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        assert validate_allocation(allocation) == []
        rows.append([k, f"{elapsed:.2f}", len(allocation.assignments)])

    emit(
        format_table(
            ["k rules", "greedy time (s)", "enclaves"],
            rows,
            title="Fig 9 — greedy runtime, 500 Gb/s lognormal workload "
                  "(paper: <= 40 s at 150 K)",
        )
    )
    # Near-real-time at every tested size; the paper's 40 s budget holds
    # with wide margin at the scaled sizes and must also hold full-scale.
    assert all(t < 40.0 for t in times)
    # Roughly monotone growth in k.
    assert times[-1] >= times[0]

    benchmark.pedantic(
        greedy_solve,
        args=(
            RuleDistributionProblem(
                bandwidths=lognormal_bandwidths(ks[0], 500 * GBPS, seed=1)
            ),
        ),
        rounds=2,
        iterations=1,
    )
