"""Multi-core sharded data plane: equivalence gate + scaling report.

PR convention: CI asserts *deterministic* properties — here, that the
sharded plane's verdicts and centrally merged sketch logs are bit-identical
to one single-process filter over the same trace, for every worker count.
The throughput numbers are CPU-time based (each worker measures its own
``time.process_time``), so the bottleneck-stage packets/sec — the
multi-queue projection of what the plane sustains with one core per
worker — is meaningful even on a single-core CI host, and the 4-worker
speedup gate holds without trusting wall clock.  Wall-clock rates are
emitted alongside for honesty about the host actually running this.

Everything lands in ``BENCH_shard_scaling.json`` (uploaded from CI's
``bench-out/`` artifact directory).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit, emit_metrics_snapshot, full_scale
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.dataplane.shard import ShardedDataPlane, run_single_process_reference

WORKER_COUNTS = (1, 2, 4)
#: Minimum bottleneck-pps speedup required at 4 workers vs 1.
MIN_SPEEDUP_AT_4 = 1.5
#: Runs per worker count; best-of filters scheduler noise on shared hosts.
REPEATS = 2


def _mixed_rules(n=200):
    """Deterministic + probabilistic rules over nested, non-stride prefixes."""
    rules = []
    for i in range(n):
        variant = i % 3
        if variant == 0:
            pattern = FlowPattern(dst_prefix=f"10.{i % 200}.0.0/16")
        elif variant == 1:
            pattern = FlowPattern(
                dst_prefix=f"10.{i % 200}.{(i // 200) % 250}.0/24",
                dst_ports=(80, 80),
            )
        else:
            pattern = FlowPattern(
                dst_prefix=f"10.{i % 200}.{(i // 200) % 250}.128/26"
            )
        if i % 2:
            rules.append(
                FilterRule(rule_id=i + 1, pattern=pattern, action=Action.DROP)
                if i % 4 == 1
                else FilterRule(rule_id=i + 1, pattern=pattern, action=Action.ALLOW)
            )
        else:
            rules.append(FilterRule(rule_id=i + 1, pattern=pattern, p_allow=0.5))
    return rules


def _heavy_tailed_trace(num_flows=512, num_packets=24_000, seed=7):
    """A bounded flow population with heavy-tailed popularity.

    Attack traffic concentrates on a few flows, so batches contain heavy
    flow reuse for the coalescer to fold — and enough distinct flows that
    RSS hashing spreads work evenly across four shards.
    """
    rng = random.Random(seed)
    flows = [
        FiveTuple(
            src_ip=f"172.16.{rng.randrange(256)}.{rng.randrange(256)}",
            dst_ip=f"10.{rng.randrange(200)}.{rng.randrange(250)}."
            f"{rng.randrange(256)}",
            src_port=rng.randrange(1024, 65536),
            dst_port=rng.choice([80, 80, 443, 53]),
            protocol=Protocol.TCP,
        )
        for _ in range(num_flows)
    ]
    return [
        Packet(
            five_tuple=flows[int(len(flows) * rng.random() ** 3)],
            size=rng.choice([64, 600, 1500]),
        )
        for _ in range(num_packets)
    ]


def _assert_equivalent(label, sharded, verdicts, reference):
    mismatches = sum(
        1 for got, want in zip(verdicts, reference.verdicts) if got != want
    )
    assert mismatches == 0, f"{label}: {mismatches} verdict mismatches"
    assert len(verdicts) == len(reference.verdicts)
    assert sharded.incoming.bins() == reference.incoming.bins(), (
        f"{label}: merged incoming sketch differs from single-process log"
    )
    assert sharded.outgoing.bins() == reference.outgoing.bins(), (
        f"{label}: merged outgoing sketch differs from single-process log"
    )
    assert sharded.incoming.total == reference.incoming.total
    assert sharded.outgoing.total == reference.outgoing.total
    assert sharded.packets_allowed == reference.packets_allowed
    assert sharded.packets_dropped == reference.packets_dropped


def test_shard_scaling_equivalence_and_throughput():
    num_packets = 48_000 if full_scale() else 24_000
    rules = _mixed_rules()
    packets = _heavy_tailed_trace(num_packets=num_packets)

    reference = run_single_process_reference(rules, packets)

    rows = []
    by_workers = {}
    for workers in WORKER_COUNTS:
        # Best-of-REPEATS: equivalence must hold on *every* run; the
        # throughput row keeps the least scheduler-disturbed one.
        sharded = None
        for _ in range(REPEATS):
            plane = ShardedDataPlane(rules, num_workers=workers)
            with plane:
                verdicts = plane.process(packets)
                attempt = plane.finish()
            _assert_equivalent(
                f"workers={workers}", attempt, verdicts, reference
            )
            if sharded is None or attempt.bottleneck_pps > sharded.bottleneck_pps:
                sharded = attempt
        by_workers[workers] = sharded
        rows.append(
            {
                "workers": workers,
                "packets": sharded.packets,
                "allowed": sharded.packets_allowed,
                "dropped": sharded.packets_dropped,
                "bottleneck_pps": sharded.bottleneck_pps,
                "wall_pps": sharded.wall_pps,
                "worker_busy_seconds": sharded.worker_busy_seconds,
                "coordinator_busy_seconds": sharded.coordinator_busy_seconds,
                "worker_packets": sharded.worker_packets,
            }
        )

    speedup_at_4 = (
        by_workers[4].bottleneck_pps / by_workers[1].bottleneck_pps
    )
    for row in rows:
        row["speedup_vs_1"] = (
            row["bottleneck_pps"] / by_workers[1].bottleneck_pps
        )

    lines = [
        "sharded data plane scaling "
        f"({len(packets)} packets, {len(rules)} rules, "
        f"ref {reference.bottleneck_pps:,.0f} pps single-process):",
        f"  {'workers':>7s} {'bottleneck pps':>15s} {'speedup':>8s} "
        f"{'wall pps':>12s} {'balance':>18s}",
    ]
    for row in rows:
        counts = row["worker_packets"]
        balance = f"{min(counts)}..{max(counts)}"
        lines.append(
            f"  {row['workers']:>7d} {row['bottleneck_pps']:>15,.0f} "
            f"{row['speedup_vs_1']:>7.2f}x {row['wall_pps']:>12,.0f} "
            f"{balance:>18s}"
        )
    lines.append(
        "  equivalence: verdicts + merged sketches bit-identical to the "
        "single-process filter at every worker count"
    )
    emit("\n".join(lines))

    path = emit_metrics_snapshot(
        "shard_scaling",
        extra={
            "packets": len(packets),
            "rules": len(rules),
            "reference_bottleneck_pps": reference.bottleneck_pps,
            "reference_wall_pps": reference.wall_pps,
            "runs": rows,
            "speedup_at_4_workers": speedup_at_4,
            "equivalent": True,
        },
    )
    emit(f"wrote {path} (speedup@4={speedup_at_4:.2f}x)")

    assert speedup_at_4 >= MIN_SPEEDUP_AT_4, (
        f"4-worker bottleneck-pps speedup {speedup_at_4:.2f}x is below the "
        f"{MIN_SPEEDUP_AT_4}x gate (per-worker CPU-time based, so this "
        "should hold even on a one-core host)"
    )
