"""Ablation: the optimizer's λ headroom (paper IV-B).

λ adds spare enclaves beyond the strict minimum "to allow some space for
optimization".  This bench shows the trade: more enclaves (capex) buys a
lower peak per-enclave load (headroom against bursts) and faster greedy
convergence; λ=0 packs tightest but runs every enclave hot.
"""

from benchmarks.conftest import emit
from repro.optim.greedy import greedy_solve
from repro.optim.problem import RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.stats import lognormal_bandwidths
from repro.util.tables import format_table
from repro.util.units import GBPS


def test_lambda_headroom_ablation(benchmark):
    bandwidths = lognormal_bandwidths(2000, 100 * GBPS, seed=2)
    rows = []
    peak_by_lambda = {}
    for lam in (0.0, 0.1, 0.25, 0.5):
        problem = RuleDistributionProblem(bandwidths=bandwidths, headroom=lam)
        allocation = greedy_solve(problem)
        assert validate_allocation(allocation) == []
        loads = [
            allocation.bandwidth_on(j) / problem.enclave_bandwidth
            for j in range(len(allocation.assignments))
        ]
        peak = max(loads)
        peak_by_lambda[lam] = peak
        rows.append(
            [
                lam,
                len(allocation.assignments),
                f"{peak:.1%}",
                f"{sum(loads) / len(loads):.1%}",
            ]
        )
    emit(
        format_table(
            ["lambda", "enclaves", "peak enclave load", "mean enclave load"],
            rows,
            title="Ablation — optimizer headroom λ "
                  "(2,000 rules, 100 Gb/s lognormal)",
        )
    )
    # More headroom -> never a hotter peak.
    lams = sorted(peak_by_lambda)
    for lo, hi in zip(lams, lams[1:]):
        assert peak_by_lambda[hi] <= peak_by_lambda[lo] + 1e-9
    # And λ=0.5 runs meaningfully cooler than λ=0.
    assert peak_by_lambda[0.5] < peak_by_lambda[0.0]

    benchmark.pedantic(
        greedy_solve,
        args=(RuleDistributionProblem(bandwidths=bandwidths, headroom=0.1),),
        rounds=3,
        iterations=1,
    )
