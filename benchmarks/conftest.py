"""Shared benchmark plumbing.

Every benchmark prints the paper-style table it regenerates (so the bench
run doubles as the experiment log recorded in EXPERIMENTS.md) and uses
``benchmark.pedantic`` with small round counts for the heavyweight
experiments.

Environment knob: set ``VIF_BENCH_FULL=1`` to run the full-scale paper
workloads (Fig 9 up to 150 K rules, Fig 11 with 1,000 victims, ...).  The
default sizes keep the whole suite to a few minutes while preserving every
trend.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("VIF_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def scale() -> str:
    return "full" if full_scale() else "scaled"


@pytest.fixture(autouse=True)
def _scoped_registry():
    """A fresh metrics registry per benchmark test.

    The default registry is process-wide and accumulates series across the
    whole pytest session, so without this every ``BENCH_<name>.json`` would
    embed whatever unrelated series earlier tests happened to export (e.g.
    ``vif_fleet_recovery_seconds`` histograms inside ``BENCH_fastpath.json``).
    Scoping the registry to the test makes each snapshot contain exactly the
    series that benchmark produced.
    """
    from repro import obs

    previous = obs.set_registry(obs.MetricsRegistry())
    try:
        yield
    finally:
        obs.set_registry(previous)


def emit(text: str) -> None:
    """Print a result table with spacing that survives pytest's capture."""
    print()
    print(text)


def emit_metrics_snapshot(name: str, extra: dict | None = None) -> str:
    """Write the metrics registry as ``BENCH_<name>.json`` and return the path.

    The file lands in ``$VIF_BENCH_OUT`` when set (CI uploads that directory
    as an artifact), else the current working directory.  The payload is the
    registry snapshot (schema ``vif-metrics-v1``) with ``bench``/``extra``
    keys merged on top, so every benchmark reports against the same counters.
    """
    from repro import obs

    out_dir = os.environ.get("VIF_BENCH_OUT", "")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    payload = {"bench": name}
    if extra:
        payload.update(extra)
    obs.get_registry().write_json(path, extra=payload)
    return path
