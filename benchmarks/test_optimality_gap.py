"""Section V-C: the greedy is near-optimal on small instances.

Paper: "we use a small number of filter rules (10 <= k <= 15) and confirm
that the difference between the optimal cost function calculated by the
CPLEX's mixed ILP solver and the results from our greedy algorithm is only
5.2%."  Our greedy (with its quota refinement) lands at or below that gap.
"""

import pytest

from benchmarks.conftest import emit
from repro.optim.greedy import greedy_solve
from repro.optim.ilp import BranchAndBoundSolver
from repro.optim.problem import RuleDistributionProblem
from repro.util.stats import lognormal_bandwidths
from repro.util.tables import format_table
from repro.util.units import GBPS

pytestmark = pytest.mark.slow


def _gap_study():
    rows = []
    gaps = []
    for k in range(10, 16):
        bandwidths = lognormal_bandwidths(k, 25 * GBPS, seed=k)
        problem = RuleDistributionProblem(bandwidths=bandwidths, headroom=0.2)
        exact = BranchAndBoundSolver(node_limit=5000, time_limit_s=300).solve(
            problem
        )
        greedy = greedy_solve(problem)
        gap = (greedy.objective() - exact.objective) / exact.objective
        gaps.append(gap)
        rows.append(
            [k, f"{exact.objective:.4e}", f"{greedy.objective():.4e}", f"{gap:.1%}"]
        )
    return rows, gaps


def test_optimality_gap(benchmark):
    rows, gaps = benchmark.pedantic(_gap_study, rounds=1, iterations=1)
    average = sum(gaps) / len(gaps)
    emit(
        format_table(
            ["k", "exact optimum", "greedy", "gap"],
            rows + [["avg", "", "", f"{average:.1%}"]],
            title="V-C — greedy vs exact optimum, 10 <= k <= 15 "
                  "(paper: 5.2% average)",
        )
    )
    assert average <= 0.06  # at or below the paper's reported 5.2%
    assert all(gap >= -1e-9 for gap in gaps)  # greedy never beats the optimum
