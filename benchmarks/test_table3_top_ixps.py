"""Table III: the top five IXPs per region by member count.

The synthetic analogue of the paper's CAIDA-derived table.  The shape that
matters for the rest of the evaluation: five regions, a strongly
rank-skewed membership distribution within each region, with the global
No. 1 resembling AMS-IX/IX.br relative dominance.
"""

from benchmarks.conftest import emit
from repro.interdomain import generate_internet
from repro.util.tables import format_table


def test_table3_top_regional_ixps(benchmark):
    graph, ixps = benchmark.pedantic(
        generate_internet, rounds=1, iterations=1
    )
    regions = sorted({ixp.region for ixp in ixps})
    assert len(regions) == 5

    ranked = {
        region: sorted(
            (x for x in ixps if x.region == region),
            key=lambda x: -x.member_count,
        )
        for region in regions
    }
    rows = []
    for rank in range(5):
        rows.append(
            [rank + 1]
            + [f"{ranked[r][rank].member_count}" for r in regions]
        )
    emit(
        format_table(
            ["rank"] + regions,
            rows,
            title="Table III analogue — member counts of top-5 IXPs per region",
        )
    )

    for region in regions:
        counts = [x.member_count for x in ranked[region][:5]]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] >= 2 * counts[4]  # strong skew, as in Table III
