"""The scalability headline (paper abstract, IV-B): 500 Gb/s and 150,000
rules by parallelizing ~50 TEE filters.

Default run validates the claim at 1/10 scale (50 Gb/s, 15 K rules, fleet
sweep around the 6-enclave minimum) in a couple of seconds;
VIF_BENCH_FULL=1 runs the full 500 Gb/s / 150 K-rule instance with a
50-enclave fleet (tens of seconds — the same order as the paper's own
Fig 9 redistribution times).
"""

import pytest

from benchmarks.conftest import emit, full_scale
from repro.deploy.scaleout import ScaleOutPlanner
from repro.util.tables import format_table

pytestmark = pytest.mark.slow


def test_scaleout_headline(benchmark):
    planner = ScaleOutPlanner()
    if full_scale():
        total_gbps, num_rules = 500.0, 150_000
        fleet_sizes = [30, 40, 49, 50, 55]
    else:
        total_gbps, num_rules = 50.0, 15_000
        fleet_sizes = [3, 4, 5, 6, 7]

    assessments = benchmark.pedantic(
        planner.sweep,
        args=(fleet_sizes, total_gbps, num_rules),
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(
            ["enclaves", "feasible", "peak bw load", "peak rule load", "reason"],
            [a.as_row() for a in assessments],
            title=(
                f"Scale-out — {total_gbps:.0f} Gb/s, {num_rules} rules "
                f"(paper: 500 Gb/s / 150 K rules on ~50 filters)"
            ),
        )
    )

    minimum = planner.minimum_fleet(total_gbps, num_rules)
    for assessment in assessments:
        if assessment.num_enclaves < minimum:
            # Below the Appendix C lower bound: provably impossible.
            assert not assessment.feasible
        elif assessment.num_enclaves > minimum:
            # Any fleet above the bound must pack (the greedy finds it).
            assert assessment.feasible
        # Exactly at the bound the packing is 100%-tight; either outcome is
        # legitimate for a heuristic, so it is reported but not asserted.
    feasible = [a for a in assessments if a.feasible]
    assert feasible, "no assessed fleet size packed the workload"
    for assessment in feasible:
        assert assessment.peak_bandwidth_utilization <= 1.0 + 1e-9
        assert assessment.peak_rule_utilization <= 1.0 + 1e-9
