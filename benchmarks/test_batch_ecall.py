"""Burst-ECall ablation: per-packet vs batched enclave data path.

The tentpole claim of §V's batching optimisation: one ``process_burst``
ECall per burst amortises the enclave-transition bookkeeping that the
per-packet path pays on every packet, so the batched pipeline issues at
most 1/16 the ECalls per packet and — with every transition charged the
same simulated cost (``Enclave.transition_cost_s``, advancing the
platform's :class:`~repro.tee.clock.HostClock`) — finishes in strictly
less simulated time.  The pass/fail assertions ride on the deterministic
simulated clock and ECall counts; wall-clock packets/sec appear in the
emitted table as context only.
"""

import time

from benchmarks.conftest import emit, emit_metrics_snapshot, full_scale
from repro import obs
from repro.core.enclave_filter import EnclaveBurstFilter, EnclaveFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.nic import NIC
from repro.dataplane.pipeline import FilterPipeline
from repro.dataplane.pktgen import PacketGenerator
from repro.tee.enclave import Platform

BURST_SIZE = 64
#: Simulated cost of one enclave transition (order of the paper's measured
#: ~3.5µs EENTER/EEXIT round trip); the exact value cancels out of the
#: comparison, which depends only on the ECall counts.
TRANSITION_COST_S = 3.5e-6


def _rules(n=200):
    return [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(dst_prefix=f"10.{i % 250}.{i // 250}.0/24"),
            action=Action.DROP,
        )
        for i in range(n)
    ]


def _packets(n):
    flows = PacketGenerator(7).uniform_flows(100, dst_ip="10.1.0.9")
    return [flows[i % len(flows)].make_packet() for i in range(n)]


def _launch():
    enclave = Platform("bench").launch(EnclaveFilter(secret="bench"))
    enclave.ecall("install_rules", _rules())
    enclave.transition_cost_s = TRANSITION_COST_S
    return enclave


def _run(filter_fn, enclave, packets):
    """Drive one pipeline; return (pps, ECalls/packet, simulated seconds).

    Simulated seconds is the host-clock advance attributable to enclave
    transitions during the run; wall-clock pps is reported but never
    asserted on.
    """
    # Size the NIC RX queue to the workload: this measures the filter
    # stage, not wire-side drop behavior.
    pipeline = FilterPipeline(
        filter_fn,
        nic_in=NIC("bench-in", rx_queue_size=len(packets)),
        burst_size=BURST_SIZE,
    )
    ecalls_before = enclave.ecall_count
    clock_before = enclave.platform.host_clock.now()
    start = time.perf_counter()
    pipeline.process(list(packets))
    elapsed = time.perf_counter() - start
    ecalls = enclave.ecall_count - ecalls_before
    simulated = enclave.platform.host_clock.now() - clock_before
    return len(packets) / elapsed, ecalls / len(packets), simulated


def test_bench_batched_beats_per_packet():
    n = 40_000 if full_scale() else 8_000
    packets = _packets(n)

    # Timing on so the emitted snapshot carries the ECall-latency
    # histograms alongside the counters (wall-clock pps is context only).
    prev_timing = obs.set_timing(True)
    try:
        point_enclave = _launch()
        point_pps, point_epp, point_sim = _run(
            lambda p: point_enclave.ecall("process_packet", p),
            point_enclave,
            packets,
        )

        burst_enclave = _launch()
        burst_pps, burst_epp, burst_sim = _run(
            EnclaveBurstFilter(burst_enclave), burst_enclave, packets
        )
    finally:
        obs.set_timing(prev_timing)

    emit(
        "burst-ECall ablation "
        f"({n} packets, burst {BURST_SIZE}, {len(_rules())} rules)\n"
        f"{'path':<12} {'pps':>12} {'ECalls/pkt':>12} {'sim transit s':>14}\n"
        f"{'per-packet':<12} {point_pps:>12.0f} {point_epp:>12.4f} "
        f"{point_sim:>14.6f}\n"
        f"{'batched':<12} {burst_pps:>12.0f} {burst_epp:>12.4f} "
        f"{burst_sim:>14.6f}\n"
        f"transition-time reduction: {point_sim / burst_sim:.0f}x, "
        f"ECall reduction: {point_epp / burst_epp:.0f}x"
    )
    emit_metrics_snapshot(
        "batch_ecall",
        extra={
            "point": {"ecalls_per_packet": point_epp, "sim_s": point_sim},
            "burst": {"ecalls_per_packet": burst_epp, "sim_s": burst_sim},
        },
    )

    assert point_epp == 1.0  # one transition per packet
    assert burst_epp <= point_epp / 16  # acceptance: <= 1/16 the ECalls
    # Deterministic: with identical per-transition cost, the batched path
    # spends at most 1/16 the simulated transition time.
    assert burst_sim <= point_sim / 16
