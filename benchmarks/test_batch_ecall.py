"""Burst-ECall ablation: per-packet vs batched enclave data path.

The tentpole claim of §V's batching optimisation, measured on the real
(wall-clock) simulator objects rather than the calibrated cost model: one
``process_burst`` ECall per burst amortises the enclave-transition
bookkeeping that the per-packet path pays on every packet, so the batched
pipeline must win on packets/sec while issuing at most 1/16 the ECalls per
packet.
"""

import time

from benchmarks.conftest import emit, full_scale
from repro.core.enclave_filter import EnclaveBurstFilter, EnclaveFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.nic import NIC
from repro.dataplane.pipeline import FilterPipeline
from repro.dataplane.pktgen import PacketGenerator
from repro.tee.enclave import Platform

BURST_SIZE = 64


def _rules(n=200):
    return [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(dst_prefix=f"10.{i % 250}.{i // 250}.0/24"),
            action=Action.DROP,
        )
        for i in range(n)
    ]


def _packets(n):
    flows = PacketGenerator(7).uniform_flows(100, dst_ip="10.1.0.9")
    return [flows[i % len(flows)].make_packet() for i in range(n)]


def _launch():
    enclave = Platform("bench").launch(EnclaveFilter(secret="bench"))
    enclave.ecall("install_rules", _rules())
    return enclave


def _run(filter_fn, enclave, packets):
    """Drive one pipeline; return (packets/sec, ECalls per packet)."""
    # Size the NIC RX queue to the workload: this measures the filter
    # stage, not wire-side drop behavior.
    pipeline = FilterPipeline(
        filter_fn,
        nic_in=NIC("bench-in", rx_queue_size=len(packets)),
        burst_size=BURST_SIZE,
    )
    ecalls_before = enclave.ecall_count
    start = time.perf_counter()
    pipeline.process(list(packets))
    elapsed = time.perf_counter() - start
    ecalls = enclave.ecall_count - ecalls_before
    return len(packets) / elapsed, ecalls / len(packets)


def test_bench_batched_beats_per_packet():
    n = 40_000 if full_scale() else 8_000
    packets = _packets(n)

    point_enclave = _launch()
    point_pps, point_epp = _run(
        lambda p: point_enclave.ecall("process_packet", p), point_enclave, packets
    )

    burst_enclave = _launch()
    burst_pps, burst_epp = _run(
        EnclaveBurstFilter(burst_enclave), burst_enclave, packets
    )

    emit(
        "burst-ECall ablation "
        f"({n} packets, burst {BURST_SIZE}, {len(_rules())} rules)\n"
        f"{'path':<12} {'pps':>12} {'ECalls/pkt':>12}\n"
        f"{'per-packet':<12} {point_pps:>12.0f} {point_epp:>12.4f}\n"
        f"{'batched':<12} {burst_pps:>12.0f} {burst_epp:>12.4f}\n"
        f"speedup: {burst_pps / point_pps:.2f}x, "
        f"ECall reduction: {point_epp / burst_epp:.0f}x"
    )

    assert point_epp == 1.0  # one transition per packet
    assert burst_epp <= point_epp / 16  # acceptance: <= 1/16 the ECalls
    assert burst_pps > point_pps  # and measurably faster
