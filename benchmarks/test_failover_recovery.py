"""Failover recovery: time-to-recover and traffic lost vs fleet size/failure rate.

Sweeps the fault-injection harness over fleet sizes and kill fractions and
reports, per configuration:

* **recovery_s** — simulated recovery time (relaunch + attestation rounds +
  backoff waits, built from the Appendix G attestation timing model);
* **lost%** — rule traffic dropped fail-closed or shed during the outage
  window, as a fraction of all rule traffic offered (the availability cost
  of the paper's fail-closed stance);
* **shed** — rules sacrificed when surviving capacity could not absorb the
  orphans;
* **unfiltered** — the security invariant: must be 0 in every cell.

Every cell is deterministic (seeded schedules, traffic, and backoff
jitter), so these numbers are reproducible artifacts, not anecdotes.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_metrics_snapshot, full_scale
from repro import obs
from repro.core.controller import IXPController
from repro.core.fleet import FleetConfig, FleetManager
from repro.core.rules import Action, FilterRule, FlowPattern, RPKIRegistry, RuleSet
from repro.core.session import VIFSession
from repro.faults import FaultInjectionHarness, FaultSchedule, FlakyIAS
from repro.util.units import GBPS

VICTIM = "victim.example"
ROUNDS = 6


def _rules(count: int, fleet_size: int, utilisation: float = 0.7) -> RuleSet:
    """Aggregate demand at ``utilisation`` of fleet capacity: survivable
    small kills, forced shedding at large ones."""
    rate = utilisation * fleet_size * 10 * GBPS / count
    rules = RuleSet()
    for i in range(count):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"10.{i // 250}.{i % 250}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by=VICTIM,
                rate_bps=rate,
            )
        )
    return rules


def _run_cell(fleet_size: int, kill_fraction: float, seed: str):
    from repro.faults import FaultKind

    # Platform losses against a thin spare budget: small kills relaunch on
    # spares, large kills exhaust them and force repair/shedding — that is
    # where the availability cost shows up.
    ias = FlakyIAS()
    controller = IXPController(ias)
    fleet = FleetManager(
        controller,
        config=FleetConfig(spare_platforms=fleet_size // 10, seed=seed),
    )
    rules = _rules(count=3 * fleet_size, fleet_size=fleet_size, utilisation=0.75)
    fleet.deploy(rules, enclaves_override=fleet_size)

    rpki = RPKIRegistry()
    rpki.authorize(VICTIM, "10.0.0.0/8")
    session = VIFSession(VICTIM, rpki, ias, controller)
    session.attest_filters()
    fleet.session = session

    schedule = FaultSchedule.kill_fraction(
        seed, rounds=ROUNDS, fleet_size=fleet_size, fraction=kill_fraction,
        kind=FaultKind.PLATFORM_LOSS,
    )
    result = FaultInjectionHarness(fleet, schedule, ias=ias).run()

    rule_traffic = result.packets_sent - sum(
        r.carry.unrouted for r in result.records
    )
    lost = result.packets_lost_to_failover
    return {
        "recovery_s": result.counters["recovery_time_s"],
        "lost_pct": 100.0 * lost / max(rule_traffic, 1),
        "shed": int(result.counters["rules_shed"]),
        "unfiltered": int(result.counters["unfiltered_packets"]),
        "invariant": result.invariant_violations,
        "valid": not result.final_allocation_violations,
    }


def test_bench_recovery_vs_fleet_size_and_failure_rate():
    fleet_sizes = (20, 10, 5) if full_scale() else (10, 5)
    kill_fractions = (0.1, 0.2, 0.4)

    lines = [
        f"{'fleet':>6} {'killed':>7} {'recovery_s':>11} {'lost%':>7} "
        f"{'shed':>5} {'unfiltered':>11}"
    ]
    cells = {}
    # Timing on: the snapshot this sweep emits should carry the ECall
    # latency histograms alongside the conservation counters.
    prev_timing = obs.set_timing(True)
    try:
        for n in fleet_sizes:
            for frac in kill_fractions:
                cell = _run_cell(n, frac, seed=f"bench-{n}-{frac}")
                cells[(n, frac)] = cell
                lines.append(
                    f"{n:>6} {frac:>7.0%} {cell['recovery_s']:>11.2f} "
                    f"{cell['lost_pct']:>7.2f} {cell['shed']:>5} "
                    f"{cell['unfiltered']:>11}"
                )
    finally:
        obs.set_timing(prev_timing)
    emit(
        "failover recovery sweep "
        f"({ROUNDS} rounds, kill at round {ROUNDS // 2})\n" + "\n".join(lines)
    )
    emit_metrics_snapshot(
        "failover_recovery",
        extra={
            "cells": {
                f"fleet={n},killed={frac}": cell
                for (n, frac), cell in cells.items()
            }
        },
    )

    for (n, frac), cell in cells.items():
        # the security invariant holds in every configuration
        assert cell["unfiltered"] == 0, (n, frac)
        assert cell["invariant"] == 0, (n, frac)
        assert cell["valid"], (n, frac)
        # recovery happened and its cost is visible
        assert cell["recovery_s"] > 0, (n, frac)

    # killing more of the fleet cannot cost less recovery time
    for n in fleet_sizes:
        assert cells[(n, 0.4)]["recovery_s"] >= cells[(n, 0.1)]["recovery_s"]


def test_bench_recovery_cell_is_deterministic():
    """Same seed, same cell — bit-for-bit.  Recovery time is simulated
    (attestation timing model + seeded backoff jitter), so nothing here may
    depend on the wall clock."""
    first = _run_cell(5, 0.2, seed="bench-determinism")
    second = _run_cell(5, 0.2, seed="bench-determinism")
    assert first == second


def test_bench_recovery_rides_out_ias_outage():
    """An IAS outage during recovery stretches recovery time via backoff
    but never breaks the invariant or aborts the failover."""
    from repro.faults import FaultEvent, FaultKind

    def run(outage: int):
        seed = f"bench-ias-{outage}"
        ias = FlakyIAS()
        controller = IXPController(ias)
        fleet = FleetManager(
            controller, config=FleetConfig(spare_platforms=2, seed=seed)
        )
        fleet.deploy(_rules(15, 5), enclaves_override=5)
        rpki = RPKIRegistry()
        rpki.authorize(VICTIM, "10.0.0.0/8")
        session = VIFSession(VICTIM, rpki, ias, controller)
        session.attest_filters()
        fleet.session = session
        base = FaultSchedule.kill_fraction(
            seed, rounds=ROUNDS, fleet_size=5, fraction=0.2
        )
        events = base.events
        if outage:
            events += (
                FaultEvent(
                    round_index=base.events[0].round_index,
                    kind=FaultKind.IAS_OUTAGE,
                    magnitude=outage,
                ),
            )
        schedule = FaultSchedule(rounds=ROUNDS, events=events, seed=seed)
        result = FaultInjectionHarness(fleet, schedule, ias=ias).run()
        return result, fleet

    clean, _ = run(outage=0)
    outage, fleet = run(outage=3)

    emit(
        "IAS outage during recovery\n"
        f"{'scenario':<10} {'recovery_s':>11} {'retries':>8} {'unfiltered':>11}\n"
        f"{'clean':<10} {clean.counters['recovery_time_s']:>11.2f} "
        f"{int(clean.counters['attestation_retries']):>8} "
        f"{int(clean.counters['unfiltered_packets']):>11}\n"
        f"{'outage x3':<10} {outage.counters['recovery_time_s']:>11.2f} "
        f"{int(outage.counters['attestation_retries']):>8} "
        f"{int(outage.counters['unfiltered_packets']):>11}"
    )

    assert outage.counters["attestation_retries"] == 3
    assert outage.recovery_failures == 0  # ridden out, not aborted
    assert outage.counters["recovery_time_s"] > clean.counters["recovery_time_s"]
    assert outage.counters["unfiltered_packets"] == 0
    assert outage.invariant_violations == 0
    assert fleet.counters.relaunches >= 1
