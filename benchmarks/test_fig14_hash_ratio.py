"""Fig 14: throughput vs the fraction of packets undergoing SHA-256
hash-based filtering (the connection-preserving hybrid's new-flow path).

Paper result: at hash ratios below ~10% no degradation at any size except
64 B (up to ~25% loss there); large packets stay at line rate even when
every packet is hashed.
"""

from benchmarks.conftest import emit
from repro.dataplane.throughput import ThroughputHarness
from repro.util.tables import format_table

RATIOS = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0]


def test_fig14_hash_ratio_sweep(benchmark):
    harness = ThroughputHarness()
    series = benchmark(harness.hash_ratio_sweep, RATIOS)
    rows = []
    for i, ratio in enumerate(RATIOS):
        rows.append([ratio] + [round(series[s][i], 2) for s in sorted(series)])
    emit(
        format_table(
            ["hash ratio"] + [f"{s} B" for s in sorted(series)],
            rows,
            title="Fig 14 — throughput (Gb/s) vs fraction of hashed packets",
        )
    )
    # 64 B at 10% ratio: within the paper's "up to 25%" degradation.
    base_64 = series[64][0]
    at_10pct = series[64][3]
    assert 0.0 < 1 - at_10pct / base_64 < 0.30
    # Large packets: no degradation at 10%.
    assert abs(series[1500][3] - series[1500][0]) < 0.05
    # Monotone decline in the ratio for every size.
    for size in series:
        assert series[size] == sorted(series[size], reverse=True)
