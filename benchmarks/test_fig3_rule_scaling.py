"""Fig 3a/3b: single-filter throughput and memory vs number of rules.

Paper result: throughput is flat (line-rate-bound, ~15 Mpps at 64 B) up to
about 3,000 rules, then degrades rapidly; the lookup-table memory footprint
grows linearly and crosses the ~92 MB EPC limit mid-sweep.
"""

from benchmarks.conftest import emit
from repro.dataplane.throughput import ThroughputHarness
from repro.util.tables import format_table

RULE_COUNTS = [100, 500, 1000, 2000, 3000, 4000, 5000, 6000, 8000, 10000]


def test_fig3a_throughput_vs_rules(benchmark):
    harness = ThroughputHarness()
    mpps = benchmark(harness.rule_count_sweep, RULE_COUNTS)
    mb = harness.memory_sweep(RULE_COUNTS)
    rows = [
        [k, round(m, 2), round(f, 1), "yes" if f > 92 else "no"]
        for k, m, f in zip(RULE_COUNTS, mpps, mb)
    ]
    emit(
        format_table(
            ["rules", "throughput (Mpps)", "enclave memory (MB)", "past EPC"],
            rows,
            title="Fig 3a/3b — filter throughput & memory vs #rules (64 B)",
        )
    )
    # The paper's knee: flat to 3,000 rules, rapid degradation after.
    assert mpps[0] - mpps[4] < 0.1 * mpps[0]
    assert mpps[-1] < 0.5 * mpps[4]
    assert mb[-1] > 92 > mb[4]
