"""Section VI-D: the deployment cost ballpark.

Paper: 500 Gb/s of verifiable filtering from 50 commodity SGX servers at
~US$2,000 each -> ~US$100K one-time, one or two racks, amortizable over
hundreds of member ASes.
"""

import pytest

from benchmarks.conftest import emit
from repro.deploy import CapacityPlanner, deployment_cost
from repro.util.tables import format_table


def test_vi_d_cost_analysis(benchmark):
    report = benchmark(deployment_cost)
    plan = CapacityPlanner(headroom=0.0).plan(500.0, total_rules=150_000)

    emit(
        format_table(
            ["metric", "value"],
            report.as_rows() + [["racks", plan.num_racks],
                                ["attestation setup (s)", round(plan.setup_attestation_s, 1)]],
            title="VI-D — 500 Gb/s deployment cost",
        )
    )
    assert report.num_servers == 50
    assert report.total_capex_usd == pytest.approx(100_000.0)
    assert plan.num_racks <= 2
    # 150 K rules also fit this fleet (50 enclaves x ~3 K rules).
    assert plan.num_enclaves == 50
