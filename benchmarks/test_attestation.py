"""Appendix G: remote attestation performance.

Paper: quote generation takes 28.8 ms of platform work; the end-to-end
round (verifier in South Asia, IAS in Ashburn VA) takes ~3.04 s.  The
functional protocol cost here is real wall clock; the WAN component comes
from the calibrated timing model.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.enclave_filter import EnclaveFilter
from repro.tee.attestation import (
    IASService,
    PAPER_ATTESTATION_TIMING,
    RemoteAttestationVerifier,
)
from repro.tee.enclave import Platform
from repro.util.tables import format_table


def test_attestation_roundtrip(benchmark):
    ias = IASService()
    platform = Platform("bench-srv")
    ias.provision(platform)
    enclave = platform.launch(EnclaveFilter(secret="bench"))
    verifier = RemoteAttestationVerifier(ias, EnclaveFilter.measurement())

    report = benchmark(verifier.attest, enclave)
    assert report.ok

    timing = PAPER_ATTESTATION_TIMING
    emit(
        format_table(
            ["metric", "value"],
            [
                ["platform work (model, ms)", timing.platform_work_s * 1000],
                ["IAS RTT (model, ms)", timing.ias_rtt_s * 1000],
                ["end-to-end (model, s)", round(timing.end_to_end_s(), 3)],
                ["paper end-to-end (s)", 3.04],
            ],
            title="Appendix G — remote attestation latency",
        )
    )
    assert timing.end_to_end_s() == pytest.approx(3.04, abs=0.05)
