"""Fig 8 (Gb/s) and Fig 13 (Mpps): throughput vs packet size for the three
implementations (native, SGX full-copy, SGX near zero-copy) at 3,000 rules.

Paper results: everyone hits 10 Gb/s line rate at >=256 B; at 64 B the
near-zero-copy SGX filter sustains ~8 Gb/s while full-copy collapses
(capped near 6 Mpps); native stays at line rate.
"""

import pytest

from benchmarks.conftest import emit
from repro.dataplane.cost_model import ImplementationVariant
from repro.dataplane.throughput import PAPER_PACKET_SIZES, ThroughputHarness
from repro.util.tables import format_table


def test_fig8_fig13_packet_size_sweep(benchmark):
    harness = ThroughputHarness()
    reports = benchmark(harness.all_variants_sweep, 3000)

    rows = []
    for size_index, size in enumerate(PAPER_PACKET_SIZES):
        row = [size]
        for variant in (
            ImplementationVariant.NATIVE,
            ImplementationVariant.SGX_FULL_COPY,
            ImplementationVariant.SGX_ZERO_COPY,
        ):
            report = reports[variant]
            row.append(f"{report.gbps[size_index]:.1f} / {report.mpps[size_index]:.2f}")
        rows.append(row)
    emit(
        format_table(
            ["size (B)", "native Gb/s / Mpps", "full-copy", "near zero-copy"],
            rows,
            title="Fig 8 + Fig 13 — throughput vs packet size, 3,000 rules",
        )
    )

    zero = reports[ImplementationVariant.SGX_ZERO_COPY]
    full = reports[ImplementationVariant.SGX_FULL_COPY]
    native = reports[ImplementationVariant.NATIVE]
    assert 7.0 < zero.gbps[0] < 9.0  # ~8 Gb/s at 64 B
    assert max(full.mpps) < 6.5  # the ~6 Mpps cap
    assert all(g == pytest.approx(10.0, rel=0.01) for g in native.gbps)
    for variant_report in reports.values():  # >=256 B: line rate for all
        assert all(
            g == pytest.approx(10.0, rel=0.01) for g in variant_report.gbps[2:]
        )
