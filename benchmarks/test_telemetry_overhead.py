"""Telemetry overhead: latency tracking + a live scraper must stay cheap.

PR convention: the serve loop is run twice over the identical workload —
once with ``track_latency=False`` and no endpoint (the baseline), once
with full stage/e2e latency sketches *and* the HTTP telemetry endpoint
being scraped concurrently — and the sustained packets/sec of the
instrumented run must stay within ``MAX_OVERHEAD_FRACTION`` of the
baseline.  Both configurations take the best of ``REPEATS`` runs so a CI
scheduler hiccup in either leg doesn't decide the ratio.

Everything lands in ``BENCH_telemetry.json`` (uploaded from CI's
``bench-out/`` artifact directory).
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.conftest import emit, emit_metrics_snapshot, full_scale
from repro.core.filter import StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.obs.telemetry import http_get
from repro.serve import (
    LocalBackend,
    PktgenSource,
    ServeConfig,
    ServeService,
    ServeState,
)

#: The instrumented run may sustain at most this much less throughput than
#: the untracked baseline (the ISSUE gate: telemetry costs < 10% pps).
MAX_OVERHEAD_FRACTION = 0.10
#: Best-of-N per configuration; min wall-clock is the standard noise
#: filter for throughput measurements on a shared host.
REPEATS = 3


def _rules(count: int):
    return [
        FilterRule(
            rule_id=i + 1,
            pattern=FlowPattern(dst_prefix=f"203.0.{i % 200}.0/24"),
            action=Action.DROP if i % 2 else Action.ALLOW,
            requested_by="victim.example",
        )
        for i in range(count)
    ]


def _backend(rules):
    filter_ = StatelessFilter(secret="vif-telemetry-bench")
    backend = LocalBackend(filter_)
    backend.install_rules(rules)
    return backend


async def _scrape_forever(host: str, port: int) -> None:
    """A background scraper hammering /metrics while the loop serves."""
    while True:
        try:
            await http_get(host, port, "/metrics")
        except OSError:
            return
        await asyncio.sleep(0.01)


def _run_once(rules, bursts: int, instrumented: bool) -> tuple[float, int]:
    """One serve session; returns (serving_seconds, packets_ingested)."""
    source = PktgenSource(
        rules,
        packets_per_rule=4,
        background_packets=16,
        total_bursts=bursts,
    )
    config = ServeConfig(
        queue_depth=16,
        track_latency=instrumented,
        telemetry_port=0 if instrumented else None,
    )

    async def scenario():
        service = ServeService(source, _backend(rules), config)
        await service.start()
        scraper = None
        if instrumented:
            telemetry = service.telemetry
            assert telemetry is not None and telemetry.running
            scraper = asyncio.ensure_future(
                _scrape_forever(telemetry.host, telemetry.port)
            )
        started = time.perf_counter()
        while not service._source_exhausted:
            assert service.state is ServeState.SERVING
            await asyncio.sleep(0.002)
        serving_seconds = time.perf_counter() - started
        report = await service.drain()
        if scraper is not None:
            scraper.cancel()
        assert report.unaccounted == 0 and report.shed == 0
        return serving_seconds, report.ingested

    return asyncio.run(scenario())


def test_telemetry_overhead_stays_under_gate():
    rules = _rules(64 if full_scale() else 16)
    bursts = 400 if full_scale() else 150

    def best_pps(instrumented: bool) -> float:
        best = 0.0
        for _ in range(REPEATS):
            seconds, ingested = _run_once(rules, bursts, instrumented)
            best = max(best, ingested / seconds)
        return best

    # Interleaving the repeats would be fairer still, but the serve loop
    # dominates its own noise; alternate legs to share any thermal drift.
    baseline_pps = best_pps(instrumented=False)
    telemetry_pps = best_pps(instrumented=True)

    overhead = 1.0 - telemetry_pps / baseline_pps
    assert overhead <= MAX_OVERHEAD_FRACTION, (
        f"telemetry costs {overhead:.1%} pps "
        f"(baseline {baseline_pps:,.0f}, instrumented {telemetry_pps:,.0f}; "
        f"gate {MAX_OVERHEAD_FRACTION:.0%})"
    )

    emit(
        "telemetry overhead (latency sketches + scraped /metrics endpoint)\n"
        f"  bursts              {bursts}\n"
        f"  baseline pps        {baseline_pps:,.0f}  (track_latency=False)\n"
        f"  instrumented pps    {telemetry_pps:,.0f}  (sketches + scraper)\n"
        f"  overhead            {overhead:+.2%}  (gate {MAX_OVERHEAD_FRACTION:.0%})"
    )
    emit_metrics_snapshot(
        "telemetry",
        extra={
            "bursts": bursts,
            "repeats": REPEATS,
            "baseline_pps": baseline_pps,
            "telemetry_pps": telemetry_pps,
            "overhead_fraction": overhead,
            "gate": MAX_OVERHEAD_FRACTION,
        },
    )
