"""Serve runtime steady state: sustained throughput + drain latency gates.

PR convention: CI asserts conservative *floors* — the asyncio serve loop
(ingest → filter → audit over bounded queues, LocalBackend) must sustain a
modest packets/sec rate end to end, and a graceful drain of a loaded
service must settle its books quickly and losslessly.  Absolute rates on a
shared CI host are noisy, so the floors are far below what any dev
machine measures; the real numbers are emitted for trend tracking.

Everything lands in ``BENCH_serve.json`` (uploaded from CI's
``bench-out/`` artifact directory).
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.conftest import emit, emit_metrics_snapshot, full_scale
from repro.core.filter import StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.serve import (
    LocalBackend,
    PktgenSource,
    ServeConfig,
    ServeService,
    ServeState,
)

#: Conservative end-to-end floor for the asyncio loop on a shared CI host.
#: The loop's per-burst overhead dominates at small bursts; dev machines
#: measure two orders of magnitude above this.
MIN_SUSTAINED_PPS = 2_000.0
#: A drain of a fully loaded service must settle within this bound (the
#: config's drain_timeout_s is 30 s; steady state should be nowhere near).
MAX_DRAIN_SECONDS = 5.0


def _rules(count: int):
    rules = []
    for i in range(count):
        rules.append(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(dst_prefix=f"203.0.{i % 200}.0/24"),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by="victim.example",
            )
        )
    return rules


def _backend(rules):
    filter_ = StatelessFilter(secret="vif-serve-bench")
    backend = LocalBackend(filter_)
    backend.install_rules(rules)
    return backend


def test_serve_steady_state_throughput_and_drain_latency():
    rules = _rules(64 if full_scale() else 16)
    bursts = 400 if full_scale() else 120
    source = PktgenSource(
        rules,
        packets_per_rule=4,
        background_packets=16,
        total_bursts=bursts,
    )
    packets_per_burst = len(rules) * 4 + 16

    async def scenario():
        service = ServeService(
            source, _backend(rules), ServeConfig(queue_depth=16)
        )
        await service.start()
        started = time.perf_counter()
        while not service._source_exhausted:
            assert service.state is ServeState.SERVING
            await asyncio.sleep(0.002)
        serving_seconds = time.perf_counter() - started
        report = await service.drain()
        return service, report, serving_seconds

    service, report, serving_seconds = asyncio.run(scenario())

    assert report.state == "drained"
    assert report.unaccounted == 0
    assert report.shed == 0
    assert report.ingested == bursts * packets_per_burst
    assert service.counters()["audited"] == report.ingested

    sustained_pps = report.ingested / serving_seconds
    assert sustained_pps >= MIN_SUSTAINED_PPS, (
        f"serve loop sustained only {sustained_pps:.0f} pps "
        f"(floor {MIN_SUSTAINED_PPS:.0f})"
    )
    assert report.drain_seconds <= MAX_DRAIN_SECONDS, (
        f"drain took {report.drain_seconds:.2f}s "
        f"(bound {MAX_DRAIN_SECONDS:.1f}s)"
    )

    emit(
        "serve steady state (LocalBackend, asyncio loop)\n"
        f"  bursts            {bursts}\n"
        f"  packets/burst     {packets_per_burst}\n"
        f"  ingested          {report.ingested}\n"
        f"  sustained pps     {sustained_pps:,.0f}  (floor {MIN_SUSTAINED_PPS:,.0f})\n"
        f"  drain seconds     {report.drain_seconds:.4f}  (bound {MAX_DRAIN_SECONDS})\n"
        f"  shed / unaccounted  {report.shed} / {report.unaccounted}"
    )
    emit_metrics_snapshot(
        "serve",
        extra={
            "bursts": bursts,
            "packets_per_burst": packets_per_burst,
            "sustained_pps": sustained_pps,
            "serving_seconds": serving_seconds,
            "drain_seconds": report.drain_seconds,
            "report": report.as_dict(),
            "floors": {
                "min_sustained_pps": MIN_SUSTAINED_PPS,
                "max_drain_seconds": MAX_DRAIN_SECONDS,
            },
        },
    )
