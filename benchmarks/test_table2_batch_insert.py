"""Table II: batch insertion of exact-match rules into the multi-bit trie.

Paper (on their testbed): inserting a batch of 1/10/100/1000 rules into a
warm lookup table costs 50/52/53/75 ms — i.e. heavily amortized, nearly
flat in batch size.  We measure our trie's real wall-clock insert times and
check the same amortization shape (per-rule cost collapsing with batch
size); absolute numbers differ (Python vs C), the shape is the claim.
"""

import time

from benchmarks.conftest import emit
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import Protocol
from repro.lookup.multibit_trie import MultiBitTrie
from repro.util.tables import format_table

PAPER_MS = {1: 50, 10: 52, 100: 53, 1000: 75}


def _warm_trie() -> MultiBitTrie:
    trie = MultiBitTrie()
    base = [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(dst_prefix=f"10.{i % 250}.{i // 250}.0/24"),
            action=Action.DROP,
        )
        for i in range(3000)
    ]
    trie.insert_batch(base)
    return trie


def _exact_rules(start_id: int, count: int):
    rules = []
    for i in range(count):
        n = start_id + i
        rules.append(
            FilterRule(
                rule_id=n,
                pattern=FlowPattern(
                    src_prefix=f"172.16.{(n // 250) % 250}.{n % 250}/32",
                    dst_prefix="203.0.113.7/32",
                    src_ports=(1024 + n % 60000, 1024 + n % 60000),
                    dst_ports=(80, 80),
                    protocol=Protocol.TCP,
                ),
                action=Action.DROP,
            )
        )
    return rules


def test_table2_batch_insert(benchmark):
    rows = []
    per_rule_us = {}
    trie = _warm_trie()
    next_id = 10_000
    # Each cell is the min over several repeats (fresh rule ids per repeat,
    # same warm trie): a single timed insert — especially at batch=1 —
    # jitters by an order of magnitude under scheduler noise, and the min
    # is the standard robust estimator for "the cost of the work itself".
    repeats = 5
    for batch_size in (1, 10, 100, 1000):
        best_ms = float("inf")
        for _ in range(repeats):
            batch = _exact_rules(next_id, batch_size)
            next_id += batch_size
            start = time.perf_counter()
            trie.insert_batch(batch)
            best_ms = min(
                best_ms, (time.perf_counter() - start) * 1000
            )
        per_rule_us[batch_size] = best_ms * 1000 / batch_size
        rows.append(
            [batch_size, f"{best_ms:.3f}", PAPER_MS[batch_size],
             f"{per_rule_us[batch_size]:.1f}"]
        )
    emit(
        format_table(
            ["batch size", "measured (ms)", "paper (ms)", "us/rule"],
            rows,
            title="Table II — batch insert into a warm (3,000-rule) trie",
        )
    )
    # Amortization shape: per-rule cost at batch=1000 is far below batch=1's
    # share of the fixed update cost in the paper (50 ms -> 0.075 ms/rule).
    assert per_rule_us[1000] <= per_rule_us[1] * 2  # no superlinear blowup
    # Total batch-1000 time stays compatible with a 5 s update period.
    total_ms = sum(float(r[1]) for r in rows)
    assert total_ms < 1000

    benchmark.pedantic(
        lambda: _warm_trie().insert_batch(_exact_rules(90_000, 1000)),
        rounds=3,
        iterations=1,
    )
