"""Section V-B latency: 34/38/52/80/107 us at 128...1500 B, 8 Gb/s load,
near zero-copy filter with 3,000 rules."""

import pytest

from benchmarks.conftest import emit
from repro.dataplane.throughput import ThroughputHarness
from repro.util.tables import format_table

PAPER_POINTS = {128: 34.0, 256: 38.0, 512: 52.0, 1024: 80.0, 1500: 107.0}


def test_latency_at_8gbps(benchmark):
    harness = ThroughputHarness()
    report = benchmark(harness.latency_sweep)
    rows = [
        [size, round(measured, 1), PAPER_POINTS[size]]
        for size, measured in zip(report.packet_sizes, report.latency_us)
    ]
    emit(
        format_table(
            ["size (B)", "model latency (us)", "paper (us)"],
            rows,
            title="Section V-B — average latency at 8 Gb/s constant load",
        )
    )
    for size, measured in zip(report.packet_sizes, report.latency_us):
        assert measured == pytest.approx(PAPER_POINTS[size], rel=0.12)
