"""Table I: exact mixed-ILP (first sub-optimal incumbent) vs the greedy.

Paper numbers (CPLEX on 20 cores vs greedy): 210s vs 0.31s at k=5,000,
1,615s vs 0.73s at k=15,000 — roughly three orders of magnitude.

Our branch & bound with the rounding heuristic disabled mirrors the
"stop at first sub-optimal solution" CPLEX configuration.  Exact solving at
k=5,000+ is impractical here exactly as it was for CPLEX, so the default
run uses scaled-down instances (k=50..200) where the ILP/greedy time ratio
already grows from ~50x to ~300x; VIF_BENCH_FULL=1 adds k=400.
"""

import time

import pytest

from benchmarks.conftest import emit, full_scale
from repro.optim.greedy import greedy_solve
from repro.optim.ilp import BranchAndBoundSolver
from repro.optim.problem import RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.stats import lognormal_bandwidths
from repro.util.units import GBPS

pytestmark = pytest.mark.slow


def _instance(k: int) -> RuleDistributionProblem:
    total = min(100, max(10, k // 10)) * GBPS
    return RuleDistributionProblem(
        bandwidths=lognormal_bandwidths(k, total, seed=k)
    )


def test_table1_ilp_vs_greedy(benchmark):
    ks = [50, 100, 200] + ([400] if full_scale() else [])
    rows = []
    ratios = []
    ilp_times = []
    greedy_times = []
    for k in ks:
        problem = _instance(k)
        start = time.perf_counter()
        greedy = greedy_solve(problem)
        greedy_s = time.perf_counter() - start
        assert validate_allocation(greedy) == []

        solver = BranchAndBoundSolver(
            stop_at_first_incumbent=True,
            use_rounding_heuristic=False,
            node_limit=100_000,
            time_limit_s=600,
        )
        start = time.perf_counter()
        result = solver.solve(problem)
        ilp_s = time.perf_counter() - start
        assert validate_allocation(result.allocation) == []
        ratios.append(ilp_s / max(greedy_s, 1e-9))
        ilp_times.append(ilp_s)
        greedy_times.append(greedy_s)
        rows.append([k, f"{ilp_s:.2f}", f"{greedy_s:.4f}", f"{ratios[-1]:.0f}x"])

    emit(
        "\n".join(
            [
                "Table I — ILP (first sub-optimal incumbent) vs greedy",
                "paper @k=5,000..15,000: 210..1,615 s vs 0.31..0.73 s (~670x)",
                "",
            ]
        )
    )
    from repro.util.tables import format_table

    emit(format_table(["k rules", "ILP (s)", "greedy (s)", "ratio"], rows))

    # The claims that matter (small-instance B&B times are noisy, so no
    # strict per-step monotonicity): the ILP is 10-1000x slower than the
    # greedy everywhere, the greedy stays in milliseconds, and the largest
    # instance shows the widest absolute gap.
    assert all(r > 10 for r in ratios)
    assert all(t < 0.5 for t in greedy_times)
    assert ilp_times[-1] - greedy_times[-1] == max(
        i - g for i, g in zip(ilp_times, greedy_times)
    )

    # Register the greedy at the largest k as the benchmark statistic.
    benchmark.pedantic(
        greedy_solve, args=(_instance(ks[-1]),), rounds=3, iterations=1
    )
