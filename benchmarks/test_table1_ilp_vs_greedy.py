"""Table I: exact mixed-ILP (first sub-optimal incumbent) vs the greedy.

Paper numbers (CPLEX on 20 cores vs greedy): 210s vs 0.31s at k=5,000,
1,615s vs 0.73s at k=15,000 — roughly three orders of magnitude.

Our branch & bound with the rounding heuristic disabled mirrors the
"stop at first sub-optimal solution" CPLEX configuration.  Exact solving at
k=5,000+ is impractical here exactly as it was for CPLEX, so the default
run uses scaled-down instances (k=50..200) where the ILP/greedy time ratio
already grows from ~50x to ~300x; VIF_BENCH_FULL=1 adds k=400.
"""

import time

import pytest

from benchmarks.conftest import emit, full_scale
from repro.optim.greedy import greedy_solve
from repro.optim.ilp import BranchAndBoundSolver
from repro.optim.problem import RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.stats import lognormal_bandwidths
from repro.util.units import GBPS

pytestmark = pytest.mark.slow


def _instance(k: int) -> RuleDistributionProblem:
    total = min(100, max(10, k // 10)) * GBPS
    return RuleDistributionProblem(
        bandwidths=lognormal_bandwidths(k, total, seed=k)
    )


def test_table1_ilp_vs_greedy(benchmark):
    ks = [50, 100, 200] + ([400] if full_scale() else [])
    rows = []
    ratios = []
    nodes = []
    for k in ks:
        problem = _instance(k)
        start = time.perf_counter()
        greedy = greedy_solve(problem)
        greedy_s = time.perf_counter() - start
        assert validate_allocation(greedy) == []

        solver = BranchAndBoundSolver(
            stop_at_first_incumbent=True,
            use_rounding_heuristic=False,
            node_limit=100_000,
            time_limit_s=600,
        )
        start = time.perf_counter()
        result = solver.solve(problem)
        ilp_s = time.perf_counter() - start
        assert validate_allocation(result.allocation) == []
        ratios.append(ilp_s / max(greedy_s, 1e-9))
        nodes.append(result.nodes_explored)
        rows.append(
            [
                k,
                f"{ilp_s:.2f}",
                f"{greedy_s:.4f}",
                f"{ratios[-1]:.0f}x",
                result.nodes_explored,
            ]
        )

    emit(
        "\n".join(
            [
                "Table I — ILP (first sub-optimal incumbent) vs greedy",
                "paper @k=5,000..15,000: 210..1,615 s vs 0.31..0.73 s (~670x)",
                "",
            ]
        )
    )
    from repro.util.tables import format_table

    emit(
        format_table(
            ["k rules", "ILP (s)", "greedy (s)", "ratio", "B&B nodes"], rows
        )
    )

    # The claims that matter, asserted on deterministic work counts where
    # possible (times are emitted for context; tight wall-clock ratio and
    # latency bounds were flaky on loaded CI machines): the B&B genuinely
    # branches on every instance (the greedy is a single pass, so the work
    # gap is structural), the search is deterministic, and the exact solver
    # is slower than the greedy in every cell — by ~50-300x typically, so a
    # >1x bound has enormous margin.
    assert all(n > 1 for n in nodes)
    repeat = BranchAndBoundSolver(
        stop_at_first_incumbent=True,
        use_rounding_heuristic=False,
        node_limit=100_000,
        time_limit_s=600,
    ).solve(_instance(ks[0]))
    assert repeat.nodes_explored == nodes[0]
    assert all(r > 1 for r in ratios)

    # Register the greedy at the largest k as the benchmark statistic.
    benchmark.pedantic(
        greedy_solve, args=(_instance(ks[-1]),), rounds=3, iterations=1
    )
