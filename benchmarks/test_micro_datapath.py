"""Micro-benchmarks of the real (wall-clock) data-path primitives.

Not a paper figure — these are the regression guards for the pieces whose
simulated costs the figure benches rely on: sketch update, trie lookup,
full filter decision, end-to-end pipeline packets/sec in pure Python.
"""

from benchmarks.conftest import emit
from repro.core.filter import ConnectionPreservingMode, StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.pipeline import FilterPipeline
from repro.dataplane.pktgen import PacketGenerator
from repro.lookup.multibit_trie import MultiBitTrie
from repro.sketch.countmin import CountMinSketch


def _rules(n=3000):
    return [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(dst_prefix=f"10.{i % 250}.{i // 250}.0/24"),
            action=Action.DROP,
        )
        for i in range(n)
    ]


def test_bench_sketch_update(benchmark):
    sketch = CountMinSketch()
    key = b"10.1.2.3|203.0.113.9|1234|80|6"
    benchmark(sketch.update, key)


def test_bench_trie_lookup_3000_rules(benchmark):
    trie = MultiBitTrie()
    trie.insert_batch(_rules())
    packet = PacketGenerator(0).uniform_flows(1, dst_ip="10.3.1.7")[0].make_packet()
    benchmark(trie.lookup, packet.five_tuple)


def test_bench_filter_decision(benchmark):
    filt = StatelessFilter(secret="bench", mode=ConnectionPreservingMode.HYBRID)
    filt.install_rules(_rules(1000))
    packet = PacketGenerator(0).uniform_flows(1, dst_ip="10.1.1.7")[0].make_packet()
    benchmark(filt.decide, packet)


def test_bench_pipeline_1k_packets(benchmark):
    filt = StatelessFilter(secret="bench")
    filt.install_rules(_rules(100))
    flows = PacketGenerator(1).uniform_flows(50, dst_ip="10.1.0.9")
    packets = [flow.make_packet() for flow in flows for _ in range(20)]

    def run():
        pipeline = FilterPipeline(filt)
        return pipeline.process(list(packets))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(f"pipeline forwarded {len(result)} / {len(packets)} packets")


# ---------------------------------------------------------------------------
# Compiled fast path: op-count gate + speedup report (PR convention: CI
# asserts deterministic operation counters, never wall clock; the measured
# packets/sec ratio is emitted into BENCH_fastpath.json for inspection).
# ---------------------------------------------------------------------------

import hashlib
import ipaddress
import random
import time

from benchmarks.conftest import emit_metrics_snapshot
from repro import obs
from repro.core.enclave_filter import EnclaveFilter
from repro.dataplane.packet import FiveTuple, Packet, Protocol


def _mixed_rules(n=600):
    """Deterministic + probabilistic rules over nested and non-stride prefixes."""
    rules = []
    for i in range(n):
        variant = i % 3
        if variant == 0:
            pattern = FlowPattern(dst_prefix=f"10.{i % 200}.0.0/16")
        elif variant == 1:
            pattern = FlowPattern(
                dst_prefix=f"10.{i % 200}.{(i // 200) % 250}.0/24",
                dst_ports=(80, 80),
            )
        else:  # /26 is not a multiple of the 8-bit stride
            pattern = FlowPattern(
                dst_prefix=f"10.{i % 200}.{(i // 200) % 250}.128/26"
            )
        if i % 2:
            rules.append(
                FilterRule(rule_id=i + 1, pattern=pattern, action=Action.DROP)
                if i % 4 == 1
                else FilterRule(rule_id=i + 1, pattern=pattern, action=Action.ALLOW)
            )
        else:
            rules.append(FilterRule(rule_id=i + 1, pattern=pattern, p_allow=0.5))
    return rules


def _mixed_workload(num_flows=256, num_packets=4096, burst_size=32):
    """Bursts drawn from a bounded flow population (realistic flow reuse)."""
    rng = random.Random(42)
    flows = [
        FiveTuple(
            src_ip=f"172.16.{rng.randrange(256)}.{rng.randrange(256)}",
            dst_ip=f"10.{rng.randrange(200)}.{rng.randrange(250)}."
            f"{rng.randrange(256)}",
            src_port=rng.randrange(1024, 65536),
            dst_port=rng.choice([80, 80, 443, 53]),
            protocol=Protocol.TCP,
        )
        for _ in range(num_flows)
    ]
    # Heavy-tailed flow popularity (attack traffic concentrates on a few
    # flows), so bursts contain duplicates for the coalescer to fold.
    packets = [
        Packet(
            five_tuple=flows[int(len(flows) * rng.random() ** 3)], size=600
        )
        for _ in range(num_packets)
    ]
    return [
        packets[i : i + burst_size] for i in range(0, len(packets), burst_size)
    ]


class _InterpretedReference:
    """The pre-compilation data path, kept as the speedup baseline.

    Per packet: ipaddress re-parse of both addresses, a linear
    most-specific scan over ipaddress-compiled rules, one salted SHA-256
    per sketch row per log (the old per-row hash-family derivation), and a
    per-packet connection-preserving hash for probabilistic verdicts.
    """

    def __init__(self, rules, secret="bench", depth=2):
        self._rules = [
            (
                ipaddress.ip_network(r.pattern.src_prefix, strict=False),
                ipaddress.ip_network(r.pattern.dst_prefix, strict=False),
                r,
            )
            for r in rules
        ]
        self._secret = secret
        self._depth = depth

    def _log(self, key, seed):
        for row in range(self._depth):
            hashlib.sha256(f"{seed}/row-{row}".encode() + key).digest()

    def process_burst(self, packets):
        verdicts = []
        for packet in packets:
            ft = packet.five_tuple
            self._log(ft.src_ip.encode(), "vif/in")
            src = ipaddress.ip_address(ft.src_ip)
            dst = ipaddress.ip_address(ft.dst_ip)
            best = None
            for src_net, dst_net, r in self._rules:
                if src not in src_net or dst not in dst_net:
                    continue
                p = r.pattern
                if p.src_ports and not p.src_ports[0] <= ft.src_port <= p.src_ports[1]:
                    continue
                if p.dst_ports and not p.dst_ports[0] <= ft.dst_port <= p.dst_ports[1]:
                    continue
                if p.protocol is not None and ft.protocol != p.protocol:
                    continue
                if (
                    best is None
                    or p.specificity > best.pattern.specificity
                    or (
                        p.specificity == best.pattern.specificity
                        and r.rule_id < best.rule_id
                    )
                ):
                    best = r
            if best is None:
                allowed = True
            elif best.deterministic:
                allowed = best.action is Action.ALLOW
            else:
                digest = hashlib.sha256(
                    f"{self._secret}|{best.rule_id}".encode() + ft.key()
                ).digest()
                allowed = (
                    int.from_bytes(digest[:8], "big") < best.p_allow * 2**64
                )
            if allowed:
                self._log(ft.key(), "vif/out")
            verdicts.append(allowed)
        return verdicts


def test_fastpath_opcount_gate():
    """Steady state: zero ipaddress parses, <= 2 SHA-256 digests per packet.

    Deterministic by construction — the counters count operations, not
    time — so this gate cannot flake on a loaded CI runner.
    """
    filt = EnclaveFilter(secret="bench")
    filt.install_rules(_mixed_rules())
    bursts = _mixed_workload()
    for burst in bursts:  # warm-up: populate decision cache + flow table
        filt.process_burst(burst)
    filt.rule_update_tick()

    registry = obs.get_registry()
    ip_parses = registry.counter("vif_fastpath_ipaddress_parses_total")
    sha_digests = registry.counter("vif_fastpath_sha256_digests_total")
    cache_hits = registry.counter("vif_fastpath_decision_cache_hits_total")
    burst_packets = registry.counter("vif_fastpath_burst_packets_total")
    burst_flows = registry.counter("vif_fastpath_burst_unique_flows_total")
    ip0, sha0 = ip_parses.value, sha_digests.value
    hits0, bp0, bf0 = cache_hits.value, burst_packets.value, burst_flows.value

    packets = 0
    for burst in bursts:
        filt.process_burst(burst)
        packets += len(burst)

    assert packets == 4096
    assert ip_parses.value - ip0 == 0, "steady state must not re-parse addresses"
    assert sha_digests.value - sha0 <= 2 * packets, (
        "steady state budget is <= 2 SHA-256 digests per packet "
        f"(got {sha_digests.value - sha0} for {packets})"
    )
    # Every steady-state flow decision is served from the memo.
    assert cache_hits.value - hits0 == burst_flows.value - bf0
    coalescing = (burst_packets.value - bp0) / (burst_flows.value - bf0)
    assert coalescing > 1.0, "the workload reuses flows; bursts must coalesce"
    emit(
        f"fastpath steady state: {sha_digests.value - sha0} digests / "
        f"{packets} packets, coalescing ratio {coalescing:.2f}"
    )


def test_bench_fastpath_vs_interpreted_reference():
    """Measure compiled vs interpreted packets/sec; emit, never assert.

    Wall-clock ratios vary with the runner, so the speedup is recorded in
    BENCH_fastpath.json (CI artifact) rather than gated — the deterministic
    gate above is what protects the fast path from regressing.
    """
    rules = _mixed_rules()
    bursts = _mixed_workload()
    packets = sum(len(b) for b in bursts)

    compiled = EnclaveFilter(secret="bench")
    compiled.install_rules(rules)
    for burst in bursts:  # warm-up
        compiled.process_burst(burst)
    compiled.rule_update_tick()
    start = time.perf_counter()
    for burst in bursts:
        compiled.process_burst(burst)
    compiled_s = time.perf_counter() - start

    # The interpreted baseline is ~two orders slower; one burst in eight
    # keeps the benchmark quick while measuring the identical work mix.
    reference = _InterpretedReference(rules)
    ref_bursts = bursts[::8]
    ref_packets = sum(len(b) for b in ref_bursts)
    start = time.perf_counter()
    for burst in ref_bursts:
        reference.process_burst(burst)
    interpreted_s = time.perf_counter() - start

    compiled_pps = packets / compiled_s
    interpreted_pps = ref_packets / interpreted_s
    speedup = compiled_pps / interpreted_pps
    emit(
        f"fastpath: compiled {compiled_pps:,.0f} pps, "
        f"interpreted reference {interpreted_pps:,.0f} pps, "
        f"speedup {speedup:.1f}x"
    )
    path = emit_metrics_snapshot(
        "fastpath",
        extra={
            "packets": packets,
            "compiled_pps": round(compiled_pps),
            "interpreted_pps": round(interpreted_pps),
            "speedup": round(speedup, 2),
        },
    )
    emit(f"wrote {path}")
