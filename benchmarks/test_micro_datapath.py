"""Micro-benchmarks of the real (wall-clock) data-path primitives.

Not a paper figure — these are the regression guards for the pieces whose
simulated costs the figure benches rely on: sketch update, trie lookup,
full filter decision, end-to-end pipeline packets/sec in pure Python.
"""

from benchmarks.conftest import emit
from repro.core.filter import ConnectionPreservingMode, StatelessFilter
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.pipeline import FilterPipeline
from repro.dataplane.pktgen import PacketGenerator
from repro.lookup.multibit_trie import MultiBitTrie
from repro.sketch.countmin import CountMinSketch


def _rules(n=3000):
    return [
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(dst_prefix=f"10.{i % 250}.{i // 250}.0/24"),
            action=Action.DROP,
        )
        for i in range(n)
    ]


def test_bench_sketch_update(benchmark):
    sketch = CountMinSketch()
    key = b"10.1.2.3|203.0.113.9|1234|80|6"
    benchmark(sketch.update, key)


def test_bench_trie_lookup_3000_rules(benchmark):
    trie = MultiBitTrie()
    trie.insert_batch(_rules())
    packet = PacketGenerator(0).uniform_flows(1, dst_ip="10.3.1.7")[0].make_packet()
    benchmark(trie.lookup, packet.five_tuple)


def test_bench_filter_decision(benchmark):
    filt = StatelessFilter(secret="bench", mode=ConnectionPreservingMode.HYBRID)
    filt.install_rules(_rules(1000))
    packet = PacketGenerator(0).uniform_flows(1, dst_ip="10.1.1.7")[0].make_packet()
    benchmark(filt.decide, packet)


def test_bench_pipeline_1k_packets(benchmark):
    filt = StatelessFilter(secret="bench")
    filt.install_rules(_rules(100))
    flows = PacketGenerator(1).uniform_flows(50, dst_ip="10.1.0.9")
    packets = [flow.make_packet() for flow in flows for _ in range(20)]

    def run():
        pipeline = FilterPipeline(filt)
        return pipeline.process(list(packets))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(f"pipeline forwarded {len(result)} / {len(packets)} packets")
