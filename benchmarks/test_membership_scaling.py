"""Membership tier vs trie-only at blocklist scale: 10k → 100k → 1M → 10M.

The pathology this tier exists for: a million exact ``/32`` source DROP
rules all carry source-prefix length 32 and an unconstrained destination,
so the multibit trie cannot discriminate by destination and every lookup
degenerates into a scan (~126 ms/verdict at 1M on this host).  The
Bloom-pre-filter + cuckoo-confirm membership tier answers the same
queries in O(1): one shared SHA-256 digest, three Bloom probes, at most
two bucket reads.

CI asserts the deterministic claims — verdict agreement between both
stores on every probe, and the throughput gate (tiered >= 3x trie-only at
1M entries; measured headroom is ~4 orders of magnitude).  The 10M row of
the table is *modeled* (memory from the EPC cost model, trie pps
extrapolated linearly from the measured scan slope) and marked as such;
a real 10M build runs under ``-m slow`` only.

Results land in ``BENCH_membership.json``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit, emit_metrics_snapshot
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.packet import FiveTuple, Protocol
from repro.lookup.membership import (
    MembershipStats,
    MembershipTier,
    TieredRuleStore,
    _next_power_of_two,
)
from repro.lookup.memory_model import EnclaveMemoryModel

_BLOCK_BASE = 0x64400000  # 100.64.0.0 — a /10, room for 4M distinct sources
#: The acceptance gate: tiered verdict throughput over trie-only at 1M.
MIN_SPEEDUP_AT_1M = 3.0
#: Measured sizes; 10M is modeled in the fast run (built for real under -m slow).
SIZES = (10_000, 100_000, 1_000_000)


def _flow(src_int: int) -> FiveTuple:
    return FiveTuple(
        src_ip=f"{src_int >> 24 & 255}.{src_int >> 16 & 255}."
               f"{src_int >> 8 & 255}.{src_int & 255}",
        dst_ip="198.18.0.9",
        src_port=1234,
        dst_port=80,
        protocol=Protocol.UDP,
    )


def _probe_flows(size: int, n: int):
    """Half blocked sources (spread over the range), half clean misses."""
    step = max(1, size // (n // 2))
    blocked = [_flow(_BLOCK_BASE + i) for i in range(0, size, step)][: n // 2]
    clean = [_flow(0xC6336400 + i % 256) for i in range(n - len(blocked))]
    return blocked, clean


def _measure_pps(store, flows, repeats: int = 1) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        for flow in flows:
            store.lookup(flow)
    elapsed = time.perf_counter() - started
    return len(flows) * repeats / elapsed if elapsed else float("inf")


def _build_tiered(size: int):
    store = TieredRuleStore(membership=MembershipTier(initial_capacity=size))
    started = time.perf_counter()
    store.load_blocklist(
        ((i + 1, _BLOCK_BASE + i) for i in range(size)), requested_by="bench"
    )
    return store, time.perf_counter() - started


def _build_trie_only(size: int):
    store = TieredRuleStore(membership_enabled=False)
    started = time.perf_counter()
    for i in range(size):
        store.insert(FilterRule(
            rule_id=i + 1,
            pattern=FlowPattern.from_src_host(_BLOCK_BASE + i),
            action=Action.DROP,
        ))
    return store, time.perf_counter() - started


def _modeled_10m_row(model: EnclaveMemoryModel, trie_ms_per_lookup_at_1m: float):
    """The 10M row: cost-model memory + linearly extrapolated trie scan."""
    size = 10_000_000
    capacity = _next_power_of_two(size)
    stats = MembershipStats(
        entries=size,
        bloom_bits=_next_power_of_two(
            size * MembershipTier.BLOOM_BITS_PER_ENTRY
        ),
        bloom_ones=0,
        bloom_lanes=3,
        num_buckets=_next_power_of_two(int(capacity / (4 * 0.8))),
        slots_per_bucket=4,
        stash_entries=0,
        load_factor=0.0,
        fpr_estimate=0.0,
        generation=1,
        resizes=0,
    )
    trie_pps = 1000.0 / (trie_ms_per_lookup_at_1m * 10)  # scan is linear in N
    return {
        "entries": size,
        "modeled": True,
        "tiered_mb": model.membership_footprint_bytes(stats) / 2**20,
        "trie_mb": (model.footprint_bytes(size) - model.base_bytes) / 2**20,
        "trie_pps": trie_pps,
    }


def test_membership_scaling_and_throughput_gate():
    model = EnclaveMemoryModel()
    rows = []
    trie_ms_at_1m = None
    speedup_at_1m = None

    for size in SIZES:
        tiered, tiered_build_s = _build_tiered(size)
        trie_only, trie_build_s = _build_trie_only(size)

        # Verdict agreement on the full probe set, both directions.
        blocked, clean = _probe_flows(size, 64)
        for flow in blocked:
            hit_t = tiered.lookup(flow)
            hit_r = trie_only.lookup(flow)
            assert hit_t is not None and hit_r is not None
            assert hit_t.rule_id == hit_r.rule_id
        for flow in clean:
            assert tiered.lookup(flow) is None
            assert trie_only.lookup(flow) is None

        # Throughput: generous probe budget for the tier, an adaptive one
        # for the trie (its per-lookup cost grows linearly with N).
        mix = blocked + clean
        tiered_pps = _measure_pps(tiered, mix, repeats=max(1, 2000 // len(mix)))
        trie_probes = mix[: max(4, min(64, 2_000_000 // size))]
        trie_pps = _measure_pps(trie_only, trie_probes)

        stats = tiered.membership_stats()
        rows.append({
            "entries": size,
            "modeled": False,
            "tiered_build_s": round(tiered_build_s, 2),
            "trie_build_s": round(trie_build_s, 2),
            "tiered_pps": round(tiered_pps),
            "trie_pps": round(trie_pps, 2),
            "speedup": round(tiered_pps / trie_pps, 1),
            "tiered_mb": round(
                model.membership_footprint_bytes(stats) / 2**20, 1
            ),
            "trie_mb": round(
                (model.footprint_bytes(size) - model.base_bytes) / 2**20, 1
            ),
            "fpr_estimate": round(stats.fpr_estimate, 5),
            "load_factor": round(stats.load_factor, 3),
        })
        if size == 1_000_000:
            trie_ms_at_1m = 1000.0 / trie_pps
            speedup_at_1m = tiered_pps / trie_pps

    rows.append(_modeled_10m_row(model, trie_ms_at_1m))

    lines = [
        f"{'entries':>10}  {'tiered pps':>12}  {'trie pps':>10}  "
        f"{'speedup':>9}  {'tier MB':>8}  {'trie MB':>8}",
    ]
    for row in rows:
        tag = " (modeled)" if row["modeled"] else ""
        lines.append(
            f"{row['entries']:>10,}  "
            f"{row.get('tiered_pps', '-'):>12}  "
            f"{round(row['trie_pps'], 2):>10}  "
            f"{row.get('speedup', '-'):>9}  "
            f"{round(row['tiered_mb'], 1):>8}  "
            f"{round(row['trie_mb'], 1):>8}{tag}"
        )
    emit("\n".join(lines))
    emit_metrics_snapshot("membership", extra={"rows": rows})

    assert speedup_at_1m >= MIN_SPEEDUP_AT_1M, (
        f"tiered/trie speedup at 1M = {speedup_at_1m:.1f}x "
        f"< gate {MIN_SPEEDUP_AT_1M}x"
    )
    # The measured FPR stays under the tier's own resize trigger.
    assert all(
        row["fpr_estimate"] < 0.05 for row in rows if not row["modeled"]
    )


@pytest.mark.slow
def test_membership_10m_real_build():
    """The full-scale claim, built for real: 10M entries, O(1) verdicts."""
    size = 10_000_000
    tiered, build_s = _build_tiered(size)
    stats = tiered.membership_stats()
    assert stats.entries == size
    blocked, clean = _probe_flows(size, 64)
    for flow in blocked:
        assert tiered.lookup(flow) is not None
    for flow in clean:
        assert tiered.lookup(flow) is None
    pps = _measure_pps(tiered, blocked + clean, repeats=10)
    emit(f"10M real build: {build_s:.1f}s, {pps:,.0f} pps, "
         f"load {stats.load_factor:.3f}, FPR est {stats.fpr_estimate:.5f}")
    assert pps > 10_000
