"""Ablation (Appendix A/F): hash-based vs exact-match vs hybrid execution
of non-deterministic rules.

The design trade-off the paper describes: hash-based pays a per-packet
SHA cost but no table memory; exact-match pays table memory and update
latency but one lookup per packet; the hybrid amortizes conversion into
batch updates and hashes only new flows.  We measure real per-packet work
(hash evaluations, table hits, table size) over a realistic flow mix.
"""

from benchmarks.conftest import emit
from repro.core.filter import ConnectionPreservingMode, StatelessFilter
from repro.core.rules import FilterRule, FlowPattern
from repro.dataplane.pktgen import PacketGenerator
from repro.util.tables import format_table

RULE = FilterRule(
    rule_id=1, pattern=FlowPattern(dst_prefix="203.0.113.0/24"), p_allow=0.5
)


def _workload(num_flows=400, packets_per_flow=10):
    generator = PacketGenerator(3)
    flows = generator.uniform_flows(num_flows, dst_ip="203.0.113.9")
    packets = []
    for flow in flows:
        packets.extend(flow.make_packet() for _ in range(packets_per_flow))
    return packets


def _run(mode, packets, tick_every=1000):
    filt = StatelessFilter(secret="ablation", mode=mode)
    filt.install_rule(RULE)
    for i, packet in enumerate(packets):
        filt.decide(packet)
        if mode is ConnectionPreservingMode.HYBRID and i % tick_every == 0:
            filt.rule_update_tick()
    filt.rule_update_tick()
    return filt


def test_connection_preserving_mode_ablation(benchmark):
    packets = _workload()
    rows = []
    stats = {}
    for mode in ConnectionPreservingMode:
        filt = _run(mode, packets)
        stats[mode] = filt
        rows.append(
            [
                mode.value,
                filt.hash_evaluations,
                filt.table_hits,
                len(filt.flow_table),
                filt.flow_table.memory_bytes(),
            ]
        )
    emit(
        format_table(
            ["mode", "SHA evals", "table hits", "table entries", "table bytes"],
            rows,
            title="Appendix A/F ablation — connection-preserving execution "
                  "(400 flows x 10 packets)",
        )
    )

    hash_mode = stats[ConnectionPreservingMode.HASH_BASED]
    exact = stats[ConnectionPreservingMode.EXACT_MATCH]
    hybrid = stats[ConnectionPreservingMode.HYBRID]
    # Hash mode: one SHA per packet, zero memory.
    assert hash_mode.hash_evaluations == len(packets)
    assert len(hash_mode.flow_table) == 0
    # Exact-match: one SHA per flow, the rest are table hits, full table.
    assert exact.hash_evaluations == 400
    assert exact.table_hits == len(packets) - 400
    assert len(exact.flow_table) == 400
    # Hybrid: SHA count strictly between the two, same eventual table.
    assert 400 <= hybrid.hash_evaluations < len(packets)
    assert len(hybrid.flow_table) == 400

    benchmark.pedantic(
        _run,
        args=(ConnectionPreservingMode.HYBRID, packets),
        rounds=3,
        iterations=1,
    )
