"""Ablation (paper §VIII-A context): VIF at IXPs vs SENSS-style filtering
at major transit ISPs.

SENSS shows a handful of major ISPs can stop large attacks; VIF argues IXPs
are the *deployable* place (single facility, SDN fabric, hundreds of
members) with comparable reach.  This bench puts both on the same synthetic
Internet: coverage from the 5 largest IXPs (one per region) vs the N
largest transit ISPs by customer cone.
"""

from benchmarks.conftest import emit
from repro.interdomain import (
    dns_resolver_population,
    generate_internet,
    ixp_coverage,
)
from repro.interdomain.baselines import (
    isp_deployment_coverage,
    top_transit_ases,
)
from repro.interdomain.simulation import choose_victims
from repro.util.tables import format_table


def test_ixp_vs_transit_isp_deployment(benchmark):
    graph, ixps = generate_internet()
    victims = choose_victims(graph, 40)
    sources = dns_resolver_population(graph)

    def run():
        vif = ixp_coverage(graph, ixps, victims, sources, top_levels=(1, 5))
        top_isps = top_transit_ases(graph, 10)
        isp = isp_deployment_coverage(
            graph, top_isps, victims, sources, cumulative_levels=(1, 3, 5, 10)
        )
        return vif, isp

    vif, isp = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, summary in [
        ("VIF @ top-1 IXP/region (5 sites)", vif.summary(1)),
        ("VIF @ top-5 IXPs/region (25 sites)", vif.summary(5)),
        ("filters @ top-1 transit ISP", isp.summary(1)),
        ("filters @ top-3 transit ISPs", isp.summary(3)),
        ("filters @ top-5 transit ISPs", isp.summary(5)),
        ("filters @ top-10 transit ISPs", isp.summary(10)),
    ]:
        rows.append([label, round(summary.median, 3), round(summary.p75, 3)])
    emit(
        format_table(
            ["deployment", "median coverage", "p75"],
            rows,
            title="Ablation — IXP deployment vs transit-ISP deployment",
        )
    )

    # The positioning claim: 5 IXP sites reach roughly what ~5 major
    # transit ISPs reach, and a single ISP is far below a single round of
    # regional IXPs (one facility each).
    assert vif.summary(1).median >= 0.8 * isp.summary(5).median
    assert vif.summary(1).median > 3 * isp.summary(1).median
    # ISP coverage grows monotonically with deployment size.
    medians = [isp.median(level) for level in (1, 3, 5, 10)]
    assert medians == sorted(medians)
