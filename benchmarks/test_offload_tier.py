"""Untrusted fast-drop offload tier vs enclave-only, end to end.

The scenario ROADMAP item 4 prices: 90 % of ingress is obvious bulk (exact
``/32`` blocked sources — the blackhole-list shape), and an untrusted
pre-filter drops it ahead of the enclave while a verifiable sampler diverts
``rate`` of those drop decisions back into the enclave for re-verdict.  The
gate is **measured**: the tiered path must sustain >= 3x the end-to-end
packet rate of the enclave-only path at a sample rate of 0.1, with verdicts
bit-identical (the tier only short-circuits drops the enclave would have
made anyway).

The trade-off table sweeps the sample rate (1.0 / 0.1 / 0.01): rate 1.0 is
the "free" verifiability point (every drop re-verdicted — no speedup, total
confidence), rate 0.01 the cheap end (max speedup, wider detection bound).
Modeled speedup and the priced audit overhead from
:class:`~repro.dataplane.cost_model.CostModel` land next to the measured
numbers in ``BENCH_offload.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, emit_metrics_snapshot, full_scale
from repro import obs
from repro.core.enclave_filter import EnclaveFilter
from repro.dataplane.cost_model import ImplementationVariant, PAPER_COST_MODEL
from repro.dataplane.offload import (
    FastDropTier,
    OffloadAuditor,
    OffloadEngine,
    VerifiableSampler,
    rounds_to_detection,
)
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.lookup.membership import MembershipRule

#: The acceptance gate: tiered end-to-end pps over enclave-only at 90%
#: droppable traffic with a sample rate <= 0.1.
MIN_SPEEDUP = 3.0
DROP_FRACTION = 0.9
GATE_RATE = 0.1
#: Swept sample rates (the audit-cost/speedup trade-off table).
RATES = (1.0, 0.1, 0.01)

SEED = "vif-offload-bench"
_BLOCK_BASE = 0x64400000  # 100.64.0.0 — the CGNAT range, all blocked
_CLEAN_BASE = 0xC6336400  # 198.51.100.0 — never blocked
BURST = 256


def _sizes():
    if full_scale():
        return 100_000, 20_000
    return 20_000, 4_000


def _flow(src_int: int) -> FiveTuple:
    return FiveTuple(
        src_ip=f"{src_int >> 24 & 255}.{src_int >> 16 & 255}."
               f"{src_int >> 8 & 255}.{src_int & 255}",
        dst_ip="198.18.0.9",
        src_port=1234,
        dst_port=80,
        protocol=Protocol.UDP,
    )


def _trace(blocklist_size: int, packets: int):
    """90% blocked sources (spread over the blocklist), 10% clean."""
    trace = []
    step = max(1, blocklist_size * 10 // (packets * 9))
    blocked_cursor = 0
    for i in range(packets):
        if i % 10 == 0:
            src = _CLEAN_BASE + i % 256
        else:
            src = _BLOCK_BASE + (blocked_cursor % blocklist_size)
            blocked_cursor += step
        trace.append(Packet(five_tuple=_flow(src), size=64))
    return trace


def _fresh_enclave(blocklist) -> EnclaveFilter:
    program = EnclaveFilter(
        secret=f"{SEED}/enclave",
        sketch_seed=SEED,
        decision_secret=f"{SEED}/decisions",
    )
    program.load_blocklist(blocklist)
    return program


def _run_bursts(process_burst, trace):
    verdicts = []
    started = time.perf_counter()
    for start in range(0, len(trace), BURST):
        verdicts.extend(process_burst(trace[start : start + BURST]))
    return time.perf_counter() - started, verdicts


def test_offload_tier_speedup_gate():
    blocklist_size, num_packets = _sizes()
    blocklist = [(1_000_000 + i, _BLOCK_BASE + i) for i in range(blocklist_size)]
    trace = _trace(blocklist_size, num_packets)
    repeats = 3

    # -- enclave-only baseline (min of repeats → best sustained rate) -------
    enclave_s = float("inf")
    baseline_verdicts = None
    for _ in range(repeats):
        program = _fresh_enclave(blocklist)
        elapsed, verdicts = _run_bursts(program.process_burst, trace)
        enclave_s = min(enclave_s, elapsed)
        baseline_verdicts = verdicts
    enclave_pps = len(trace) / enclave_s
    dropped = sum(1 for v in baseline_verdicts if not v)
    measured_drop_fraction = dropped / len(trace)
    assert abs(measured_drop_fraction - DROP_FRACTION) < 0.02, (
        f"trace is {measured_drop_fraction:.1%} droppable, "
        f"wanted ~{DROP_FRACTION:.0%}"
    )

    model = PAPER_COST_MODEL
    variant = ImplementationVariant.SGX_ZERO_COPY
    rows = []
    gate_speedup = None

    for rate in RATES:
        sampler = VerifiableSampler(rate, seed=SEED)
        tier = FastDropTier(sampler, initial_capacity=blocklist_size)
        tier.install_rules(
            [MembershipRule(rule_id=rid, src_int=src) for rid, src in blocklist]
        )
        auditor = OffloadAuditor(sampler)
        engine = OffloadEngine(tier, auditor)
        tiered_s = float("inf")
        tiered_verdicts = None
        for _ in range(repeats):
            engine.bind(_fresh_enclave(blocklist).process_burst)
            elapsed, verdicts = _run_bursts(engine.process_burst, trace)
            tiered_s = min(tiered_s, elapsed)
            tiered_verdicts = verdicts
        # The tier only short-circuits drops the enclave would have made:
        # bit-identical verdicts at every sample rate, not just 1.0.
        assert [bool(v) for v in tiered_verdicts] == [
            bool(v) for v in baseline_verdicts
        ], f"tiered path changed verdicts at rate {rate}"
        report, _ = engine.close_round(1)
        assert report.disagreed == 0, "honest tier produced disagreements"
        assert not report.shortfall, "honest tier tripped the shortfall bound"

        tiered_pps = len(trace) / tiered_s
        speedup = tiered_pps / enclave_pps
        sampled_share = report.sampled / (repeats * len(trace))
        modeled_speedup = model.offload_speedup(
            variant, 64, blocklist_size, DROP_FRACTION, rate
        )
        audit_cycles = model.offload_audit_overhead_cycles(
            variant, 64, blocklist_size, DROP_FRACTION, rate
        )
        rows.append({
            "sample_rate": rate,
            "tiered_pps": round(tiered_pps),
            "enclave_pps": round(enclave_pps),
            "speedup": round(speedup, 2),
            "sampled_share": round(sampled_share, 4),
            "modeled_speedup": round(modeled_speedup, 2),
            "modeled_audit_cycles_per_pkt": round(audit_cycles, 1),
            "detect_rounds_at_100_misdrops": rounds_to_detection(100, rate),
        })
        if rate == GATE_RATE:
            gate_speedup = speedup

    lines = [
        f"offload tier vs enclave-only: {blocklist_size:,} blocked /32s, "
        f"{num_packets:,} packets/pass, {DROP_FRACTION:.0%} droppable, "
        f"enclave-only {enclave_pps:,.0f} pps",
        f"{'rate':>6}  {'tiered pps':>12}  {'speedup':>8}  "
        f"{'sampled':>8}  {'model x':>8}  {'audit cyc/pkt':>14}  "
        f"{'detect@100':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['sample_rate']:>6}  {row['tiered_pps']:>12,}  "
            f"{row['speedup']:>7}x  {row['sampled_share']:>8}  "
            f"{row['modeled_speedup']:>7}x  "
            f"{row['modeled_audit_cycles_per_pkt']:>14}  "
            f"{row['detect_rounds_at_100_misdrops']:>10}"
        )
    emit("\n".join(lines))
    emit_metrics_snapshot("offload", extra={
        "rows": rows,
        "gate": {
            "min_speedup": MIN_SPEEDUP,
            "drop_fraction": DROP_FRACTION,
            "sample_rate": GATE_RATE,
            "measured_speedup": round(gate_speedup, 2),
        },
    })

    # Conservation across every pass: the tier accounted for every packet.
    totals = obs.get_registry().snapshot()["totals"]
    assert totals["vif_offload_ingress_total"] == (
        totals["vif_offload_drops_total"]
        + totals["vif_offload_sampled_total"]
        + totals["vif_offload_passed_total"]
    )

    assert gate_speedup >= MIN_SPEEDUP, (
        f"tiered/enclave speedup at rate {GATE_RATE} = {gate_speedup:.2f}x "
        f"< gate {MIN_SPEEDUP}x"
    )
