"""Ablation (Appendix F): hashed-packet ratio under flow churn.

Fig 14's performance argument rests on the claim that "the fraction of
newly observed flows within a short period (e.g., 5 seconds) would be
small" — so the hybrid design's SHA-256 path is rarely taken once warm.
This bench simulates a flow population with churn (long-lived flows plus a
stream of new arrivals each update period) and measures the hashed ratio
per period, connecting it back to the Fig 14 throughput curve.
"""

from benchmarks.conftest import emit
from repro.core.filter import ConnectionPreservingMode, StatelessFilter
from repro.core.rules import FilterRule, FlowPattern
from repro.dataplane.cost_model import (
    ImplementationVariant,
    PAPER_COST_MODEL,
)
from repro.dataplane.pktgen import PacketGenerator
from repro.util.tables import format_table

RULE = FilterRule(
    rule_id=1, pattern=FlowPattern(dst_prefix="203.0.113.0/24"), p_allow=0.5
)


def _run_periods(
    num_periods=8,
    stable_flows=500,
    new_flows_per_period=25,
    packets_per_flow=4,
):
    generator = PacketGenerator(9)
    stable = generator.uniform_flows(stable_flows, dst_ip="203.0.113.9")
    filt = StatelessFilter(secret="churn", mode=ConnectionPreservingMode.HYBRID)
    filt.install_rule(RULE)

    ratios = []
    next_new = 0
    for period in range(num_periods):
        new = generator.uniform_flows(
            new_flows_per_period,
            dst_ip="203.0.113.9",
            src_subnet_octets=(172, 16 + next_new % 200),
        )
        next_new += 1
        hashed_before = filt.hash_evaluations
        packets = 0
        for flow in list(stable) + list(new):
            for _ in range(packets_per_flow):
                filt.decide(flow.make_packet())
                packets += 1
        ratios.append((filt.hash_evaluations - hashed_before) / packets)
        filt.rule_update_tick()
    return ratios


def test_hybrid_hash_ratio_under_churn(benchmark):
    ratios = benchmark.pedantic(_run_periods, rounds=1, iterations=1)
    model = PAPER_COST_MODEL
    rows = [
        [
            period + 1,
            f"{ratio:.1%}",
            round(
                model.achieved_wire_gbps(
                    ImplementationVariant.SGX_ZERO_COPY, 64, 3000,
                    hash_ratio=ratio,
                ),
                2,
            ),
        ]
        for period, ratio in enumerate(ratios)
    ]
    emit(
        format_table(
            ["update period", "hashed-packet ratio", "implied 64 B Gb/s"],
            rows,
            title=(
                "Appendix F — hash ratio under churn "
                "(500 stable flows + 25 new per period)"
            ),
        )
    )
    # Period 1 hashes everything (cold start)...
    assert ratios[0] > 0.9
    # ...then the batch conversion drives the ratio into the paper's
    # "<10%" regime, where Fig 14 shows no throughput loss except at 64 B.
    assert all(r < 0.10 for r in ratios[1:])
    warm = ratios[-1]
    degradation = 1 - (
        PAPER_COST_MODEL.achieved_wire_gbps(
            ImplementationVariant.SGX_ZERO_COPY, 64, 3000, hash_ratio=warm
        )
        / PAPER_COST_MODEL.achieved_wire_gbps(
            ImplementationVariant.SGX_ZERO_COPY, 64, 3000, hash_ratio=0.0
        )
    )
    assert degradation < 0.10  # negligible even at the worst packet size
