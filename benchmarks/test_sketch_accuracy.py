"""Ablation: count-min width vs bypass-detection fidelity.

The paper picks 64 K bins x 2 rows x 64-bit counters (~1 MB/sketch).  This
bench quantifies what that buys: at paper width, per-flow estimates over a
realistic flow population are essentially exact (so even a single skimmed
packet is visible); at small widths collisions inflate estimates — audits
stay sound (no underestimates, drops still detected) but fine-grained
attribution blurs.
"""

from benchmarks.conftest import emit
from repro.dataplane.pktgen import PacketGenerator
from repro.sketch.countmin import CountMinSketch
from repro.util.tables import format_table


def _flows(n=2000):
    return [f.five_tuple for f in PacketGenerator(5).uniform_flows(n)]


def test_sketch_width_vs_accuracy(benchmark):
    flows = _flows()
    truth = {flow.key(): (i % 7) + 1 for i, flow in enumerate(flows)}
    rows = []
    overestimates = {}
    for width in (256, 1024, 4096, 16 * 1024, 64 * 1024):
        sketch = CountMinSketch(depth=2, width=width)
        for key, count in truth.items():
            sketch.update(key, count)
        errors = [sketch.estimate(key) - count for key, count in truth.items()]
        assert all(e >= 0 for e in errors)  # CM soundness at every width
        overestimates[width] = sum(1 for e in errors if e > 0) / len(errors)
        rows.append(
            [
                width,
                f"{sketch.memory_bytes() / 1024:.0f} KiB",
                f"{overestimates[width]:.1%}",
                max(errors),
            ]
        )
    emit(
        format_table(
            ["width (bins)", "memory", "flows overestimated", "max error"],
            rows,
            title="Ablation — count-min width vs accuracy "
                  "(2,000 flows; paper config: 64 K bins / ~1 MB)",
        )
    )
    # Paper configuration: (essentially) collision-free at this flow count.
    assert overestimates[64 * 1024] < 0.01
    # Narrow sketches visibly degrade — the knob matters.
    assert overestimates[256] > overestimates[64 * 1024]

    def build_paper_sketch():
        sketch = CountMinSketch()
        for key, count in truth.items():
            sketch.update(key, count)
        return sketch

    benchmark.pedantic(build_paper_sketch, rounds=3, iterations=1)
