"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig8
    python -m repro.cli run all
    python -m repro.cli fleet-sim --fleet-size 10 --rounds 8 --kill 0.2
    python -m repro.cli fleet-sim --rounds 8 --journal fleet.journal.jsonl
    python -m repro.cli metrics --json metrics.json --trace round.trace.json
    python -m repro.cli audit fleet.journal.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments import list_experiments, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Practical Verifiable In-network Filtering for "
            "DDoS Defense' (VIF, ICDCS 2019): regenerate any table or figure."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment key from 'list', or 'all'")
    fleet = sub.add_parser(
        "fleet-sim",
        help="run the fault-injection fleet simulation",
        description=(
            "Deploy a filtering fleet, play a seeded fault schedule against "
            "it, and report recovery counters.  The run is deterministic "
            "given --seed; the fail-closed invariant (no rule traffic "
            "delivered unfiltered) is checked every round."
        ),
    )
    fleet.add_argument("--seed", default="fleet-sim", help="schedule/traffic seed")
    fleet.add_argument("--fleet-size", type=int, default=10, metavar="N",
                       help="enclaves to deploy (default 10)")
    fleet.add_argument("--rules", type=int, default=24, metavar="K",
                       help="filter rules to install (default 24)")
    fleet.add_argument("--rounds", type=int, default=8, metavar="R",
                       help="traffic rounds to run (default 8)")
    fleet.add_argument("--kill", type=float, default=0.2, metavar="FRAC",
                       help="fraction of the fleet crashed mid-run (default 0.2)")
    fleet.add_argument("--crash-prob", type=float, default=0.0, metavar="P",
                       help="additional per-round random crash probability")
    fleet.add_argument("--epc-prob", type=float, default=0.0, metavar="P",
                       help="per-round EPC-exhaustion probability")
    fleet.add_argument("--ias-outage", type=int, default=0, metavar="K",
                       help="fail K IAS verifications in the kill round")
    fleet.add_argument("--spares", type=int, default=2, metavar="S",
                       help="spare platforms available for failover (default 2)")
    fleet.add_argument("--workers", type=int, default=0, metavar="W",
                       help="after the fault run, replay the rule traffic "
                            "through a W-worker sharded data plane and check "
                            "it is verdict- and sketch-identical to the "
                            "single-process filter (default: skip)")
    fleet.add_argument("--blocklist-size", type=int, default=0, metavar="B",
                       help="seed the shard-phase workers with B exact /32 "
                            "blocked sources in the membership tier and "
                            "probe a sample of them (requires --workers)")
    fleet.add_argument("--offload-sample-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="arm an untrusted fast-drop tier on every shard "
                            "worker, auditing RATE of its drop decisions "
                            "(requires --workers; default 0 = disabled)")
    fleet.add_argument("--metrics-json", metavar="PATH", default=None,
                       help="write a registry snapshot (JSON) after the run")
    fleet.add_argument("--journal", metavar="PATH", default=None,
                       help="enable the audit event journal (and flight "
                            "recorder) and write it as JSONL after the run")
    audit = sub.add_parser(
        "audit",
        help="render a per-round report from an audit journal (JSONL)",
        description=(
            "Parse a vif-events-v1 journal written by 'fleet-sim --journal' "
            "(or obs.get_journal().write_jsonl) and render a deterministic "
            "per-round timeline: divergence scores, faults, failovers, "
            "alerts, and the flight-recorder excerpt attached to the most "
            "recent bypass-evidence or invariant-failure event.  Exits "
            "non-zero when the journal contains any alert."
        ),
    )
    audit.add_argument("journal", help="path to a .jsonl journal file")
    audit.add_argument("--flight-limit", type=int, default=10, metavar="N",
                       help="flight-recorder rows shown per dump (default 10)")
    metrics = sub.add_parser(
        "metrics",
        help="run a small instrumented round and dump the metrics registry",
        description=(
            "Deploy a small fleet, push deterministic traffic through a "
            "pipeline with timing and tracing enabled (including one "
            "mid-run crash/failover), then render the metrics registry in "
            "Prometheus text format.  Exits non-zero if any registered "
            "conservation invariant is violated."
        ),
    )
    metrics.add_argument("--seed", default="repro-metrics", help="traffic seed")
    metrics.add_argument("--fleet-size", type=int, default=3, metavar="N",
                         help="enclaves to deploy (default 3)")
    metrics.add_argument("--rules", type=int, default=6, metavar="K",
                         help="filter rules to install (default 6)")
    metrics.add_argument("--rounds", type=int, default=4, metavar="R",
                         help="traffic rounds to run (default 4)")
    metrics.add_argument("--json", metavar="PATH", default=None,
                         help="also write a JSON snapshot of the registry")
    metrics.add_argument("--trace", metavar="PATH", default=None,
                         help="also write the recorded spans as Chrome-trace JSON")
    serve = sub.add_parser(
        "serve",
        help="run the always-on serve runtime (bounded with --smoke)",
        description=(
            "Start the asyncio serve runtime: continuous pktgen ingest "
            "through bounded queues into a fleet-backed filter stage, hot "
            "rule churn on the control plane, watchdog supervision, and a "
            "graceful drain that exits with zero unaccounted packets.  "
            "--smoke runs a finite, seeded session (with a rule-churn "
            "storm and an injected stage hang) and writes the rotated "
            "journal + a metrics snapshot — the CI liveness gate."
        ),
    )
    serve.add_argument("--seed", default="vif-serve", help="traffic/chaos seed")
    serve.add_argument("--fleet-size", type=int, default=4, metavar="N",
                       help="enclaves to deploy (default 4)")
    serve.add_argument("--rules", type=int, default=8, metavar="K",
                       help="filter rules to install (default 8)")
    serve.add_argument("--bursts", type=int, default=0, metavar="B",
                       help="stop after B ingest bursts (0 = run forever)")
    serve.add_argument("--smoke", action="store_true",
                       help="finite smoke session: bounded ingest, rule "
                            "churn, one injected stage hang, then drain")
    serve.add_argument("--offload-sample-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="put an untrusted fast-drop tier in front of the "
                            "fleet, auditing RATE of its drop decisions; "
                            "with --smoke the chaos schedule also injects "
                            "one OFFLOAD_LIE the auditor must catch "
                            "(default 0 = disabled)")
    serve.add_argument("--journal", metavar="PATH", default=None,
                       help="stream the audit journal to this JSONL path "
                            "(size-rotated)")
    serve.add_argument("--journal-max-bytes", type=int, default=64 * 1024,
                       metavar="BYTES",
                       help="rotate the journal past this size (default 64KiB)")
    serve.add_argument("--metrics-json", metavar="PATH", default=None,
                       help="write a registry snapshot (JSON) after drain")
    serve.add_argument("--telemetry-port", type=int, default=None,
                       metavar="PORT",
                       help="serve /metrics /varz /healthz /readyz over HTTP "
                            "on this port while running (0 = ephemeral; the "
                            "resolved port is printed); with --smoke the "
                            "endpoints are also self-scraped and gated")
    serve.add_argument("--scrape-out", metavar="DIR", default=None,
                       help="with --telemetry-port: scrape every endpoint "
                            "just before drain and write the responses "
                            "into DIR (metrics.prom, varz.json, ...)")
    serve.add_argument("--slo-latency-threshold", type=float, default=30.0,
                       metavar="SECONDS",
                       help="stage iterations slower than this mark the "
                            "burst bad for the stage-latency SLO "
                            "(default 30; only injected spikes cross it)")
    return parser


def run_metrics(args: argparse.Namespace) -> int:
    """The ``metrics`` subcommand: a self-contained instrumented demo round."""
    from repro import obs
    from repro.core.controller import IXPController
    from repro.core.fleet import FleetBurstFilter, FleetConfig, FleetManager
    from repro.core.rules import Action, FilterRule, FlowPattern, RuleSet
    from repro.dataplane.pipeline import FilterPipeline
    from repro.faults.harness import rule_traffic
    from repro.tee.attestation import IASService
    from repro.util.units import GBPS

    if args.fleet_size < 1 or args.rules < 1 or args.rounds < 1:
        print("fleet-size, rules and rounds must be positive", file=sys.stderr)
        return 2

    prev_timing = obs.set_timing(True)
    prev_tracing = obs.set_tracing(True)
    try:
        controller = IXPController(IASService())
        fleet = FleetManager(controller, config=FleetConfig(seed=args.seed))
        rules = RuleSet()
        rate = 0.6 * args.fleet_size * 10 * GBPS / args.rules
        for i in range(args.rules):
            rules.add(
                FilterRule(
                    rule_id=i + 1,
                    pattern=FlowPattern(
                        dst_prefix=f"10.{(i // 256) % 256}.{i % 256}.0/24"
                    ),
                    action=Action.DROP if i % 2 else Action.ALLOW,
                    requested_by="victim.example",
                    rate_bps=rate,
                )
            )
        fleet.deploy(rules, enclaves_override=args.fleet_size)
        traffic = rule_traffic(rules, seed=f"{args.seed}/traffic")
        pipeline = FilterPipeline(FleetBurstFilter(fleet))
        for r in range(args.rounds):
            if r == args.rounds // 2 and args.fleet_size > 1:
                # Exercise the failover path so the recovery histogram and
                # failover counters are non-trivial in the dump.
                fleet.inject_crash(0)
            fleet.run_round(traffic(r))
            pipeline.process(list(traffic(1000 + r)))

        registry = obs.get_registry()
        violations = registry.check_invariants()
        print(registry.render_prometheus())
        if args.json:
            registry.write_json(
                args.json, extra={"command": "metrics", "seed": args.seed}
            )
            print(f"wrote metrics snapshot to {args.json}", file=sys.stderr)
        if args.trace:
            obs.get_tracer().write_chrome_trace(args.trace)
            print(f"wrote chrome trace to {args.trace}", file=sys.stderr)
        if violations:
            for violation in violations:
                print(f"invariant violated: {violation}", file=sys.stderr)
            return 1
        return 0
    finally:
        obs.set_timing(prev_timing)
        obs.set_tracing(prev_tracing)


def run_audit(args: argparse.Namespace) -> int:
    """The ``audit`` subcommand: render a journal as a per-round report.

    Output is a pure function of the journal file (no clocks, no registry
    state), so two same-seed runs render byte-identically — the golden e2e
    test pins exactly that.
    """
    from repro.obs import read_jsonl

    try:
        events = read_jsonl(args.journal)
    except (OSError, ValueError) as exc:
        print(f"cannot read journal: {exc}", file=sys.stderr)
        return 2

    print(f"audit report: {len(events)} events")
    sessions = sorted({e["session"] for e in events if e.get("session")})
    if sessions:
        print(f"sessions: {', '.join(sessions)}")

    by_round = {}
    unrounded = []
    for event in events:
        if event.get("round") is None:
            unrounded.append(event)
        else:
            by_round.setdefault(event["round"], []).append(event)

    alerts = []
    last_dump = None
    for round_id in sorted(by_round):
        print(f"round {round_id}:")
        for event in by_round[round_id]:
            payload = event.get("payload", {})
            kind = event["type"]
            if kind == "round_start":
                print(f"  seq {event['seq']:>4} round_start")
            elif kind == "sketch_audit":
                print(
                    f"  seq {event['seq']:>4} sketch_audit "
                    f"bins={payload.get('bins_flagged', 0)} "
                    f"l1={payload.get('l1', 0)} "
                    f"linf={payload.get('l_inf', 0)} "
                    f"ratio={payload.get('normalized_l1', 0.0):.3f}"
                )
            elif kind == "alert":
                alerts.append(event)
                print(
                    f"  seq {event['seq']:>4} ALERT {payload.get('kind')} "
                    f"({payload.get('observer', '')}): "
                    f"{payload.get('detail', '')}"
                )
            elif kind in ("bypass_evidence", "invariant_failure"):
                flight = payload.get("flight", [])
                last_dump = (round_id, kind, flight)
                detail = (
                    f"suspected={','.join(payload.get('suspected_attacks', []))}"
                    if kind == "bypass_evidence"
                    else f"violations={payload.get('violations', 0)}"
                )
                print(
                    f"  seq {event['seq']:>4} {kind.upper()} {detail} "
                    f"flight_rows={len(flight)}"
                )
            elif kind == "fault_injected":
                print(
                    f"  seq {event['seq']:>4} fault_injected "
                    f"kind={payload.get('kind')} target={payload.get('target')}"
                )
            elif kind == "failover":
                print(
                    f"  seq {event['seq']:>4} failover "
                    f"relaunched={payload.get('relaunched_slots', [])} "
                    f"orphaned={payload.get('orphaned_slots', [])} "
                    f"shed={payload.get('shed_rule_ids', [])}"
                )
            else:
                print(f"  seq {event['seq']:>4} {kind}")
    for event in unrounded:
        print(f"pre-round seq {event['seq']:>4} {event['type']}")

    print(f"alerts: {len(alerts)}")
    if last_dump is not None:
        round_id, kind, flight = last_dump
        shown = flight[: max(args.flight_limit, 0)]
        print(f"flight excerpt ({kind}, round {round_id}, "
              f"{len(flight)} rows, showing {len(shown)}):")
        for row in shown:
            print(
                f"  round={row.get('round')} rule={row.get('rule')} "
                f"verdict={row.get('verdict')} flow={row.get('flow')}"
            )
    return 1 if alerts else 0


def run_fleet_sim(args: argparse.Namespace) -> int:
    """The ``fleet-sim`` subcommand (imports deferred: keep ``list`` fast)."""
    if args.fleet_size < 1 or args.rules < 1 or args.rounds < 1:
        print("fleet-size, rules and rounds must be positive", file=sys.stderr)
        return 2

    prev_journal = None
    prev_recorder = None
    if args.journal:
        # Fresh journal + flight ring per invocation: the artifact depends
        # only on the seed, never on whatever ran earlier in this process.
        from repro import obs

        prev_journal = obs.set_journal(obs.EventJournal(enabled=True))
        prev_recorder = obs.set_flight_recorder(obs.FlightRecorder(enabled=True))
    try:
        return _run_fleet_sim_body(args)
    finally:
        if args.journal:
            from repro import obs

            obs.get_journal().write_jsonl(args.journal)
            print(f"wrote audit journal to {args.journal}", file=sys.stderr)
            obs.set_journal(prev_journal)
            obs.set_flight_recorder(prev_recorder)


def _run_fleet_sim_body(args: argparse.Namespace) -> int:
    from repro.core.controller import IXPController
    from repro.core.fleet import FleetConfig, FleetManager
    from repro.core.rules import (
        Action,
        FilterRule,
        FlowPattern,
        RPKIRegistry,
        RuleSet,
    )
    from repro.core.session import VIFSession
    from repro.faults import (
        FaultEvent,
        FaultInjectionHarness,
        FaultKind,
        FaultSchedule,
        FlakyIAS,
    )
    from repro.util.units import GBPS

    ias = FlakyIAS()
    controller = IXPController(ias)
    fleet = FleetManager(
        controller, config=FleetConfig(spare_platforms=args.spares, seed=args.seed)
    )

    rules = RuleSet()
    # One /24 per rule under a shared /8 test prefix; aggregate demand sized
    # to ~60% of fleet capacity so moderate kill fractions stay feasible.
    rate = 0.6 * args.fleet_size * 10 * GBPS / args.rules
    for i in range(args.rules):
        rules.add(
            FilterRule(
                rule_id=i + 1,
                pattern=FlowPattern(
                    dst_prefix=f"10.{(i // 256) % 256}.{i % 256}.0/24"
                ),
                action=Action.DROP if i % 2 else Action.ALLOW,
                requested_by="victim.example",
                rate_bps=rate,
            )
        )
    fleet.deploy(rules, enclaves_override=args.fleet_size)

    # Attach a victim session so replacements are re-attested through the
    # real attestation path (and IAS outages actually bite).
    rpki = RPKIRegistry()
    rpki.authorize("victim.example", "10.0.0.0/8")
    session = VIFSession("victim.example", rpki, ias, controller)
    session.attest_filters()
    fleet.session = session

    schedule = FaultSchedule.kill_fraction(
        args.seed, rounds=args.rounds, fleet_size=args.fleet_size,
        fraction=args.kill,
    ) if args.kill > 0 else FaultSchedule(rounds=args.rounds, seed=args.seed)
    events = list(schedule.events)
    if args.ias_outage > 0:
        kill_round = events[0].round_index if events else args.rounds // 2
        events.append(FaultEvent(round_index=kill_round,
                                 kind=FaultKind.IAS_OUTAGE,
                                 magnitude=args.ias_outage))
    if args.crash_prob > 0 or args.epc_prob > 0:
        extra = FaultSchedule.generate(
            f"{args.seed}/extra", rounds=args.rounds,
            fleet_size=args.fleet_size, crash_prob=args.crash_prob,
            epc_exhaustion_prob=args.epc_prob,
        )
        events.extend(extra.events)
    schedule = FaultSchedule(
        rounds=args.rounds, events=tuple(events), seed=args.seed
    )

    harness = FaultInjectionHarness(fleet, schedule, ias=ias)
    result = harness.run()

    shard_failed = False
    if args.workers:
        # Run *before* the metrics snapshot so the merged worker series are
        # part of the --metrics-json artifact.
        shard_failed = _run_fleet_sim_shard_phase(args, fleet, rules) != 0

    if args.metrics_json:
        from repro import obs

        obs.get_registry().write_json(
            args.metrics_json,
            extra={
                "command": "fleet-sim",
                "seed": args.seed,
                "summary": result.summary(),
            },
        )
        print(f"wrote metrics snapshot to {args.metrics_json}", file=sys.stderr)

    print(f"fleet-sim seed={args.seed!r}: {args.fleet_size} enclaves, "
          f"{args.rules} rules, {args.rounds} rounds")
    for event in schedule.events:
        print(f"  fault {event.describe()}")
    for key, value in sorted(result.summary().items()):
        if isinstance(value, float):
            print(f"  {key:28s} {value:.3f}")
        else:
            print(f"  {key:28s} {value}")
    if result.final_allocation_violations:
        print("  final allocation INVALID:", file=sys.stderr)
        for violation in result.final_allocation_violations:
            print(f"    {violation}", file=sys.stderr)
        return 1
    if result.invariant_violations:
        print("  FAIL-CLOSED INVARIANT VIOLATED", file=sys.stderr)
        return 1
    if shard_failed:
        return 1
    return 0


def _shard_blocklist(size: int) -> list:
    """Deterministic ``(rule_id, src_int)`` membership entries for the shard phase.

    Sources count up from 100.64.0.0 (the CGNAT range) — disjoint from the
    198.51.x rule traffic and the 198.18/15 background destinations, so any
    drop observed on a blocklist probe is the membership tier's doing.  Rule
    ids start at 10,000,000 to stay clear of the fleet's own rules.
    """
    base = 0x64400000  # 100.64.0.0
    return [(10_000_000 + i, base + i) for i in range(size)]


def _blocklist_probes(blocklist, max_probes: int = 64) -> list:
    """Packets from a spread sample of blocked sources (background dst)."""
    import ipaddress

    from repro.dataplane.packet import FiveTuple, Packet, Protocol

    if not blocklist:
        return []
    step = max(1, len(blocklist) // max_probes)
    probes = []
    for _, src_int in blocklist[::step][:max_probes]:
        probes.append(Packet(five_tuple=FiveTuple(
            src_ip=str(ipaddress.ip_address(src_int)),
            dst_ip="198.18.255.1",
            src_port=40000,
            dst_port=80,
            protocol=Protocol.UDP,
        )))
    return probes


def _run_fleet_sim_shard_phase(args: argparse.Namespace, fleet, rules) -> int:
    """``fleet-sim --workers W``: sharded replay + equivalence check.

    Replays the rule traffic through a W-worker sharded data plane built
    from the fleet's own rules/secrets, then checks the verdicts and the
    centrally merged sketch logs are bit-identical to one single-process
    filter over the same trace.  With ``--blocklist-size B`` the workers are
    additionally seeded with B exact ``/32`` blocked sources (the membership
    tier) and probes from a sample of them must come back dropped.  Returns
    non-zero on any mismatch or leaked probe.
    """
    from repro.dataplane.shard import run_single_process_reference
    from repro.faults.harness import rule_traffic

    if args.workers < 1:
        print("workers must be positive", file=sys.stderr)
        return 2
    if getattr(args, "blocklist_size", 0) < 0:
        print("blocklist size must be non-negative", file=sys.stderr)
        return 2
    offload_rate = getattr(args, "offload_sample_rate", 0.0)
    if not 0.0 <= offload_rate <= 1.0:
        print("offload sample rate must be within [0, 1]", file=sys.stderr)
        return 2

    traffic = rule_traffic(rules, seed=f"{args.seed}/shard")
    packets = []
    for round_index in range(args.rounds):
        packets.extend(traffic(round_index))

    blocklist = _shard_blocklist(getattr(args, "blocklist_size", 0))
    probe_start = len(packets)
    packets.extend(_blocklist_probes(blocklist))

    controller = fleet.controller
    plane = fleet.sharded_data_plane(
        args.workers,
        blocklist=blocklist,
        offload_sample_rate=offload_rate,
        offload_seed=f"{args.seed}/offload",
    )
    with plane:
        verdicts = plane.process(packets)
        sharded = plane.finish()
    reference = run_single_process_reference(
        rules.rules(),
        packets,
        decision_secret=f"{controller.enclave_secret_seed}/fleet",
        mode=controller.mode,
        sketch_seed=controller.sketch_seed,
        blocklist=blocklist,
    )

    verdict_mismatches = sum(
        1 for got, want in zip(verdicts, reference.verdicts) if got != want
    )
    # With an offload tier, tier-dropped packets never transit the workers'
    # enclave replicas, so the merged sketch logs legitimately diverge from
    # the all-enclave reference; only the verdicts must stay bit-identical.
    sketch_identical = offload_rate > 0.0 or (
        sharded.incoming.bins() == reference.incoming.bins()
        and sharded.outgoing.bins() == reference.outgoing.bins()
        and sharded.incoming.total == reference.incoming.total
        and sharded.outgoing.total == reference.outgoing.total
    )
    print(f"  shard replay: {args.workers} workers, {len(packets)} packets, "
          f"{sharded.packets_allowed} allowed / {sharded.packets_dropped} dropped")
    print(f"  shard throughput: bottleneck {sharded.bottleneck_pps:,.0f} pps, "
          f"wall {sharded.wall_pps:,.0f} pps "
          f"(reference {reference.bottleneck_pps:,.0f} pps)")
    leaked_probes = 0
    if blocklist:
        probe_verdicts = verdicts[probe_start:]
        leaked_probes = sum(1 for verdict in probe_verdicts if verdict)
        print(f"  membership tier: {len(blocklist):,} blocked /32 sources "
              f"seeded, {len(probe_verdicts)} probes, {leaked_probes} leaked")
    if offload_rate > 0.0:
        from repro import obs

        totals = obs.get_registry().snapshot()["totals"]
        print(f"  offload tier: rate {offload_rate}, "
              f"{int(totals.get('vif_offload_drops_total', 0))} tier drops, "
              f"{int(totals.get('vif_offload_sampled_total', 0))} sampled, "
              f"{int(totals.get('vif_offload_disagreements_total', 0))} "
              f"disagreements, "
              f"{int(totals.get('vif_offload_audit_rounds_total', 0))} "
              "audit rounds")
    if verdict_mismatches or not sketch_identical or leaked_probes:
        print(f"  SHARD EQUIVALENCE FAILED: {verdict_mismatches} verdict "
              f"mismatches, sketches identical={sketch_identical}, "
              f"{leaked_probes} blocklist probes leaked",
              file=sys.stderr)
        return 1
    if offload_rate > 0.0:
        print("  shard equivalence: verdicts bit-identical "
              "(sketch check skipped: offload tier short-circuits drops)")
    else:
        print("  shard equivalence: verdicts and merged sketches bit-identical")
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: the always-on runtime (or a smoke session)."""
    import asyncio

    from repro import obs
    from repro.core.controller import IXPController
    from repro.core.fleet import FleetConfig, FleetManager
    from repro.core.rules import (
        Action,
        FilterRule,
        FlowPattern,
        RPKIRegistry,
        RuleSet,
    )
    from repro.core.session import VIFSession
    from repro.faults import FaultEvent, FaultKind, FaultSchedule, FlakyIAS
    from repro.serve import (
        FleetBackend,
        PktgenSource,
        ServeChaosDriver,
        ServeConfig,
        ServeService,
        ServeState,
    )
    from repro.util.units import GBPS

    if args.fleet_size < 1 or args.rules < 1:
        print("fleet-size and rules must be positive", file=sys.stderr)
        return 2
    if not 0.0 <= args.offload_sample_rate <= 1.0:
        print("offload sample rate must be within [0, 1]", file=sys.stderr)
        return 2
    bursts = args.bursts
    if args.smoke and bursts <= 0:
        bursts = 40

    sink = None
    if args.journal:
        sink = obs.JsonlSink(args.journal, max_bytes=args.journal_max_bytes)
    prev_journal = obs.set_journal(
        obs.EventJournal(enabled=True, max_events=10_000, sink=sink)
    )
    try:
        ias = FlakyIAS()
        controller = IXPController(ias)
        fleet = FleetManager(controller, config=FleetConfig(seed=args.seed))
        rules = RuleSet()
        rate = 0.6 * args.fleet_size * 10 * GBPS / args.rules
        for i in range(args.rules):
            rules.add(
                FilterRule(
                    rule_id=i + 1,
                    pattern=FlowPattern(
                        dst_prefix=f"10.{(i // 256) % 256}.{i % 256}.0/24"
                    ),
                    action=Action.DROP if i % 2 else Action.ALLOW,
                    requested_by="victim.example",
                    rate_bps=rate,
                )
            )
        fleet.deploy(rules, enclaves_override=args.fleet_size)
        rpki = RPKIRegistry()
        rpki.authorize("victim.example", "10.0.0.0/8")
        session = VIFSession("victim.example", rpki, ias, controller)
        session.attest_filters()
        fleet.session = session

        source = PktgenSource.from_ruleset(
            rules, seed=args.seed, total_bursts=bursts if bursts > 0 else None
        )
        # One shared timeline: offload-bypass alerts and SLO-violation
        # alerts land in the same alert stream (and the same journal).
        timeline = obs.AuditTimeline(session_id=f"serve/{args.seed}")
        offload = None
        if args.offload_sample_rate > 0.0:
            from repro.dataplane.offload import (
                FastDropTier,
                OffloadAuditor,
                OffloadEngine,
                VerifiableSampler,
            )

            sampler = VerifiableSampler(
                args.offload_sample_rate, seed=f"{args.seed}/offload"
            )
            offload = OffloadEngine(
                FastDropTier(sampler, label="serve"),
                OffloadAuditor(sampler, timeline=timeline),
            )
        slo = obs.SLOEngine(
            obs.default_serve_objectives(),
            timeline=timeline,
            session_id=f"serve/{args.seed}",
        )
        backend = FleetBackend(fleet, offload=offload)
        chaos = None
        if args.smoke:
            smoke_events = [
                FaultEvent(
                    round_index=max(bursts // 4, 1),
                    kind=FaultKind.STAGE_HANG,
                    target=1,  # the filter stage
                    magnitude=1,
                ),
                FaultEvent(
                    round_index=max(bursts // 2, 2),
                    kind=FaultKind.RULE_CHURN,
                    magnitude=4,
                ),
                # A synthetic 60s stage-latency spike, placed after the
                # hang has recovered so the spiked burst is never one the
                # hang's backpressure shed (shed bursts close early and
                # would orphan the spike's SLO sample).  The exit gate
                # below demands exactly one debounced slo_violation.
                FaultEvent(
                    round_index=max(2 * bursts // 3, 2),
                    kind=FaultKind.LATENCY_SPIKE,
                    target=1,  # the filter stage
                    magnitude=60,
                ),
            ]
            if offload is not None:
                # One lying tier (drop-legit mode over most flows); the
                # exit gate below demands the auditor catches it.
                smoke_events.append(
                    FaultEvent(
                        round_index=max(3 * bursts // 4, 3),
                        kind=FaultKind.OFFLOAD_LIE,
                        target=0,
                        magnitude=75,
                    )
                )
            schedule = FaultSchedule(
                rounds=bursts,
                events=tuple(smoke_events),
                seed=args.seed,
            )
            chaos = ServeChaosDriver(
                schedule, ias=ias, churn_requester="victim.example",
            )
            # Churn rules must clear RPKI for the fleet path; authorize the
            # chaos prefix range too.
            rpki.authorize("victim.example", "203.0.0.0/16")

        async def _scrape_endpoints(telemetry) -> None:
            os.makedirs(args.scrape_out, exist_ok=True)
            for path, fname in (
                ("/metrics", "metrics.prom"),
                ("/varz", "varz.json"),
                ("/healthz", "healthz.json"),
                ("/readyz", "readyz.json"),
            ):
                _, _, body = await obs.http_get(
                    telemetry.host, telemetry.port, path
                )
                with open(os.path.join(args.scrape_out, fname), "wb") as fh:
                    fh.write(body)
            print(f"wrote telemetry scrape to {args.scrape_out}",
                  file=sys.stderr)

        async def _run() -> int:
            config = ServeConfig(
                heartbeat_deadline_s=0.5,
                watchdog_interval_s=0.02,
                shed_timeout_s=0.25,
                slo_latency_threshold_s=args.slo_latency_threshold,
                telemetry_port=args.telemetry_port,
            )
            service = ServeService(
                source, backend, config=config, chaos=chaos, slo=slo
            )
            if chaos is not None:
                chaos.bind(service)
            await service.start()
            telemetry = service.telemetry
            ready_seen = {200: False, 503: False}
            poller = None
            if telemetry is not None:
                print(
                    f"telemetry: http://{telemetry.host}:{telemetry.port}/",
                    file=sys.stderr,
                )

                async def _poll_ready() -> None:
                    # Record every readiness verdict while serving; the
                    # smoke gate demands the hang was visible as a 503.
                    while True:
                        try:
                            status, _, _ = await obs.http_get(
                                telemetry.host, telemetry.port, "/readyz"
                            )
                        except OSError:
                            return
                        ready_seen[status] = True
                        await asyncio.sleep(0.005)

                poller = asyncio.create_task(_poll_ready())
            while (
                not service._source_exhausted
                and service.state is ServeState.SERVING
            ):
                await asyncio.sleep(0.01)
            healthz_ok = True
            ready_recovered = True
            if telemetry is not None and service.state is ServeState.SERVING:
                status, _, _ = await obs.http_get(
                    telemetry.host, telemetry.port, "/healthz"
                )
                healthz_ok = status == 200
                # Stages idle-beat once the source is exhausted, so waiting
                # out the post-restart degraded hold here makes the readyz
                # recovery deterministic.  A caught offload lie correctly
                # pins readyz at 503 (the tier is compromised); `degraded:
                # false` in the body is the hang-recovery signal either way.
                import json as _json

                ready_recovered = False
                deadline = asyncio.get_running_loop().time() + 5.0
                while asyncio.get_running_loop().time() < deadline:
                    status, _, body = await obs.http_get(
                        telemetry.host, telemetry.port, "/readyz"
                    )
                    if status == 200:
                        ready_seen[200] = True
                        ready_recovered = True
                        break
                    if not _json.loads(body.decode()).get("degraded", True):
                        ready_recovered = True
                        break
                    await asyncio.sleep(0.02)
                if args.scrape_out:
                    await _scrape_endpoints(telemetry)
            if poller is not None:
                poller.cancel()
                try:
                    await poller
                except asyncio.CancelledError:
                    pass
            report = await service.drain()
            print(f"serve seed={args.seed!r}: {args.fleet_size} enclaves, "
                  f"{args.rules} rules, {report.ingested} packets")
            for key, value in sorted(report.as_dict().items()):
                if isinstance(value, float):
                    print(f"  {key:20s} {value:.3f}")
                else:
                    print(f"  {key:20s} {value}")
            violations = obs.get_registry().check_invariants()
            if args.metrics_json:
                obs.get_registry().write_json(
                    args.metrics_json,
                    extra={
                        "command": "serve",
                        "seed": args.seed,
                        "report": report.as_dict(),
                    },
                )
                print(f"wrote metrics snapshot to {args.metrics_json}",
                      file=sys.stderr)
            if violations:
                for violation in violations:
                    print(f"invariant violated: {violation}", file=sys.stderr)
                return 1
            if report.state != "drained" or report.unaccounted != 0:
                print(f"serve did not drain cleanly: state={report.state}, "
                      f"unaccounted={report.unaccounted}", file=sys.stderr)
                return 1
            if args.smoke and report.rule_updates < 8:
                print("smoke churn storm did not apply", file=sys.stderr)
                return 1
            if offload is not None:
                caught = [
                    alert
                    for alert in timeline.alerts
                    if alert.kind == obs.ALERT_OFFLOAD_BYPASS
                ]
                if args.smoke and not caught:
                    print("offload lie was NOT caught by the sampled audit",
                          file=sys.stderr)
                    return 1
                for alert in caught:
                    print(f"  offload alert: {alert.describe()}")
            spikes = [
                event
                for event in obs.get_journal().of_type("slo_violation")
                if event.payload.get("objective") == "stage-latency"
            ]
            for event in spikes:
                print(f"  slo violation: {event.payload['objective']} "
                      f"burst={event.round_id} "
                      f"burn_short={event.payload.get('burn_short')} "
                      f"worst={event.payload.get('worst')}s")
            if args.smoke and len(spikes) != 1:
                print("expected exactly one debounced stage-latency "
                      f"slo_violation, saw {len(spikes)}", file=sys.stderr)
                return 1
            if args.smoke and telemetry is not None:
                if not healthz_ok:
                    print("/healthz was not 200 while serving",
                          file=sys.stderr)
                    return 1
                if not ready_seen[503]:
                    print("/readyz never flipped to 503 during the injected "
                          "stage hang", file=sys.stderr)
                    return 1
                if not ready_recovered:
                    print("/readyz did not recover after the stage hang",
                          file=sys.stderr)
                    return 1
            return 0

        return asyncio.run(_run())
    finally:
        journal = obs.get_journal()
        if sink is not None:
            sink.flush()
            sink.close()
            print(
                f"journal: {journal.sink.lines_written} events -> "
                f"{', '.join(sink.files())} "
                f"({sink.rotations} rotations)",
                file=sys.stderr,
            )
        obs.set_journal(prev_journal)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fleet-sim":
        return run_fleet_sim(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "audit":
        return run_audit(args)
    if args.command == "metrics":
        return run_metrics(args)
    if args.command == "list":
        for experiment in list_experiments():
            print(f"{experiment.key:12s} {experiment.paper_ref:14s} "
                  f"{experiment.description}")
        return 0

    if args.experiment == "all":
        results = run_all()
    else:
        try:
            results = [run_experiment(args.experiment)]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    for result in results:
        print(f"\n=== {result.paper_ref} [{result.key}] "
              f"({time.strftime('%Y-%m-%d %H:%M:%S')}) ===")
        print(result.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
