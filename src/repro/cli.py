"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig8
    python -m repro.cli run all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import list_experiments, run_all, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Practical Verifiable In-network Filtering for "
            "DDoS Defense' (VIF, ICDCS 2019): regenerate any table or figure."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment key from 'list', or 'all'")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment in list_experiments():
            print(f"{experiment.key:12s} {experiment.paper_ref:14s} "
                  f"{experiment.description}")
        return 0

    if args.experiment == "all":
        results = run_all()
    else:
        try:
            results = [run_experiment(args.experiment)]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    for result in results:
        print(f"\n=== {result.paper_ref} [{result.key}] "
              f"({time.strftime('%Y-%m-%d %H:%M:%S')}) ===")
        print(result.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
