"""The live telemetry plane: stage-latency tracking + an HTTP endpoint.

Until this module, metrics existed only as end-of-run snapshots; an
operator of `repro serve` had no way to see the service *while it runs*.
Two pieces fix that:

* :class:`StageLatencyTracker` — per-stage :class:`StreamingQuantile`
  sketches fed from the serve loop, published as
  ``vif_serve_stage_latency_seconds{stage=...,quantile=...}`` gauges
  (p50/p90/p99/p999) on demand, so a scrape always sees current
  interpolated quantiles without the loop paying for publication per burst.

* :class:`TelemetryServer` — a zero-dependency ``asyncio.start_server``
  HTTP/1.0 endpoint serving:

  ===========  =================================================================
  ``/metrics``  Prometheus text exposition (``MetricsRegistry.render_prometheus``)
  ``/varz``     schema-tagged JSON snapshot (registry + injected service view)
  ``/healthz``  liveness — the event loop turns and the watchdog's own
                heartbeat is fresh (stays 200 while a *stage* is hung)
  ``/readyz``   readiness — injected predicate: all stages running, no
                fail-closed shed, offload auditor within bounds
  ===========  =================================================================

Liveness and readiness are deliberately split: a hung filter stage makes
the service unready (load balancers should drain it) but not unhealthy
(the watchdog is alive and will restart the stage — killing the process
would lose the drain).  Both predicates are injected callables returning
``(ok, detail_dict)`` so the server owns no service state.

:func:`http_get` is the matching minimal client (also asyncio, also
zero-dependency) used by tests and the CLI's in-process scrapes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.quantile import DEFAULT_QUANTILE_BOUNDS, StreamingQuantile

__all__ = ["StageLatencyTracker", "TelemetryServer", "http_get", "VARZ_SCHEMA"]

#: Schema tag on the ``/varz`` JSON document.
VARZ_SCHEMA = "vif-varz-v1"

#: The quantiles published per stage.
PUBLISHED_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.5),
    ("p90", 0.9),
    ("p99", 0.99),
    ("p999", 0.999),
)

HealthFn = Callable[[], Tuple[bool, Dict[str, object]]]


class StageLatencyTracker:
    """Per-stage streaming latency quantiles for the serve loop.

    ``observe`` is the hot path (one bisect + bookkeeping); ``publish``
    runs on scrape/snapshot, writing the interpolated quantiles into the
    registry as gauges.  Sketches merge across trackers (shard workers)
    via :meth:`merge` — associativity is exact, see ``repro.obs.quantile``.
    """

    METRIC = "vif_serve_stage_latency_seconds"

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_QUANTILE_BOUNDS
    ) -> None:
        self._bounds = tuple(bounds)
        self._stages: Dict[str, StreamingQuantile] = {}

    def sketch(self, stage: str) -> StreamingQuantile:
        sketch = self._stages.get(stage)
        if sketch is None:
            sketch = self._stages[stage] = StreamingQuantile(self._bounds)
        return sketch

    def observe(self, stage: str, seconds: float) -> None:
        self.sketch(stage).observe(seconds)

    def merge(self, other: "StageLatencyTracker") -> None:
        for stage, sketch in other._stages.items():
            self.sketch(stage).merge(sketch)

    @property
    def stages(self) -> Dict[str, StreamingQuantile]:
        return dict(self._stages)

    def publish(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Write current quantiles (and per-stage counts) into ``registry``."""
        registry = registry or get_registry()
        for stage in sorted(self._stages):
            sketch = self._stages[stage]
            for label, q in PUBLISHED_QUANTILES:
                registry.gauge(
                    self.METRIC,
                    help="Interpolated serve-stage latency quantiles",
                    stage=stage,
                    quantile=label,
                ).set(round(sketch.quantile(q), 9))
            registry.gauge(
                "vif_serve_stage_latency_count",
                help="Latency observations behind the stage quantiles",
                stage=stage,
            ).set(sketch.count)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe per-stage quantile view for ``/varz``."""
        out: Dict[str, object] = {}
        for stage in sorted(self._stages):
            sketch = self._stages[stage]
            entry: Dict[str, object] = {
                "count": sketch.count,
                "sum": round(sketch.sum, 9),
            }
            for label, q in PUBLISHED_QUANTILES:
                entry[label] = round(sketch.quantile(q), 9)
            out[stage] = entry
        return out


def _response(
    status: int,
    body: bytes,
    content_type: str = "application/json; charset=utf-8",
) -> bytes:
    reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed", 503: "Service Unavailable"}.get(
        status, "Error"
    )
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class TelemetryServer:
    """Zero-dependency asyncio HTTP/1.0 exposition endpoint.

    All service knowledge is injected: ``health``/``ready`` are predicates
    returning ``(ok, detail)``; ``varz`` contributes a service-state block
    to ``/varz``; ``refresh`` runs before every ``/metrics``/``/varz``
    render (the serve loop publishes latency quantiles there).  ``port=0``
    binds an ephemeral port — read :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        health: Optional[HealthFn] = None,
        ready: Optional[HealthFn] = None,
        varz: Optional[Callable[[], Dict[str, object]]] = None,
        refresh: Optional[Callable[[], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._registry = registry
        self._health = health or (lambda: (True, {}))
        self._ready = ready or (lambda: (True, {}))
        self._varz = varz
        self._refresh = refresh
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry or get_registry()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "TelemetryServer":
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @property
    def running(self) -> bool:
        return self._server is not None

    # -- request handling --------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            # Drain headers until the blank line; HTTP/1.0, no bodies on GET.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = (parts[1] if len(parts) > 1 else "/").split("?", 1)[0]
            if method != "GET":
                payload = _response(
                    405, b'{"error":"method not allowed"}\n'
                )
            else:
                payload = self._route(path)
            writer.write(payload)
            await writer.drain()
            self.requests_served += 1
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _route(self, path: str) -> bytes:
        if path == "/metrics":
            if self._refresh is not None:
                self._refresh()
            body = self.registry.render_prometheus().encode("utf-8")
            return _response(
                200, body, content_type="text/plain; version=0.0.4; charset=utf-8"
            )
        if path == "/varz":
            if self._refresh is not None:
                self._refresh()
            doc: Dict[str, object] = {
                "schema": VARZ_SCHEMA,
                "metrics": self.registry.snapshot(),
            }
            if self._varz is not None:
                doc["service"] = self._varz()
            return _response(200, _json_body(doc))
        if path == "/healthz":
            ok, detail = self._health()
            return _response(
                200 if ok else 503, _json_body({"ok": ok, **detail})
            )
        if path == "/readyz":
            ok, detail = self._ready()
            return _response(
                200 if ok else 503, _json_body({"ok": ok, **detail})
            )
        return _response(404, b'{"error":"not found"}\n')


def _json_body(doc: Dict[str, object]) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


async def http_get(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Tuple[int, Dict[str, str], bytes]:
    """Minimal asyncio HTTP GET: returns ``(status, headers, body)``.

    The matching client for :class:`TelemetryServer` — used by the test
    suite and the CLI's in-process scrape so neither needs ``curl`` or any
    HTTP library.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1", "replace").split("\r\n")
    status = int(lines[0].split()[1]) if lines and len(lines[0].split()) > 1 else 0
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if _:
            headers[name.strip().lower()] = value.strip()
    return status, headers, body
