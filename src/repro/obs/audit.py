"""The audit timeline: per-round divergence scoring, alerts, debounce.

Each filtering round's ``compare_sketches`` output is reduced to a scored
point on a time series:

* **L∞ divergence** — the worst single flagged bin, ``max |enclave - observer|``;
* **L1 divergence** — flagged-bin differences summed within each hash row,
  maximum row total (every packet lands once per row, so each row's sum
  independently estimates the packets affected);
* both **normalized by the count-min error budget** ``ε·N`` from
  :class:`repro.sketch.bounds.ErrorBound` (``N`` = updates observed), so a
  ratio ≪ 1 is within sketch noise and a ratio ≫ 1 is traffic that really
  diverged — the same normalization whatever the sketch geometry.

Scores feed ``vif_audit_*`` gauges/histograms and the event journal
(``sketch_audit`` events).  Sustained suspicion becomes a **typed alert**
(:data:`ALERT_BYPASS`, :data:`ALERT_INJECTION`,
:data:`ALERT_FAMILY_MISMATCH`) after ``debounce`` consecutive suspect
rounds — one noisy round does not abort a session unless the operator sets
``debounce=1`` (the default, which preserves the paper's abort-on-evidence
behavior).  Every fired alert journals a ``bypass_evidence`` event with a
flight-recorder excerpt confined to rounds at or before the alert's round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.events import get_journal
from repro.obs.flight import get_flight_recorder
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.core.bypass import BypassEvidence

#: Alert kinds (the ``kind`` label on ``vif_audit_alerts_total`` and the
#: ``kind`` payload field of ``alert`` events).
ALERT_BYPASS = "bypass-suspected"
ALERT_INJECTION = "injection-suspected"
ALERT_FAMILY_MISMATCH = "family-version-mismatch"
#: The untrusted fast-drop tier misbehaved: sampled re-verdicts diverged
#: from the enclave's ground truth (or the sampled volume fell below the
#: binomial bound the sampling rate demands).  See repro.dataplane.offload.
ALERT_OFFLOAD_BYPASS = "offload_bypass"
#: A declarative service objective's burn-rate gate tripped (p99 stage
#: latency, shed ratio, audit alert rate, drop conservation).  Fired by
#: :class:`repro.obs.slo.SLOEngine` through :meth:`AuditTimeline.raise_alert`.
ALERT_SLO = "slo_violation"

#: Histogram buckets for the normalized divergence ratio (L1 / ε·N): below
#: 1.0 is within the sketch's own error budget, above is real divergence.
DIVERGENCE_RATIO_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0,
)


@dataclass(frozen=True)
class DivergenceScore:
    """One round's scored sketch comparison."""

    round_id: int
    observer: str
    bins_flagged: int
    l1: int
    l_inf: int
    missing: int
    extra: int
    #: The CM error budget ε·N the divergence is normalized by (≥ 1 packet).
    error_budget: float
    normalized_l1: float
    normalized_l_inf: float

    @property
    def suspicious(self) -> bool:
        return self.bins_flagged > 0

    def to_payload(self) -> Dict[str, object]:
        return {
            "observer": self.observer,
            "bins_flagged": self.bins_flagged,
            "l1": self.l1,
            "l_inf": self.l_inf,
            "missing": self.missing,
            "extra": self.extra,
            "error_budget": round(self.error_budget, 6),
            "normalized_l1": round(self.normalized_l1, 6),
            "normalized_l_inf": round(self.normalized_l_inf, 6),
        }


@dataclass(frozen=True)
class AuditAlert:
    """A typed, debounced audit alert."""

    kind: str
    round_id: int
    observer: str
    detail: str

    def describe(self) -> str:
        return f"r{self.round_id} {self.kind} ({self.observer}): {self.detail}"


class AuditTimeline:
    """Scores audit rounds, journals them, and debounces alerts.

    ``debounce`` is the number of *consecutive* suspect rounds (per alert
    kind) required before an alert fires; the streak re-arms after firing.
    Family-version mismatches bypass the debounce — a derivation mismatch
    is structural, not noise.
    """

    def __init__(self, debounce: int = 1, session_id: str = "") -> None:
        if debounce < 1:
            raise ValueError("debounce must be >= 1")
        self.debounce = debounce
        self.session_id = session_id
        self.scores: List[DivergenceScore] = []
        self.alerts: List[AuditAlert] = []
        self._streaks: Dict[str, int] = {
            ALERT_BYPASS: 0,
            ALERT_INJECTION: 0,
            ALERT_OFFLOAD_BYPASS: 0,
        }

    # -- scoring ----------------------------------------------------------------

    def score(self, round_id: int, evidence: "BypassEvidence") -> DivergenceScore:
        """Reduce one comparison to a normalized divergence point."""
        comparison = evidence.comparison
        row_l1: Dict[int, int] = {}
        l_inf = 0
        for disc in comparison.discrepancies:
            diff = abs(disc.enclave_count - disc.observer_count)
            row_l1[disc.row] = row_l1.get(disc.row, 0) + diff
            if diff > l_inf:
                l_inf = diff
        l1 = max(row_l1.values()) if row_l1 else 0
        # Deferred import: repro.sketch's package init reaches back into
        # repro.obs (hashing instruments a LazyCounter), so importing it at
        # module load would cycle.  By first call the packages are settled.
        from repro.sketch.bounds import ErrorBound

        bound = ErrorBound(
            width=max(comparison.width, 1), depth=max(comparison.depth, 1)
        )
        n = max(comparison.enclave_total, comparison.observer_total)
        budget = max(bound.max_overcount(n), 1.0)
        return DivergenceScore(
            round_id=round_id,
            observer=evidence.observer,
            bins_flagged=len(comparison.discrepancies),
            l1=l1,
            l_inf=l_inf,
            missing=comparison.total_missing,
            extra=comparison.total_extra,
            error_budget=budget,
            normalized_l1=l1 / budget,
            normalized_l_inf=l_inf / budget,
        )

    # -- recording --------------------------------------------------------------

    def record(
        self, round_id: int, evidence: "BypassEvidence"
    ) -> Tuple[DivergenceScore, List[AuditAlert]]:
        """Score one audit round; returns the score and any alerts fired.

        Emits a ``sketch_audit`` journal event per round and, when a
        debounced alert fires, an ``alert`` event per kind plus one
        ``bypass_evidence`` event embedding the evidence and a
        flight-recorder excerpt confined to rounds ≤ ``round_id``.
        """
        score = self.score(round_id, evidence)
        self.scores.append(score)
        self._export_metrics(score)
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "sketch_audit",
                round_id=round_id,
                session_id=self.session_id or None,
                **score.to_payload(),
            )

        comparison = evidence.comparison
        fired: List[AuditAlert] = []
        suspected = {
            ALERT_BYPASS: comparison.drop_suspected,
            ALERT_INJECTION: comparison.injection_suspected,
        }
        for kind, is_suspect in suspected.items():
            if not is_suspect:
                self._streaks[kind] = 0
                continue
            self._streaks[kind] += 1
            if self._streaks[kind] >= self.debounce:
                self._streaks[kind] = 0
                fired.append(
                    self._fire(
                        kind,
                        round_id,
                        evidence.observer,
                        detail=(
                            f"missing={comparison.total_missing}, "
                            f"extra={comparison.total_extra}, "
                            f"normalized_l1={score.normalized_l1:.3f}"
                        ),
                    )
                )
        if fired and journal.enabled:
            journal.emit(
                "bypass_evidence",
                round_id=round_id,
                session_id=self.session_id or None,
                observer=evidence.observer,
                suspected_attacks=list(evidence.suspected_attacks),
                alerts=[alert.kind for alert in fired],
                score=score.to_payload(),
                flight=get_flight_recorder().dump(max_round=round_id),
            )
        return score, fired

    def record_family_mismatch(
        self, round_id: int, error: Exception, observer: str = ""
    ) -> AuditAlert:
        """An attempted comparison failed structurally (derivation mismatch).

        Fires immediately (no debounce): two parties hashing under
        different derivations can *never* produce a comparable audit, so
        every round until reconfiguration would be blind.
        """
        return self._fire(
            ALERT_FAMILY_MISMATCH, round_id, observer, detail=str(error)
        )

    def record_offload(
        self, round_id: int, report, observer: str = "offload-auditor"
    ) -> List[AuditAlert]:
        """Score one offload audit round (see ``repro.dataplane.offload``).

        ``report`` is any object exposing ``suspicious`` / ``detail`` /
        ``to_payload()`` (an ``OffloadRoundReport``).  Emits an
        ``offload_audit`` journal event every round and — after
        ``debounce`` consecutive suspicious rounds — fires the
        :data:`ALERT_OFFLOAD_BYPASS` alert with the ``1/rate``-scaled
        misdrop estimate and its confidence interval in the detail.
        """
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "offload_audit",
                round_id=round_id,
                session_id=self.session_id or None,
                observer=observer,
                suspicious=report.suspicious,
                **report.to_payload(),
            )
        get_registry().counter(
            "vif_audit_rounds_total",
            help="Audit rounds scored by the timeline",
            observer=observer,
        ).inc()
        fired: List[AuditAlert] = []
        if not report.suspicious:
            self._streaks[ALERT_OFFLOAD_BYPASS] = 0
            return fired
        self._streaks[ALERT_OFFLOAD_BYPASS] += 1
        if self._streaks[ALERT_OFFLOAD_BYPASS] >= self.debounce:
            self._streaks[ALERT_OFFLOAD_BYPASS] = 0
            fired.append(
                self._fire(
                    ALERT_OFFLOAD_BYPASS, round_id, observer, detail=report.detail
                )
            )
            if journal.enabled:
                journal.emit(
                    "bypass_evidence",
                    round_id=round_id,
                    session_id=self.session_id or None,
                    observer=observer,
                    suspected_attacks=[],
                    alerts=[alert.kind for alert in fired],
                    score=report.to_payload(),
                    flight=get_flight_recorder().dump(max_round=round_id),
                )
        return fired

    def raise_alert(
        self, kind: str, round_id: int, observer: str, detail: str
    ) -> AuditAlert:
        """Fire a typed alert directly (no debounce — callers like the SLO
        engine run their own multi-window debounce before reaching here).

        Routes through the same ``vif_audit_alerts_total`` /
        ``vif_audit_last_alert_round`` metrics and ``alert`` journal event
        as every other alert kind, so one timeline is the single audit
        record whatever subsystem raised the flag.
        """
        return self._fire(kind, round_id, observer, detail)

    # -- internals ----------------------------------------------------------------

    def _fire(
        self, kind: str, round_id: int, observer: str, detail: str
    ) -> AuditAlert:
        alert = AuditAlert(
            kind=kind, round_id=round_id, observer=observer, detail=detail
        )
        self.alerts.append(alert)
        registry = get_registry()
        registry.counter(
            "vif_audit_alerts_total",
            help="Debounced audit alerts fired, by kind",
            kind=kind,
        ).inc()
        registry.gauge(
            "vif_audit_last_alert_round",
            help="Round id of the most recent alert, by kind",
            kind=kind,
        ).set(round_id)
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "alert",
                round_id=round_id,
                session_id=self.session_id or None,
                kind=kind,
                observer=observer,
                detail=detail,
            )
        return alert

    def _export_metrics(self, score: DivergenceScore) -> None:
        registry = get_registry()
        labels = {"observer": score.observer}
        if self.session_id:
            labels["session"] = self.session_id
        registry.counter(
            "vif_audit_rounds_total",
            help="Audit rounds scored by the timeline",
            **labels,
        ).inc()
        registry.gauge(
            "vif_audit_divergence_l1",
            help="Last round's L1 sketch divergence (max row sum, packets)",
            **labels,
        ).set(score.l1)
        registry.gauge(
            "vif_audit_divergence_linf",
            help="Last round's L-infinity sketch divergence (worst bin, packets)",
            **labels,
        ).set(score.l_inf)
        registry.gauge(
            "vif_audit_divergence_ratio_last",
            help="Last round's L1 divergence over the CM error budget",
            **labels,
        ).set(score.normalized_l1)
        registry.histogram(
            "vif_audit_divergence_ratio",
            help="Per-round L1 divergence over the CM error budget",
            buckets=DIVERGENCE_RATIO_BUCKETS,
            **labels,
        ).observe(score.normalized_l1)
