"""Typed metric instruments and the fleet-wide metrics registry.

VIF's value proposition is *measurement you can trust*: bypass detection is
nothing but comparing counters kept in different trust domains (paper §IV).
This module gives the reproduction the same discipline about itself — one
registry of typed instruments, one naming convention, one exposition path —
instead of ad-hoc ``stats()`` dicts scattered across the data plane.

Design points:

* **Counters are the books, not an optional extra.**  The per-component
  stats objects (:class:`~repro.dataplane.pipeline.PipelineStats`,
  :class:`~repro.core.fleet.FleetCounters`, ...) store their values *in*
  registry counters, so the packet-conservation checks and the exposition
  read the same memory — there is no second set of numbers to drift.
  Counter increments are plain attribute arithmetic and stay on regardless
  of the enable flag.
* **Timing is the overhead, and it is opt-in.**  Histogram *observations of
  wall time* (ECall latency, sketch update cost, burst filter cost) require
  clock reads in the hot path; call sites gate them on
  :func:`timing_enabled`, which defaults to off.  With timing off the data
  path pays only the counter increments it always paid.
* **Conservation checks are registry invariants.**  Components register
  named predicate callables (``fn() -> Optional[str]``); the CLI and the
  harnesses can ask the registry to evaluate any or all of them.

Naming convention: ``vif_<subsystem>_<name>`` with Prometheus-style
``_total`` suffixes for counters and ``_seconds``/``_bytes`` units, e.g.
``vif_pipeline_received_total``, ``vif_tee_ecall_seconds``.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Schema tag stamped into every JSON snapshot (``BENCH_*.json`` consumers
#: key off this).
SNAPSHOT_SCHEMA = "vif-metrics-v1"

#: Schema tag for the structured registry state used for cross-process
#: merging (:meth:`MetricsRegistry.export_state` /
#: :meth:`MetricsRegistry.merge_state`).  Unlike :data:`SNAPSHOT_SCHEMA`
#: payloads (whose series names are pre-formatted exposition strings), the
#: state format keeps labels structured so a receiving registry can rebuild
#: the exact instruments.
STATE_SCHEMA = "vif-metrics-state-v1"

#: Default latency buckets (seconds): 1 µs .. 10 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for *simulated* recovery times (seconds): failovers are
#: dominated by attestation round trips and backoff waits, so the range is
#: coarser than the data-path latency buckets.
RECOVERY_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

LabelValue = Union[str, int]


def _label_key(labels: Mapping[str, LabelValue]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-exposition spec.

    Inside label values, backslash, double-quote and newline must be
    written as ``\\\\``, ``\\"`` and ``\\n`` respectively — anything else
    produces unparseable exposition.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in key
    )
    return "{" + inner + "}"


def _format_value(value: Number) -> str:
    if isinstance(value, float):
        # Non-finite values must not reach int(): int(nan) raises ValueError
        # and int(-inf) raises OverflowError.  Prometheus text spells them
        # +Inf / -Inf / NaN.
        if value == math.inf:
            return "+Inf"
        if value == -math.inf:
            return "-Inf"
        if value != value:
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _json_safe(value: Number) -> Number:
    """Clamp non-finite floats for strict-JSON snapshots.

    ``json.dumps`` emits bare ``Infinity``/``NaN`` tokens, which strict
    parsers (and the telemetry endpoint's consumers) reject; snapshots spell
    them as strings matching the Prometheus text forms instead.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return _format_value(value)  # type: ignore[return-value]
    return value


class Counter:
    """A monotonically *used* cumulative value.

    ``set`` exists because the stats facades expose counters as assignable
    attributes (tests cook the books on purpose to prove the conservation
    check fires); the exposition layer does not care how the value got
    there.
    """

    kind = "counter"
    __slots__ = ("name", "label_key", "value")

    def __init__(self, name: str, label_key: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.label_key = label_key
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        self.value = value


class Gauge:
    """A value that goes up and down (ring occupancy, EPC bytes in use)."""

    kind = "gauge"
    __slots__ = ("name", "label_key", "value")

    def __init__(self, name: str, label_key: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.label_key = label_key
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the final
    slot is the implicit ``+Inf`` bucket.  Buckets are fixed at creation —
    no allocation on the observe path.
    """

    kind = "histogram"
    __slots__ = ("name", "label_key", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        label_key: Tuple[Tuple[str, str], ...],
        buckets: Tuple[float, ...],
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.label_key = label_key
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-bucket counts (ends at ``count``)."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


Instrument = Union[Counter, Gauge, Histogram]


class _Family:
    """All children (label sets) of one metric name."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[Tuple[Tuple[str, str], ...], Instrument] = {}


class MetricsRegistry:
    """A namespace of metric families plus named conservation invariants."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._invariants: Dict[str, Callable[[], Optional[str]]] = {}

    # -- instrument creation -------------------------------------------------

    def _child(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Mapping[str, LabelValue],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Instrument:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"not a {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            if kind == "counter":
                child = Counter(name, key)
            elif kind == "gauge":
                child = Gauge(name, key)
            else:
                child = Histogram(
                    name, key, family.buckets or DEFAULT_LATENCY_BUCKETS
                )
            family.children[key] = child
        return child

    def counter(
        self, name: str, help: str = "", **labels: LabelValue
    ) -> Counter:
        """Get or create the counter ``name`` with the given label set."""
        return self._child(name, "counter", help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: LabelValue) -> Gauge:
        """Get or create the gauge ``name`` with the given label set."""
        return self._child(name, "gauge", help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: LabelValue,
    ) -> Histogram:
        """Get or create the histogram ``name`` with the given label set.

        The first creation of a family fixes its buckets; later callers get
        the family's buckets regardless of what they pass (one family, one
        bucket layout — Prometheus semantics).
        """
        return self._child(  # type: ignore[return-value]
            name, "histogram", help, labels, buckets=tuple(buckets)
        )

    # -- invariants -----------------------------------------------------------

    def register_invariant(
        self, name: str, check: Callable[[], Optional[str]]
    ) -> None:
        """Register a named conservation check.

        ``check`` returns ``None`` when the invariant holds, else a
        human-readable violation message.  Re-registering a name replaces
        the previous check.
        """
        self._invariants[name] = check

    def unregister_invariant(self, name: str) -> None:
        self._invariants.pop(name, None)

    def check_invariants(
        self, names: Optional[Iterable[str]] = None
    ) -> List[str]:
        """Evaluate invariants; returns the violation messages (empty == ok)."""
        selected = list(names) if names is not None else sorted(self._invariants)
        violations: List[str] = []
        for name in selected:
            check = self._invariants.get(name)
            if check is None:
                violations.append(f"unknown invariant {name!r}")
                continue
            message = check()
            if message is not None:
                violations.append(f"{name}: {message}")
        return violations

    @property
    def invariant_names(self) -> List[str]:
        return sorted(self._invariants)

    # -- introspection ---------------------------------------------------------

    def families(self) -> List[str]:
        return sorted(self._families)

    def get(
        self, name: str, **labels: LabelValue
    ) -> Optional[Instrument]:
        """Look up an existing child without creating it."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def total(self, name: str) -> Number:
        """Sum of a counter/gauge family across all label sets (0 if absent)."""
        family = self._families.get(name)
        if family is None:
            return 0
        if family.kind == "histogram":
            return sum(child.count for child in family.children.values())  # type: ignore[union-attr]
        return sum(child.value for child in family.children.values())  # type: ignore[union-attr]

    # -- exposition ------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The classic ``# HELP`` / ``# TYPE`` text exposition format."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if family.kind == "histogram":
                    hist = child
                    cumulative = hist.cumulative_counts()  # type: ignore[union-attr]
                    for bound, count in zip(
                        list(hist.buckets) + [math.inf], cumulative  # type: ignore[union-attr]
                    ):
                        bucket_key = key + (("le", _format_value(float(bound))),)
                        lines.append(
                            f"{name}_bucket{_format_labels(tuple(sorted(bucket_key)))} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} {_format_value(hist.sum)}"  # type: ignore[union-attr]
                    )
                    lines.append(f"{name}_count{_format_labels(key)} {hist.count}")  # type: ignore[union-attr]
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} {_format_value(child.value)}"  # type: ignore[union-attr]
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot: per-series values plus per-family totals.

        This is the ``BENCH_*.json`` payload format: benchmarks attach a
        ``bench`` block and write it next to their tables, so every future
        perf PR reports against the same counters.
        """
        series: Dict[str, Dict[str, object]] = {}
        totals: Dict[str, Number] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.children):
                child = family.children[key]
                series_name = f"{name}{_format_labels(key)}"
                if family.kind == "histogram":
                    hist = child
                    histograms[series_name] = {
                        "buckets": list(hist.buckets),  # type: ignore[union-attr]
                        "counts": list(hist.bucket_counts),  # type: ignore[union-attr]
                        "sum": _json_safe(hist.sum),  # type: ignore[union-attr]
                        "count": hist.count,  # type: ignore[union-attr]
                    }
                    totals[name] = totals.get(name, 0) + hist.count  # type: ignore[union-attr]
                else:
                    series[series_name] = {
                        "kind": family.kind,
                        "value": _json_safe(child.value),  # type: ignore[union-attr]
                    }
                    totals[name] = totals.get(name, 0) + child.value  # type: ignore[union-attr]
        return {
            "schema": SNAPSHOT_SCHEMA,
            "series": series,
            "histograms": histograms,
            "totals": {name: _json_safe(value) for name, value in totals.items()},
        }

    # -- cross-process merging ---------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Structured, pickle/JSON-safe dump of every instrument in this registry.

        The sharded data plane's worker processes export their (private)
        registries through this and ship them to the coordinator, which folds
        them into its own registry via :meth:`merge_state` — one fleet-wide
        view without a shared-memory registry.  Labels stay structured (not
        pre-formatted exposition strings), so the receiving side rebuilds the
        exact same instruments.
        """
        families: List[Dict[str, object]] = []
        for name in sorted(self._families):
            family = self._families[name]
            children: List[Dict[str, object]] = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: Dict[str, object] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["buckets"] = list(child.buckets)  # type: ignore[union-attr]
                    entry["counts"] = list(child.bucket_counts)  # type: ignore[union-attr]
                    entry["sum"] = child.sum  # type: ignore[union-attr]
                    entry["count"] = child.count  # type: ignore[union-attr]
                else:
                    entry["value"] = child.value  # type: ignore[union-attr]
                children.append(entry)
            families.append(
                {
                    "name": name,
                    "kind": family.kind,
                    "help": family.help,
                    "children": children,
                }
            )
        return {"schema": STATE_SCHEMA, "families": families}

    def merge_state(self, state: Mapping[str, object]) -> int:
        """Fold an :meth:`export_state` payload into this registry; returns
        the number of series merged.

        Merging is *additive*: counters and gauges are incremented by the
        incoming value, histograms add bucket counts, sums and totals
        (bucket layouts must match).  A series that already exists under the
        same name and labels therefore accumulates — which is exactly right
        for the unlabeled global counters (``vif_sketch_updates_total``) and
        exactly wrong for per-instance series, so exporting processes must
        qualify their instance labels (:func:`set_instance_namespace`) to
        keep worker series from colliding with each other's or the
        coordinator's.
        """
        if state.get("schema") != STATE_SCHEMA:
            raise ValueError(
                f"cannot merge metrics state with schema {state.get('schema')!r} "
                f"(expected {STATE_SCHEMA!r})"
            )
        merged = 0
        for family in state["families"]:  # type: ignore[index]
            name = family["name"]
            kind = family["kind"]
            help_text = family.get("help", "")
            for child in family["children"]:
                labels = child["labels"]
                if kind == "counter":
                    self.counter(name, help=help_text, **labels).inc(child["value"])
                elif kind == "gauge":
                    self.gauge(name, help=help_text, **labels).inc(child["value"])
                elif kind == "histogram":
                    hist = self.histogram(
                        name,
                        help=help_text,
                        buckets=tuple(child["buckets"]),
                        **labels,
                    )
                    if list(hist.buckets) != [float(b) for b in child["buckets"]]:
                        raise ValueError(
                            f"histogram {name!r} bucket layout differs from the "
                            "incoming state; cannot merge"
                        )
                    for i, count in enumerate(child["counts"]):
                        hist.bucket_counts[i] += count
                    hist.sum += child["sum"]
                    hist.count += child["count"]
                else:
                    raise ValueError(f"unknown instrument kind {kind!r}")
                merged += 1
        return merged

    def write_json(self, path: str, extra: Optional[Mapping[str, object]] = None) -> None:
        """Write :meth:`snapshot` (plus optional ``extra`` keys) to ``path``."""
        payload = dict(self.snapshot())
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


# -- the process-wide default registry and the timing switch -------------------

_default_registry = MetricsRegistry()
_timing = False
_instance_counters: Dict[str, int] = {}
_instance_namespace = ""


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every component instruments into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


class LazyCounter:
    """A module-level counter handle that follows registry swaps.

    Free functions on the data path (address parsing, ``stable_hash64``)
    cannot cache a :class:`Counter` at import time — tests swap the default
    registry under them via :func:`set_registry`.  This handle re-resolves
    its counter only when the registry identity changes, so the steady-state
    cost stays one identity check plus the increment.
    """

    __slots__ = ("name", "help", "_registry", "_counter")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._registry: Optional[MetricsRegistry] = None
        self._counter: Optional[Counter] = None

    def _resolve(self) -> Counter:
        registry = get_registry()
        if registry is not self._registry:
            self._registry = registry
            self._counter = registry.counter(self.name, help=self.help)
        return self._counter  # type: ignore[return-value]

    def inc(self, amount: Number = 1) -> None:
        self._resolve().inc(amount)

    @property
    def value(self) -> Number:
        return self._resolve().value


class LazyGauge:
    """A module-level gauge handle that follows registry swaps.

    Same contract as :class:`LazyCounter`, for values that go up and down
    (membership-tier entry counts, load factors): the gauge is re-resolved
    only when the default registry's identity changes.
    """

    __slots__ = ("name", "help", "_registry", "_gauge")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._registry: Optional[MetricsRegistry] = None
        self._gauge: Optional[Gauge] = None

    def _resolve(self) -> Gauge:
        registry = get_registry()
        if registry is not self._registry:
            self._registry = registry
            self._gauge = registry.gauge(self.name, help=self.help)
        return self._gauge  # type: ignore[return-value]

    def set(self, value: Number) -> None:
        self._resolve().set(value)

    def inc(self, amount: Number = 1) -> None:
        self._resolve().inc(amount)

    def dec(self, amount: Number = 1) -> None:
        self._resolve().dec(amount)

    @property
    def value(self) -> Number:
        return self._resolve().value


def timing_enabled() -> bool:
    """Whether hot paths should pay for clock reads and histogram updates."""
    return _timing


def set_timing(enabled: bool) -> bool:
    """Toggle timing instrumentation; returns the previous setting."""
    global _timing
    previous = _timing
    _timing = bool(enabled)
    return previous


def set_instance_namespace(namespace: str) -> str:
    """Qualify every future instance label with ``namespace``; returns the
    previous namespace.

    Instance labels (:func:`next_instance_label`) are only unique *within* a
    process: worker 0 and worker 1 of the sharded data plane both mint
    ``pipeline-1``.  A worker process sets a namespace (``shard-w0``) right
    after fork, so its labels become ``shard-w0/pipeline-1`` and a central
    :meth:`MetricsRegistry.merge_state` cannot collide one worker's series
    with another's or with the coordinator's.  The default namespace is
    empty, which keeps single-process label values unchanged.
    """
    global _instance_namespace
    previous = _instance_namespace
    _instance_namespace = namespace
    return previous


def get_instance_namespace() -> str:
    """The current instance-label namespace ("" in the main process)."""
    return _instance_namespace


def next_instance_label(prefix: str) -> str:
    """A process-unique label value (``pipeline-3``) for per-object series.

    Stats facades label their series per owning object so every object's
    counters start from zero (test isolation) while the registry can still
    aggregate across them via :meth:`MetricsRegistry.total`.  When an
    instance namespace is set (worker processes), the label is qualified as
    ``<namespace>/<prefix>-<n>`` so cross-process merges stay collision-free.
    """
    n = _instance_counters.get(prefix, 0) + 1
    _instance_counters[prefix] = n
    if _instance_namespace:
        return f"{_instance_namespace}/{prefix}-{n}"
    return f"{prefix}-{n}"
