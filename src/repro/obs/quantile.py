"""Streaming quantile estimation over fixed log-spaced buckets.

The serve runtime needs live p50/p90/p99/p999 latency signals without
keeping every observation: a :class:`StreamingQuantile` is a fixed array of
log-spaced bucket counts with linear interpolation inside the bucket the
requested rank falls in.  The layout is frozen at construction, so:

* **observe() is O(log buckets)** (bisect) with zero allocation;
* **merge is exact** — two estimators over disjoint streams merge by adding
  bucket counts, and the merged quantiles are *identical* to one estimator
  having seen the concatenated stream (the associativity property the
  sharded data plane's per-worker merge relies on);
* **the error is bounded by the bucket width**: the true empirical quantile
  and the interpolated estimate always land in the same bucket, so for
  values inside ``[bounds[0], bounds[-1]]`` the relative error is at most
  ``ratio - 1`` where ``ratio`` is the geometric spacing — with the default
  :data:`DEFAULT_QUANTILE_BOUNDS` (20 buckets per decade) that is
  ``10**(1/20) - 1 ≈ 12.2%``.  Values below the first bound interpolate
  down to 0; values above the last bound clamp to it.

``tests/test_quantile.py`` pins the error bound against exact
``statistics.quantiles`` on seeded uniform, log-normal and adversarial
spike workloads, plus the merge associativity.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_QUANTILE_BOUNDS",
    "MAX_RELATIVE_ERROR",
    "StreamingQuantile",
    "histogram_quantile",
    "quantile_from_counts",
]

#: Geometric bucket upper bounds: 1 µs .. 100 s, 20 buckets per decade.
DEFAULT_QUANTILE_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (-6.0 + i / 20.0) for i in range(8 * 20 + 1)
)

#: The documented worst-case relative error for in-range values under the
#: default bounds: interpolation never leaves the true quantile's bucket,
#: so the error is at most one bucket's relative width.
MAX_RELATIVE_ERROR: float = 10.0 ** (1.0 / 20.0) - 1.0


def quantile_from_counts(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
) -> float:
    """Interpolated quantile ``q`` from per-bucket counts.

    ``counts`` has ``len(bounds) + 1`` entries — the final slot is the
    overflow (``> bounds[-1]``) bucket, which clamps to ``bounds[-1]``.
    The first bucket interpolates down to 0.  Returns 0.0 on an empty
    distribution.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    # 1-based target rank; q=0 -> first observation, q=1 -> last.
    target = q * (total - 1) + 1.0
    running = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if running + count >= target:
            if i >= len(bounds):  # overflow bucket: clamp to the last bound
                return float(bounds[-1])
            lo = float(bounds[i - 1]) if i > 0 else 0.0
            hi = float(bounds[i])
            frac = (target - running) / count
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        running += count
    return float(bounds[-1])


class StreamingQuantile:
    """Mergeable streaming quantile sketch over fixed log-spaced buckets."""

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_QUANTILE_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a sorted non-empty sequence")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording -------------------------------------------------------------

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # -- querying --------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Interpolated quantile (0.0 on an empty sketch)."""
        return quantile_from_counts(self.bounds, self.counts, q)

    def quantiles(
        self, qs: Sequence[float] = (0.5, 0.9, 0.99, 0.999)
    ) -> Dict[str, float]:
        """The standard p50/p90/p99/p999 snapshot keyed ``p50``-style."""
        out: Dict[str, float] = {}
        for q in qs:
            key = "p" + format(q * 100, "g").replace(".", "")
            out[key] = self.quantile(q)
        return out

    def bucket_bound(self, value: float) -> float:
        """The upper bound of the bucket ``value`` lands in (clamped).

        Deterministic quantization for journal payloads: whatever jitter
        the raw measurement carries, every value inside one bucket reports
        the same bound, so same-seed runs journal identical numbers.
        """
        i = bisect_left(self.bounds, value)
        return float(self.bounds[min(i, len(self.bounds) - 1)])

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "StreamingQuantile") -> "StreamingQuantile":
        """Fold ``other`` into this sketch (layouts must match)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge quantile sketches with different bounds")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self


def histogram_quantile(hist, q: float) -> float:
    """Interpolated quantile from an existing :class:`~repro.obs.Histogram`.

    Uses the histogram's own (typically log-spaced) bucket layout — the
    "fixed-log-bucket interpolation on the existing Histogram" path for
    instruments that are already being populated for exposition.
    """
    return quantile_from_counts(hist.buckets, hist.bucket_counts, q)
