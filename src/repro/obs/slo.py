"""Declarative service-level objectives with multi-window burn-rate alerting.

An :class:`SLOObjective` states what fraction of serve *bursts* must be good
(``target``) for some boolean goodness predicate — p99 stage latency under a
threshold, burst not shed, offload audit round not suspicious, drop
conservation holding.  The :class:`SLOEngine` consumes one good/bad sample
per burst per objective and evaluates the classic multi-window burn rate:

    ``budget    = 1 - target``                 (allowed bad fraction)
    ``burn_w    = bad_fraction(window_w) / budget``

An objective is *violating* when **both** the short window (fast signal,
catches spikes) and the long window (sustained signal, suppresses blips)
burn at ``burn_factor`` or more.  A violation must hold for ``debounce``
consecutive burst evaluations before the engine fires; it then disarms and
re-arms only after a fully healthy evaluation — so one latency-spike episode
produces **exactly one** ``slo_violation`` journal event, however many
bursts the windows keep remembering it for.

Determinism contract (the serve journal must be byte-identical across
same-seed runs): samples are *booleans per burst*, so burn rates are ratios
of small integers; the ``worst`` scalar callers attach to bad samples must
already be quantized (the serve loop uses
:meth:`repro.obs.quantile.StreamingQuantile.bucket_bound`) — never a raw
wall-clock measurement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.obs.audit import ALERT_SLO, AuditTimeline
from repro.obs.events import get_journal
from repro.obs.metrics import get_registry

__all__ = [
    "SLOObjective",
    "SLOViolation",
    "SLOEngine",
    "SLO_STAGE_LATENCY",
    "SLO_SHED_RATIO",
    "SLO_OFFLOAD_AUDIT",
    "SLO_CONSERVATION",
    "default_serve_objectives",
]

#: Objective names the serve loop feeds (see ``ServeService``); an engine
#: may carry any subset — the loop only records into objectives that exist.
SLO_STAGE_LATENCY = "stage-latency"
SLO_SHED_RATIO = "shed-ratio"
SLO_OFFLOAD_AUDIT = "offload-audit"
SLO_CONSERVATION = "conservation"


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective over per-burst good/bad samples."""

    name: str
    #: Required good fraction, e.g. 0.99 → a 1% bad-burst budget.
    target: float
    #: Fast window (bursts): catches spikes within a round or two.
    short_window: int = 4
    #: Slow window (bursts): demands the spike is not pure noise.
    long_window: int = 16
    #: Both windows must burn at >= this multiple of budget to violate.
    burn_factor: float = 1.0
    #: Consecutive violating evaluations required before firing.
    debounce: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.short_window < 1 or self.long_window < self.short_window:
            raise ValueError(
                "windows must satisfy 1 <= short_window <= long_window, got "
                f"{self.short_window}/{self.long_window}"
            )
        if self.burn_factor <= 0:
            raise ValueError("burn_factor must be positive")
        if self.debounce < 1:
            raise ValueError("debounce must be >= 1")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class SLOViolation:
    """One fired (debounced) violation."""

    objective: str
    burst: int
    burn_short: float
    burn_long: float
    bad_short: int
    len_short: int
    bad_long: int
    len_long: int
    worst: float

    def to_payload(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "burst": self.burst,
            "burn_short": round(self.burn_short, 6),
            "burn_long": round(self.burn_long, 6),
            "bad_short": self.bad_short,
            "len_short": self.len_short,
            "bad_long": self.bad_long,
            "len_long": self.len_long,
            "worst": self.worst,
        }


class _ObjectiveState:
    __slots__ = ("objective", "short", "long", "streak", "armed", "worst_pending")

    def __init__(self, objective: SLOObjective) -> None:
        self.objective = objective
        self.short: Deque[int] = deque(maxlen=objective.short_window)
        self.long: Deque[int] = deque(maxlen=objective.long_window)
        self.streak = 0
        self.armed = True
        self.worst_pending = 0.0


class SLOEngine:
    """Evaluates objectives per closed burst; fires debounced violations.

    The serve loop calls :meth:`observe` any number of times while a burst
    is in flight (samples for one burst OR together; ``worst`` takes the
    max) and :meth:`close_burst` exactly once when the audit stage finishes
    that burst — which is why a latency spike injected at burst N fires its
    violation in the same round N, regardless of pipeline lag.
    """

    def __init__(
        self,
        objectives: List[SLOObjective],
        timeline: Optional[AuditTimeline] = None,
        session_id: str = "",
    ) -> None:
        names = [o.name for o in objectives]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate objective names: {names}")
        self.timeline = timeline
        self.session_id = session_id
        self.violations: List[SLOViolation] = []
        self._states: Dict[str, _ObjectiveState] = {
            o.name: _ObjectiveState(o) for o in objectives
        }
        #: burst -> objective name -> bad flag (pending until close_burst).
        self._pending: Dict[int, Dict[str, bool]] = {}
        self._worst: Dict[int, Dict[str, float]] = {}

    @property
    def objectives(self) -> List[SLOObjective]:
        return [state.objective for state in self._states.values()]

    def has(self, name: str) -> bool:
        return name in self._states

    # -- recording --------------------------------------------------------------

    def observe(
        self, name: str, burst: int, bad: bool, worst: float = 0.0
    ) -> None:
        """Record one sample for ``burst`` (OR-ed with earlier samples).

        ``worst`` is attached to the violation payload when the objective
        fires — pass a *quantized* scalar (bucket bound), never a raw
        measurement, or same-seed journals stop being byte-identical.
        """
        if name not in self._states:
            raise ValueError(f"unknown objective {name!r}")
        pending = self._pending.setdefault(burst, {})
        pending[name] = pending.get(name, False) or bool(bad)
        if bad and worst:
            worsts = self._worst.setdefault(burst, {})
            worsts[name] = max(worsts.get(name, 0.0), worst)

    def close_burst(self, burst: int) -> List[SLOViolation]:
        """Fold ``burst``'s samples into every objective's windows and
        evaluate; returns any violations fired (already journaled)."""
        pending = self._pending.pop(burst, {})
        worsts = self._worst.pop(burst, {})
        fired: List[SLOViolation] = []
        registry = get_registry()
        for name, state in self._states.items():
            bad = pending.get(name, False)
            state.short.append(1 if bad else 0)
            state.long.append(1 if bad else 0)
            obj = state.objective
            bad_short, len_short = sum(state.short), len(state.short)
            bad_long, len_long = sum(state.long), len(state.long)
            burn_short = (bad_short / len_short) / obj.budget
            burn_long = (bad_long / len_long) / obj.budget
            registry.gauge(
                "vif_slo_burn_rate",
                help="Current error-budget burn rate, by objective and window",
                objective=name,
                window="short",
            ).set(round(burn_short, 6))
            registry.gauge(
                "vif_slo_burn_rate",
                help="Current error-budget burn rate, by objective and window",
                objective=name,
                window="long",
            ).set(round(burn_long, 6))
            registry.counter(
                "vif_slo_bursts_total",
                help="Bursts evaluated against SLOs, by objective and outcome",
                objective=name,
                outcome="bad" if bad else "good",
            ).inc()

            violating = (
                burn_short >= obj.burn_factor and burn_long >= obj.burn_factor
            )
            if not violating:
                state.streak = 0
                state.armed = True
                continue
            state.streak += 1
            if not state.armed or state.streak < obj.debounce:
                continue
            state.armed = False
            state.streak = 0
            violation = SLOViolation(
                objective=name,
                burst=burst,
                burn_short=burn_short,
                burn_long=burn_long,
                bad_short=bad_short,
                len_short=len_short,
                bad_long=bad_long,
                len_long=len_long,
                worst=worsts.get(name, 0.0),
            )
            fired.append(violation)
            self.violations.append(violation)
            self._emit(violation, registry)
        return fired

    # -- introspection ----------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """JSON-safe live view for the ``/varz`` endpoint."""
        out: Dict[str, object] = {}
        for name, state in self._states.items():
            obj = state.objective
            len_short = max(len(state.short), 1)
            len_long = max(len(state.long), 1)
            out[name] = {
                "target": obj.target,
                "burn_short": round((sum(state.short) / len_short) / obj.budget, 6),
                "burn_long": round((sum(state.long) / len_long) / obj.budget, 6),
                "armed": state.armed,
                "violations": sum(
                    1 for v in self.violations if v.objective == name
                ),
            }
        return out

    # -- internals ---------------------------------------------------------------

    def _emit(self, violation: SLOViolation, registry) -> None:
        registry.counter(
            "vif_slo_violations_total",
            help="Debounced SLO violations fired, by objective",
            objective=violation.objective,
        ).inc()
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "slo_violation",
                round_id=violation.burst,
                session_id=self.session_id or None,
                **violation.to_payload(),
            )
        if self.timeline is not None:
            self.timeline.raise_alert(
                ALERT_SLO,
                round_id=violation.burst,
                observer=f"slo:{violation.objective}",
                detail=(
                    f"burn_short={violation.burn_short:.3f}, "
                    f"burn_long={violation.burn_long:.3f}, "
                    f"worst={violation.worst}"
                ),
            )


def default_serve_objectives(
    short_window: int = 4,
    long_window: int = 16,
    burn_factor: float = 2.0,
) -> List[SLOObjective]:
    """The standard objective set for `repro serve` (see docs/OBSERVABILITY.md).

    Targets are per-burst good fractions; the serve loop supplies the
    goodness predicates (stage latency under the configured threshold,
    burst not shed, offload audit round not suspicious, drop conservation
    holding at burst close).
    """
    return [
        SLOObjective(
            name=SLO_STAGE_LATENCY,
            target=0.99,
            short_window=short_window,
            long_window=long_window,
            burn_factor=burn_factor,
            description="p99 of bursts see every stage under the latency threshold",
        ),
        SLOObjective(
            name=SLO_SHED_RATIO,
            target=0.95,
            short_window=short_window,
            long_window=long_window,
            burn_factor=burn_factor,
            description="at most 5% of bursts shed under backpressure",
        ),
        SLOObjective(
            name=SLO_OFFLOAD_AUDIT,
            target=0.99,
            short_window=short_window,
            long_window=long_window,
            burn_factor=burn_factor,
            description="offload audit rounds score clean",
        ),
        SLOObjective(
            name=SLO_CONSERVATION,
            target=0.999,
            short_window=short_window,
            long_window=long_window,
            burn_factor=burn_factor,
            debounce=1,
            description="drop-conservation holds at every burst close",
        ),
    ]
