"""The flight recorder: a bounded ring of recent per-flow verdicts.

When a bypass alert or an invariant failure fires, the operator's first
question is *which flows* — the sketch comparison localizes divergence to
hash bins, not to traffic.  The flight recorder answers it: a fixed-size
ring buffer of the most recent ``(flow, rule, verdict, round)`` entries,
recorded **outside the hot path** from the existing burst-coalesced stats
batching (one boolean check per burst when disabled, one batched append
pass per burst when enabled), and dumped into the journal automatically on
any alert or fault-harness invariant failure.

The ring is bounded by construction — forensics cost is O(capacity) memory
regardless of traffic volume — and dumps can be confined to rounds at or
before the alert's round so an excerpt never contains post-alert entries.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

DEFAULT_CAPACITY = 256

#: One recorded verdict: (flow key, rule id or None, verdict tag, round id).
FlightEntry = Tuple[str, Optional[int], str, Optional[int]]


class FlightRecorder:
    """Bounded ring buffer of per-flow verdicts for forensic drill-down."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._ring: Deque[FlightEntry] = deque(maxlen=capacity)

    # -- recording -------------------------------------------------------------

    def record(
        self,
        flow: str,
        rule_id: Optional[int],
        verdict: str,
        round_id: Optional[int],
    ) -> None:
        self._ring.append((flow, rule_id, verdict, round_id))

    def record_batch(self, entries: Iterable[FlightEntry]) -> None:
        """Append a whole burst's entries (the batched call sites use this)."""
        self._ring.extend(entries)

    def clear(self) -> None:
        self._ring.clear()

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def entries(self) -> List[FlightEntry]:
        return list(self._ring)

    def dump(self, max_round: Optional[int] = None) -> List[Dict[str, object]]:
        """JSON-ready excerpt, oldest first.

        ``max_round`` confines the excerpt to rounds at or before the
        alert's round (entries with no round survive the filter — they
        predate round tracking and carry no post-alert information).
        """
        out: List[Dict[str, object]] = []
        for flow, rule_id, verdict, round_id in self._ring:
            if (
                max_round is not None
                and round_id is not None
                and round_id > max_round
            ):
                continue
            out.append(
                {
                    "flow": flow,
                    "rule": rule_id,
                    "verdict": verdict,
                    "round": round_id,
                }
            )
        return out


# -- the process-wide default recorder ------------------------------------------

_default_recorder = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return _default_recorder


def set_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the default recorder (tests); returns the previous one."""
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    return previous


def flight_recording_enabled() -> bool:
    return _default_recorder.enabled


def set_flight_recording(enabled: bool) -> bool:
    """Toggle the default recorder; returns the previous setting."""
    previous = _default_recorder.enabled
    _default_recorder.enabled = bool(enabled)
    return previous
