"""The structured audit-event journal.

VIF's headline property is that the victim can *verify* the filtering
network; this module makes that verification an inspectable artifact
instead of a transient boolean.  Control-plane code emits **typed,
schema-versioned events** (``round_start``, ``sketch_audit``,
``bypass_evidence``, ``failover``, ``attestation``, ...) into a journal
that serializes to JSONL.  Every event carries:

* a **monotonic sequence number** (``seq``) — total order within the run;
* a **timestamp** from an injectable clock — with no clock injected the
  journal uses a deterministic logical clock (``ts == seq``), so golden
  tests and CI artifacts are byte-stable by default;
* the shared **correlation keys** ``session``/``round`` that also ride on
  trace-span args and audit metric labels, so "what did the enclave see in
  round 7" is answerable by joining journal, trace, and metrics on the
  same key.

Journaling is **off by default** and costs one boolean check per emit site
when off — same discipline as tracing.  Unknown event types are rejected
loudly: the journal is the schema the rest of the system emits into, not a
free-form log.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Union

#: Schema tag stamped into every serialized event (consumers key off this).
EVENT_SCHEMA = "vif-events-v1"

#: The closed set of event types.  Extending the taxonomy means adding a
#: name here (and documenting it in docs/OBSERVABILITY.md) — emitting an
#: unknown type raises instead of silently minting new schema.
EVENT_TYPES = frozenset(
    {
        "round_start",       # a filtering/harness round began
        "redistribution",    # rules were re-spread across the fleet
        "sketch_audit",      # per-round divergence score (repro.obs.audit)
        "bypass_evidence",   # debounced audit alert with evidence + flight dump
        "failover",          # FleetManager.recover() acted on dead slots
        "attestation",       # one enclave passed remote attestation
        "fault_injected",    # the fault harness fired a scheduled fault
        "invariant_failure", # an independent invariant audit failed
        "alert",             # a typed audit alert (kind in payload)
    }
)

PayloadValue = Union[str, int, float, bool, None, list, dict]


class Event:
    """One journaled event (immutable once emitted)."""

    __slots__ = ("seq", "ts", "type", "session_id", "round_id", "payload")

    def __init__(
        self,
        seq: int,
        ts: float,
        type: str,
        session_id: str,
        round_id: Optional[int],
        payload: Dict[str, PayloadValue],
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.type = type
        self.session_id = session_id
        self.round_id = round_id
        self.payload = payload

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": EVENT_SCHEMA,
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "session": self.session_id,
            "round": self.round_id,
            "payload": self.payload,
        }

    def __repr__(self) -> str:
        return (
            f"Event(seq={self.seq}, type={self.type!r}, "
            f"round={self.round_id}, session={self.session_id!r})"
        )


class EventJournal:
    """An append-only journal of typed events with JSONL serialization.

    ``time_source`` defaults to the logical clock (``ts == seq``) so the
    journal is deterministic unless the operator explicitly injects wall
    time.  ``current_round`` is ambient context: round drivers set it once
    per round and every event emitted without an explicit ``round_id``
    inherits it (so deep components — the fleet manager, the fault
    injector — need no round plumbing).
    """

    def __init__(
        self,
        time_source: Optional[Callable[[], float]] = None,
        enabled: bool = False,
        session_id: str = "",
    ) -> None:
        self.enabled = enabled
        self.session_id = session_id
        self.current_round: Optional[int] = None
        self._time = time_source
        self._events: List[Event] = []
        self._next_seq = 1

    # -- recording -------------------------------------------------------------

    def emit(
        self,
        type: str,
        round_id: Optional[int] = None,
        session_id: Optional[str] = None,
        **payload: PayloadValue,
    ) -> Optional[Event]:
        """Append one event; returns it (or None while disabled).

        Callers guard hot paths with ``journal.enabled`` themselves; this
        re-check makes direct calls safe regardless.
        """
        if not self.enabled:
            return None
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; known: {sorted(EVENT_TYPES)}"
            )
        seq = self._next_seq
        self._next_seq += 1
        event = Event(
            seq=seq,
            ts=self._time() if self._time is not None else float(seq),
            type=type,
            session_id=self.session_id if session_id is None else session_id,
            round_id=self.current_round if round_id is None else round_id,
            payload=dict(payload),
        )
        self._events.append(event)
        return event

    def set_round(self, round_id: Optional[int]) -> None:
        """Set the ambient round correlation key for subsequent events."""
        self.current_round = round_id

    def clear(self) -> None:
        self._events = []
        self._next_seq = 1
        self.current_round = None

    # -- introspection ----------------------------------------------------------

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_type(self, type: str) -> List[Event]:
        """Events of one type, in emission order."""
        return [e for e in self._events if e.type == type]

    # -- serialization -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact, key-sorted JSON object per line (byte-stable)."""
        return "".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
            for e in self._events
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


def read_jsonl(source: Union[str, Iterable[str]]) -> List[Dict[str, object]]:
    """Parse a journal file (path) or iterable of JSONL lines.

    Validates the schema tag on every line; raises ``ValueError`` on a
    foreign or mangled journal rather than rendering garbage.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    events: List[Dict[str, object]] = []
    for n, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"journal line {n} is not JSON: {exc}") from exc
        if doc.get("schema") != EVENT_SCHEMA:
            raise ValueError(
                f"journal line {n} has schema {doc.get('schema')!r}, "
                f"expected {EVENT_SCHEMA!r}"
            )
        events.append(doc)
    return events


# -- the process-wide default journal -------------------------------------------

_default_journal = EventJournal()


def get_journal() -> EventJournal:
    return _default_journal


def set_journal(journal: EventJournal) -> EventJournal:
    """Swap the default journal (tests); returns the previous one."""
    global _default_journal
    previous = _default_journal
    _default_journal = journal
    return previous


def journaling_enabled() -> bool:
    return _default_journal.enabled


def set_journaling(enabled: bool) -> bool:
    """Toggle the default journal; returns the previous setting."""
    previous = _default_journal.enabled
    _default_journal.enabled = bool(enabled)
    return previous
