"""The structured audit-event journal.

VIF's headline property is that the victim can *verify* the filtering
network; this module makes that verification an inspectable artifact
instead of a transient boolean.  Control-plane code emits **typed,
schema-versioned events** (``round_start``, ``sketch_audit``,
``bypass_evidence``, ``failover``, ``attestation``, ...) into a journal
that serializes to JSONL.  Every event carries:

* a **monotonic sequence number** (``seq``) — total order within the run;
* a **timestamp** from an injectable clock — with no clock injected the
  journal uses a deterministic logical clock (``ts == seq``), so golden
  tests and CI artifacts are byte-stable by default;
* the shared **correlation keys** ``session``/``round`` that also ride on
  trace-span args and audit metric labels, so "what did the enclave see in
  round 7" is answerable by joining journal, trace, and metrics on the
  same key.

Journaling is **off by default** and costs one boolean check per emit site
when off — same discipline as tracing.  Unknown event types are rejected
loudly: the journal is the schema the rest of the system emits into, not a
free-form log.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterable, List, Optional, Union

#: Schema tag stamped into every serialized event (consumers key off this).
EVENT_SCHEMA = "vif-events-v1"

#: The closed set of event types.  Extending the taxonomy means adding a
#: name here (and documenting it in docs/OBSERVABILITY.md) — emitting an
#: unknown type raises instead of silently minting new schema.
EVENT_TYPES = frozenset(
    {
        "round_start",       # a filtering/harness round began
        "redistribution",    # rules were re-spread across the fleet
        "sketch_audit",      # per-round divergence score (repro.obs.audit)
        "bypass_evidence",   # debounced audit alert with evidence + flight dump
        "failover",          # FleetManager.recover() acted on dead slots
        "attestation",       # one enclave passed remote attestation
        "fault_injected",    # the fault harness fired a scheduled fault
        "invariant_failure", # an independent invariant audit failed
        "alert",             # a typed audit alert (kind in payload)
        "offload_audit",     # one sampled-audit round of the offload tier
        "rule_update",       # a hot rule delta was applied while serving
        "stage_restart",     # the serve watchdog restarted a stage/worker
        "serve_state",       # the serve runtime changed lifecycle state
        "slo_violation",     # the SLO engine's burn-rate gate fired
    }
)

PayloadValue = Union[str, int, float, bool, None, list, dict]


class JsonlSink:
    """A streaming JSONL file sink with size-based rotation.

    Serve mode emits events indefinitely; holding them all in memory (or in
    one ever-growing file) is an outage waiting to happen.  The sink appends
    one line per event and rotates when the current file would exceed
    ``max_bytes``: ``path`` becomes ``path.1``, the old ``path.1`` becomes
    ``path.2``, and anything past ``max_files`` rotated generations is
    deleted.  Rotation happens *between* lines, so every file is valid JSONL
    on its own and :func:`read_jsonl` accepts each one directly.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 16 * 1024 * 1024,
        max_files: int = 3,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if max_files < 0:
            raise ValueError("max_files must be >= 0")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.lines_written = 0
        self.rotations = 0
        self._fh = None
        self._size = 0

    def _open(self) -> None:
        self._size = (
            os.path.getsize(self.path) if os.path.exists(self.path) else 0
        )
        self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, line: str) -> None:
        """Append one JSONL line (must already end with a newline)."""
        if self._fh is None:
            self._open()
        encoded = len(line.encode("utf-8"))
        if self._size > 0 and self._size + encoded > self.max_bytes:
            self._rotate()
        self._fh.write(line)
        self._size += encoded
        self.lines_written += 1

    def _rotate(self) -> None:
        assert self._fh is not None
        self._fh.close()
        self._fh = None
        # Shift generations oldest-first: path.N-1 -> path.N, ..., path -> path.1.
        oldest = f"{self.path}.{self.max_files}"
        if self.max_files == 0:
            os.remove(self.path)
        else:
            if os.path.exists(oldest):
                os.remove(oldest)
            for n in range(self.max_files - 1, 0, -1):
                src = f"{self.path}.{n}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{n + 1}")
            os.replace(self.path, f"{self.path}.1")
        self.rotations += 1
        self._open()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def files(self) -> List[str]:
        """Every file the sink currently owns, newest first."""
        paths = [self.path]
        for n in range(1, self.max_files + 1):
            paths.append(f"{self.path}.{n}")
        return [p for p in paths if os.path.exists(p)]


class Event:
    """One journaled event (immutable once emitted)."""

    __slots__ = ("seq", "ts", "type", "session_id", "round_id", "payload")

    def __init__(
        self,
        seq: int,
        ts: float,
        type: str,
        session_id: str,
        round_id: Optional[int],
        payload: Dict[str, PayloadValue],
    ) -> None:
        self.seq = seq
        self.ts = ts
        self.type = type
        self.session_id = session_id
        self.round_id = round_id
        self.payload = payload

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": EVENT_SCHEMA,
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "session": self.session_id,
            "round": self.round_id,
            "payload": self.payload,
        }

    def __repr__(self) -> str:
        return (
            f"Event(seq={self.seq}, type={self.type!r}, "
            f"round={self.round_id}, session={self.session_id!r})"
        )


def _serialize_event(event: Event) -> str:
    """The canonical byte-stable JSONL line for one event."""
    return (
        json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        + "\n"
    )


class EventJournal:
    """An append-only journal of typed events with JSONL serialization.

    ``time_source`` defaults to the logical clock (``ts == seq``) so the
    journal is deterministic unless the operator explicitly injects wall
    time.  ``current_round`` is ambient context: round drivers set it once
    per round and every event emitted without an explicit ``round_id``
    inherits it (so deep components — the fleet manager, the fault
    injector — need no round plumbing).
    """

    def __init__(
        self,
        time_source: Optional[Callable[[], float]] = None,
        enabled: bool = False,
        session_id: str = "",
        max_events: Optional[int] = None,
        sink: Optional[JsonlSink] = None,
    ) -> None:
        """``max_events`` bounds the in-memory list (oldest events are
        evicted past the cap; ``evicted_events`` counts them) and ``sink``
        optionally streams every event to a rotating JSONL file at emit
        time, so an always-on service keeps a durable journal without
        unbounded process growth.  Both default off: batch runs behave
        exactly as before (byte-identical golden journals)."""
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be positive (or None)")
        self.enabled = enabled
        self.session_id = session_id
        self.current_round: Optional[int] = None
        self.max_events = max_events
        self.evicted_events = 0
        self.sink = sink
        self._time = time_source
        self._events: List[Event] = []
        self._next_seq = 1

    # -- recording -------------------------------------------------------------

    def emit(
        self,
        type: str,
        round_id: Optional[int] = None,
        session_id: Optional[str] = None,
        **payload: PayloadValue,
    ) -> Optional[Event]:
        """Append one event; returns it (or None while disabled).

        Callers guard hot paths with ``journal.enabled`` themselves; this
        re-check makes direct calls safe regardless.
        """
        if not self.enabled:
            return None
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; known: {sorted(EVENT_TYPES)}"
            )
        seq = self._next_seq
        self._next_seq += 1
        event = Event(
            seq=seq,
            ts=self._time() if self._time is not None else float(seq),
            type=type,
            session_id=self.session_id if session_id is None else session_id,
            round_id=self.current_round if round_id is None else round_id,
            payload=dict(payload),
        )
        self._events.append(event)
        if self.max_events is not None and len(self._events) > self.max_events:
            evict = len(self._events) - self.max_events
            del self._events[:evict]
            self.evicted_events += evict
        if self.sink is not None:
            self.sink.write(_serialize_event(event))
        return event

    def set_round(self, round_id: Optional[int]) -> None:
        """Set the ambient round correlation key for subsequent events."""
        self.current_round = round_id

    def clear(self) -> None:
        self._events = []
        self._next_seq = 1
        self.current_round = None
        self.evicted_events = 0

    # -- introspection ----------------------------------------------------------

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_type(self, type: str) -> List[Event]:
        """Events of one type, in emission order."""
        return [e for e in self._events if e.type == type]

    # -- serialization -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact, key-sorted JSON object per line (byte-stable).

        Serializes the *retained* events; with a ``max_events`` cap in
        place, evicted history is only available through the streaming
        :class:`JsonlSink` (which saw every event at emit time).
        """
        return "".join(_serialize_event(e) for e in self._events)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


def read_jsonl(source: Union[str, Iterable[str]]) -> List[Dict[str, object]]:
    """Parse a journal file (path) or iterable of JSONL lines.

    Validates the schema tag on every line; raises ``ValueError`` on a
    foreign or mangled journal rather than rendering garbage.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    events: List[Dict[str, object]] = []
    for n, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"journal line {n} is not JSON: {exc}") from exc
        if doc.get("schema") != EVENT_SCHEMA:
            raise ValueError(
                f"journal line {n} has schema {doc.get('schema')!r}, "
                f"expected {EVENT_SCHEMA!r}"
            )
        events.append(doc)
    return events


# -- the process-wide default journal -------------------------------------------

_default_journal = EventJournal()


def get_journal() -> EventJournal:
    return _default_journal


def set_journal(journal: EventJournal) -> EventJournal:
    """Swap the default journal (tests); returns the previous one."""
    global _default_journal
    previous = _default_journal
    _default_journal = journal
    return previous


def journaling_enabled() -> bool:
    return _default_journal.enabled


def set_journaling(enabled: bool) -> bool:
    """Toggle the default journal; returns the previous setting."""
    previous = _default_journal.enabled
    _default_journal.enabled = bool(enabled)
    return previous
