"""``repro.obs`` — the fleet-wide observability layer.

One registry of typed instruments (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) that the per-component stats facades store their values
in, plus lightweight trace spans that record wall-time trees of a pipeline
round and serialize to Chrome-trace JSON.  See ``docs/OBSERVABILITY.md``
for the instrument catalogue and naming conventions.

Quick start::

    from repro import obs

    obs.set_timing(True)          # opt into latency histograms
    obs.set_tracing(True)         # opt into span recording
    ... run a round ...
    print(obs.get_registry().render_prometheus())
    obs.get_registry().write_json("BENCH_round.json")
    obs.get_tracer().write_chrome_trace("round.trace.json")
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    LazyCounter,
    MetricsRegistry,
    RECOVERY_BUCKETS,
    SNAPSHOT_SCHEMA,
    get_registry,
    next_instance_label,
    set_registry,
    set_timing,
    timing_enabled,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LazyCounter",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "DEFAULT_LATENCY_BUCKETS",
    "RECOVERY_BUCKETS",
    "SNAPSHOT_SCHEMA",
    "get_registry",
    "get_tracer",
    "next_instance_label",
    "set_registry",
    "set_timing",
    "set_tracer",
    "set_tracing",
    "span",
    "timing_enabled",
    "tracing_enabled",
]
