"""``repro.obs`` — the fleet-wide observability layer.

One registry of typed instruments (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) that the per-component stats facades store their values
in, plus lightweight trace spans that record wall-time trees of a pipeline
round and serialize to Chrome-trace JSON.  See ``docs/OBSERVABILITY.md``
for the instrument catalogue and naming conventions.

On top of the registry and tracer sit the audit-observability layer
(PR 5): a typed, schema-versioned **event journal** (:mod:`repro.obs.events`),
the per-round **audit timeline** turning sketch comparisons into scored
divergence series with debounced alerts (:mod:`repro.obs.audit`), and the
**flight recorder** ring of recent per-flow verdicts for forensic
drill-down (:mod:`repro.obs.flight`).

Quick start::

    from repro import obs

    obs.set_timing(True)          # opt into latency histograms
    obs.set_tracing(True)         # opt into span recording
    obs.set_journaling(True)      # opt into the audit event journal
    obs.set_flight_recording(True)  # opt into per-flow verdict recording
    ... run a round ...
    print(obs.get_registry().render_prometheus())
    obs.get_registry().write_json("BENCH_round.json")
    obs.get_tracer().write_chrome_trace("round.trace.json")
    obs.get_journal().write_jsonl("round.journal.jsonl")
"""

from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    Event,
    EventJournal,
    JsonlSink,
    get_journal,
    journaling_enabled,
    read_jsonl,
    set_journal,
    set_journaling,
)
from repro.obs.flight import (
    FlightRecorder,
    flight_recording_enabled,
    get_flight_recorder,
    set_flight_recorder,
    set_flight_recording,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    LazyCounter,
    LazyGauge,
    MetricsRegistry,
    RECOVERY_BUCKETS,
    SNAPSHOT_SCHEMA,
    STATE_SCHEMA,
    get_instance_namespace,
    get_registry,
    next_instance_label,
    set_instance_namespace,
    set_registry,
    set_timing,
    timing_enabled,
)
from repro.obs.audit import (
    ALERT_BYPASS,
    ALERT_FAMILY_MISMATCH,
    ALERT_INJECTION,
    ALERT_OFFLOAD_BYPASS,
    ALERT_SLO,
    AuditAlert,
    AuditTimeline,
    DivergenceScore,
)
from repro.obs.quantile import (
    DEFAULT_QUANTILE_BOUNDS,
    MAX_RELATIVE_ERROR,
    StreamingQuantile,
    histogram_quantile,
)
from repro.obs.slo import (
    SLO_CONSERVATION,
    SLO_OFFLOAD_AUDIT,
    SLO_SHED_RATIO,
    SLO_STAGE_LATENCY,
    SLOEngine,
    SLOObjective,
    SLOViolation,
    default_serve_objectives,
)
from repro.obs.telemetry import (
    StageLatencyTracker,
    TelemetryServer,
    VARZ_SCHEMA,
    http_get,
)
from repro.obs.trace import (
    SpanRecord,
    TRACE_STATE_SCHEMA,
    Tracer,
    get_tracer,
    set_tracer,
    set_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "ALERT_BYPASS",
    "ALERT_FAMILY_MISMATCH",
    "ALERT_INJECTION",
    "ALERT_OFFLOAD_BYPASS",
    "ALERT_SLO",
    "AuditAlert",
    "AuditTimeline",
    "Counter",
    "DivergenceScore",
    "Event",
    "EventJournal",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LazyCounter",
    "LazyGauge",
    "MetricsRegistry",
    "SLOEngine",
    "SLOObjective",
    "SLOViolation",
    "SLO_CONSERVATION",
    "SLO_OFFLOAD_AUDIT",
    "SLO_SHED_RATIO",
    "SLO_STAGE_LATENCY",
    "default_serve_objectives",
    "SpanRecord",
    "StageLatencyTracker",
    "StreamingQuantile",
    "TelemetryServer",
    "Tracer",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUANTILE_BOUNDS",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "MAX_RELATIVE_ERROR",
    "RECOVERY_BUCKETS",
    "SNAPSHOT_SCHEMA",
    "STATE_SCHEMA",
    "TRACE_STATE_SCHEMA",
    "VARZ_SCHEMA",
    "histogram_quantile",
    "http_get",
    "flight_recording_enabled",
    "get_flight_recorder",
    "get_instance_namespace",
    "get_journal",
    "get_registry",
    "get_tracer",
    "journaling_enabled",
    "next_instance_label",
    "read_jsonl",
    "set_flight_recorder",
    "set_flight_recording",
    "set_instance_namespace",
    "set_journal",
    "set_journaling",
    "set_registry",
    "set_timing",
    "set_tracer",
    "set_tracing",
    "span",
    "timing_enabled",
    "tracing_enabled",
]
