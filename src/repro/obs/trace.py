"""Lightweight trace spans with Chrome-trace serialization.

A span is a named wall-time interval with attributes, nested by dynamic
scope: ``with span("fleet.round"):`` opens a parent, any span entered before
it exits becomes a child.  One round of the pipeline therefore records a
tree — ``fleet.round`` over ``fleet.probe`` / ``fleet.recover`` /
``fleet.carry``, with the individual ``ecall.process_burst`` transitions as
leaves — which serializes to the Chrome trace event format
(``chrome://tracing`` / Perfetto ``traceEvents`` with ``ph: "X"`` complete
events).

Tracing is **off by default** and costs one predicate check per
instrumented site when off.  The time source is injectable so tests can
record deterministic traces (see the golden-trace regression test).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Union

Attr = Union[str, int, float, bool]

#: Schema tag on exported span-buffer state (see ``Tracer.export_state``).
TRACE_STATE_SCHEMA = "vif-trace-state-v1"


class SpanRecord:
    """One closed (or still-open) span."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "end_s",
        "args",
        "pid",
        "tid",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_s: float,
        args: Dict[str, Attr],
        pid: int = 0,
        tid: int = 0,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.args = args
        self.pid = pid
        self.tid = tid


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Preserve the exception's identity on the span: a trace that shows
        # a short `ecall.process_burst` is indistinguishable from a crashed
        # one without this tag.  The exception itself still propagates.
        if exc_type is not None:
            self._record.args["error"] = exc_type.__name__
        self._tracer._close(self._record)
        return False


class Tracer:
    """Records span trees; serializes to Chrome trace JSON.

    ``time_source`` defaults to :func:`time.perf_counter`; inject a
    deterministic callable (e.g. a fixed-step fake clock) to make recorded
    traces byte-stable across machines.  ``pid_source``/``tid_source``
    default to the real :func:`os.getpid`/:func:`threading.get_ident` so
    multi-worker traces render as separate lanes; golden tests inject
    constants to stay byte-stable.
    """

    def __init__(
        self,
        time_source: Optional[Callable[[], float]] = None,
        enabled: bool = False,
        pid_source: Optional[Callable[[], int]] = None,
        tid_source: Optional[Callable[[], int]] = None,
    ) -> None:
        self.enabled = enabled
        self._time = time_source or time.perf_counter
        self._pid = pid_source or os.getpid
        self._tid = tid_source or threading.get_ident
        self._records: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self._next_id = 1
        self._epoch: Optional[float] = None

    # -- recording -------------------------------------------------------------

    def span(self, name: str, **args: Attr):
        """Open a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        now = self._time()
        if self._epoch is None:
            self._epoch = now
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start_s=now,
            args=dict(args),
            pid=self._pid(),
            tid=self._tid(),
        )
        self._next_id += 1
        self._records.append(record)
        self._stack.append(record)
        return _Span(self, record)

    def _close(self, record: SpanRecord) -> None:
        record.end_s = self._time()
        # Pop back to (and including) the record; tolerates exceptions that
        # unwound children without closing them.
        while self._stack:
            if self._stack.pop() is record:
                break

    def clear(self) -> None:
        self._records = []
        self._stack = []
        self._next_id = 1
        self._epoch = None

    # -- introspection ----------------------------------------------------------

    @property
    def records(self) -> List[SpanRecord]:
        return list(self._records)

    def tree(self) -> List[Dict[str, object]]:
        """Nested ``{"name": ..., "children": [...]}`` view (record order)."""
        nodes: Dict[int, Dict[str, object]] = {}
        roots: List[Dict[str, object]] = []
        for record in self._records:
            node: Dict[str, object] = {"name": record.name, "children": []}
            nodes[record.span_id] = node
            parent = nodes.get(record.parent_id) if record.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)  # type: ignore[union-attr]
        return roots

    # -- serialization -----------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """The ``traceEvents`` document Chrome/Perfetto load directly.

        Spans become ``ph: "X"`` complete events with microsecond ``ts`` and
        ``dur`` relative to the earliest span.  Span and parent ids ride
        along in ``args`` so tools (and the golden regression test) can
        recover the exact tree without relying on interval containment.
        Each event carries the pid/tid stamped when the span opened, so
        merged multi-worker traces render one lane per worker process
        (on Linux ``perf_counter`` is the system-wide CLOCK_MONOTONIC,
        so cross-process spans share a timebase).
        """
        if self._records:
            epoch = min(record.start_s for record in self._records)
        else:
            epoch = self._epoch or 0.0
        events: List[Dict[str, object]] = []
        for record in self._records:
            end_s = record.end_s if record.end_s is not None else record.start_s
            args: Dict[str, object] = dict(record.args)
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "ts": round((record.start_s - epoch) * 1e6, 3),
                    "dur": round((end_s - record.start_s) * 1e6, 3),
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` to ``path`` (load in Perfetto)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # -- cross-process propagation ------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Serialize the span buffer for shipping across a process boundary.

        Shard workers record into their own private tracer, then export
        this blob through the same channel as ``MetricsRegistry.export_state``
        (the worker summary message); the parent folds it back in with
        :meth:`merge_state`.  The blob is plain JSON-safe data.
        """
        spans: List[Dict[str, object]] = []
        for record in self._records:
            spans.append(
                {
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    "name": record.name,
                    "start_s": record.start_s,
                    "end_s": record.end_s,
                    "args": dict(record.args),
                    "pid": record.pid,
                    "tid": record.tid,
                }
            )
        return {"schema": TRACE_STATE_SCHEMA, "spans": spans}

    def merge_state(self, state: Dict[str, object]) -> int:
        """Fold an exported span buffer into this tracer; returns span count.

        Imported spans get fresh local span ids (parent links are remapped
        within the imported batch) so ids never collide with locally
        recorded spans, while their pid/tid lanes and absolute timestamps
        are preserved exactly as the worker stamped them.
        """
        if not isinstance(state, dict) or state.get("schema") != TRACE_STATE_SCHEMA:
            raise ValueError(
                f"expected trace state schema {TRACE_STATE_SCHEMA!r}, "
                f"got {state.get('schema') if isinstance(state, dict) else state!r}"
            )
        spans = state.get("spans", [])
        id_map: Dict[int, int] = {}
        imported: List[SpanRecord] = []
        for doc in spans:
            new_id = self._next_id
            self._next_id += 1
            id_map[int(doc["span_id"])] = new_id
            record = SpanRecord(
                span_id=new_id,
                parent_id=doc.get("parent_id"),
                name=str(doc["name"]),
                start_s=float(doc["start_s"]),
                args=dict(doc.get("args") or {}),
                pid=int(doc.get("pid", 0)),
                tid=int(doc.get("tid", 0)),
            )
            end_s = doc.get("end_s")
            record.end_s = float(end_s) if end_s is not None else None
            imported.append(record)
        for record in imported:
            if record.parent_id is not None:
                # Parents outside the imported batch don't exist here; such
                # spans become roots rather than pointing at a foreign id.
                record.parent_id = id_map.get(int(record.parent_id))
        self._records.extend(imported)
        if imported and self._epoch is None:
            self._epoch = min(r.start_s for r in imported)
        return len(imported)


# -- the process-wide default tracer --------------------------------------------

_default_tracer = Tracer()


def get_tracer() -> Tracer:
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (tests); returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def tracing_enabled() -> bool:
    return _default_tracer.enabled


def set_tracing(enabled: bool) -> bool:
    """Toggle the default tracer; returns the previous setting."""
    previous = _default_tracer.enabled
    _default_tracer.enabled = bool(enabled)
    return previous


def span(name: str, **args: Attr):
    """Open a span on the default tracer (shared no-op when disabled)."""
    tracer = _default_tracer
    if not tracer.enabled:
        return _NULL_SPAN
    return tracer.span(name, **args)
