"""repro — a reproduction of "Practical Verifiable In-network Filtering for
DDoS Defense" (VIF, ICDCS 2019).

Quickstart::

    from repro import (
        IASService, IXPController, RPKIRegistry, VIFSession,
        FilterRule, FlowPattern, Action,
    )

    ias = IASService()
    rpki = RPKIRegistry()
    rpki.authorize("victim.example", "203.0.113.0/24")

    controller = IXPController(ias)
    controller.launch_filters(1)

    session = VIFSession("victim.example", rpki, ias, controller)
    session.attest_filters()
    session.submit_rules([
        FilterRule(
            rule_id=1,
            pattern=FlowPattern(dst_prefix="203.0.113.0/24", dst_ports=(80, 80)),
            p_allow=0.5,
            requested_by="victim.example",
        ),
    ])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.core import (
    Action,
    BypassEvidence,
    ConnectionPreservingMode,
    EnclaveFilter,
    EnclaveHealth,
    FilterDecision,
    FilterRule,
    FleetConfig,
    FleetManager,
    FlowPattern,
    IXPController,
    LoadBalancer,
    NeighborAuditor,
    RPKIRegistry,
    RuleDistributionProtocol,
    RuleSet,
    SessionState,
    StatelessFilter,
    VictimAuditor,
    VIFSession,
)
from repro.dataplane import FiveTuple, Packet, Protocol
from repro.optim import (
    Allocation,
    BranchAndBoundSolver,
    RuleDistributionProblem,
    greedy_solve,
)
from repro.sketch import CountMinSketch
from repro.tee import Enclave, IASService, Platform

__version__ = "1.0.0"

__all__ = [
    "Action",
    "Allocation",
    "BranchAndBoundSolver",
    "BypassEvidence",
    "ConnectionPreservingMode",
    "CountMinSketch",
    "Enclave",
    "EnclaveFilter",
    "EnclaveHealth",
    "FilterDecision",
    "FilterRule",
    "FiveTuple",
    "FleetConfig",
    "FleetManager",
    "FlowPattern",
    "IASService",
    "IXPController",
    "LoadBalancer",
    "NeighborAuditor",
    "Packet",
    "Platform",
    "Protocol",
    "RPKIRegistry",
    "RuleDistributionProblem",
    "RuleDistributionProtocol",
    "RuleSet",
    "SessionState",
    "StatelessFilter",
    "VictimAuditor",
    "VIFSession",
    "greedy_solve",
]
