"""A multi-bit (fixed-stride) trie over destination prefixes.

The paper's lookup table is a multi-bit trie; the trie here indexes rules by
their destination prefix in stride-sized chunks (default 8 bits, so a /24
walk touches three nodes) and stores the rules at the node where their
prefix terminates.  Matching a packet walks at most ``32 / stride`` nodes,
collecting candidate rules along the path (all trie ancestors of the
destination address), then picks the most specific candidate whose full
pattern matches — overlapping coarse/fine rules resolve exactly like
:class:`~repro.core.rules.RuleSet`.

Batch insertion (:meth:`insert_batch`) models the Appendix F hybrid design:
newly observed flows are converted to exact-match rules and inserted in one
batch per update period (Table II measures this cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.errors import LookupError_

if TYPE_CHECKING:  # imported for annotations only — avoids a core<->lookup cycle
    from repro.core.rules import FilterRule
    from repro.dataplane.packet import FiveTuple


class _TrieNode:
    """One fixed-stride node: child table plus locally terminating rules."""

    __slots__ = ("children", "rules")

    def __init__(self) -> None:
        self.children: Dict[int, "_TrieNode"] = {}
        self.rules: List[FilterRule] = []


@dataclass(frozen=True)
class TrieStats:
    """Size statistics used by memory accounting and tests."""

    num_rules: int
    num_nodes: int
    max_depth: int


class MultiBitTrie:
    """Fixed-stride multi-bit trie mapping packets to filter rules."""

    def __init__(self, stride_bits: int = 8) -> None:
        if stride_bits not in (1, 2, 4, 8, 16):
            raise ValueError("stride_bits must divide 32 and be one of 1,2,4,8,16")
        self.stride_bits = stride_bits
        self._chunk_mask = (1 << stride_bits) - 1
        self._root = _TrieNode()
        self._num_rules = 0
        self._num_nodes = 1
        self._rule_ids: set = set()

    # -- insertion -----------------------------------------------------------

    def insert(self, rule: FilterRule) -> None:
        """Insert one rule keyed by its destination prefix.

        All validation happens *before* :meth:`_walk_to` allocates interior
        nodes, so a rejected insert can never leave orphan nodes behind (or
        leave ``_num_nodes`` counting nodes that hold no rule path) — the
        ``stats()`` walk and the incremental counter always agree.
        """
        if rule.rule_id in self._rule_ids:
            raise LookupError_(f"rule {rule.rule_id} already installed")
        # Touch the compiled prefix fields up front: a malformed pattern
        # fails here, before any node is created.
        pattern = rule.pattern
        _ = pattern.dst_net_int, pattern.dst_prefix_len
        node = self._walk_to(rule, create=True)
        node.rules.append(rule)
        self._rule_ids.add(rule.rule_id)
        self._num_rules += 1

    def insert_batch(self, rules: Iterable[FilterRule]) -> int:
        """Insert many rules at once (Appendix F batch update); returns count."""
        count = 0
        for rule in rules:
            self.insert(rule)
            count += 1
        return count

    def remove(self, rule: FilterRule) -> None:
        """Remove a previously inserted rule (nodes are left in place)."""
        if rule.rule_id not in self._rule_ids:
            raise LookupError_(f"rule {rule.rule_id} is not installed")
        node = self._walk_to(rule, create=False)
        if node is None:
            raise LookupError_(
                f"rule {rule.rule_id} not found on its trie path (corrupt trie)"
            )
        node.rules[:] = [r for r in node.rules if r.rule_id != rule.rule_id]
        self._rule_ids.discard(rule.rule_id)
        self._num_rules -= 1

    # -- lookup ----------------------------------------------------------------

    def lookup(self, flow: FiveTuple) -> Optional[FilterRule]:
        """Most-specific installed rule matching ``flow``, or None.

        Returns the same answer a linear most-specific scan would, but only
        examines rules stored on the trie path of the destination address.
        """
        best: Optional[FilterRule] = None
        address = flow.dst_ip_int  # cached at FiveTuple construction
        stride = self.stride_bits
        chunk_mask = self._chunk_mask
        node = self._root
        depth = 0
        while True:
            for rule in node.rules:
                if not rule.pattern.matches(flow):
                    continue
                if best is None or self._more_specific(rule, best):
                    best = rule
            if depth >= 32:
                break
            chunk = (address >> (32 - depth - stride)) & chunk_mask
            child = node.children.get(chunk)
            if child is None:
                break
            node = child
            depth += stride
        return best

    # -- accounting --------------------------------------------------------------

    def __len__(self) -> int:
        return self._num_rules

    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._rule_ids

    def stats(self) -> TrieStats:
        """Walk the trie and report size statistics."""
        num_nodes = 0
        max_depth = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            num_nodes += 1
            max_depth = max(max_depth, depth)
            for child in node.children.values():
                stack.append((child, depth + 1))
        return TrieStats(
            num_rules=self._num_rules, num_nodes=num_nodes, max_depth=max_depth
        )

    def rules(self) -> List[FilterRule]:
        """All installed rules (unordered walk, sorted by id for determinism)."""
        out: List[FilterRule] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            out.extend(node.rules)
            stack.extend(node.children.values())
        return sorted(out, key=lambda r: r.rule_id)

    # -- internals ------------------------------------------------------------

    def _walk_to(self, rule: FilterRule, create: bool) -> Optional[_TrieNode]:
        """Walk (creating nodes if asked) to where ``rule``'s prefix ends."""
        address = rule.pattern.dst_net_int  # compiled at pattern construction
        prefix_len = rule.pattern.dst_prefix_len
        node = self._root
        depth = 0
        # Rules whose prefix length is not a stride multiple live at the last
        # full-stride ancestor; matching still works because lookup collects
        # candidates along the whole path and re-checks the full pattern.
        while depth + self.stride_bits <= prefix_len:
            chunk = self._chunk(address, depth)
            child = node.children.get(chunk)
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[chunk] = child
                self._num_nodes += 1
            node = child
            depth += self.stride_bits
        return node

    def _chunk(self, address: int, depth: int) -> int:
        """The stride-sized chunk of ``address`` starting at bit ``depth``."""
        shift = 32 - depth - self.stride_bits
        return (address >> shift) & ((1 << self.stride_bits) - 1)

    @staticmethod
    def _more_specific(candidate: FilterRule, incumbent: FilterRule) -> bool:
        cs = candidate.pattern.specificity
        bs = incumbent.pattern.specificity
        if cs != bs:
            return cs > bs
        return candidate.rule_id < incumbent.rule_id
