"""Exact-match flow table for connection-preserving filtering (Appendix A/F).

Non-deterministic rules need every packet of a TCP/UDP connection to share
one decision.  The exact-match strategy materializes a per-connection entry
(five-tuple → ALLOW/DROP) once the decision is made; the hybrid design
queues new flows decided hash-based and batch-converts them into table
entries at every rule update period.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # annotations only — avoids a core<->lookup cycle
    from repro.core.rules import Action
    from repro.dataplane.packet import FiveTuple

# One table slot: [decision, last-seen epoch].  A single dict keyed by the
# five-tuple replaces the previous parallel (_entries, _last_seen) pair, so
# the hot lookup path pays one hash probe instead of two and the two views
# can never drift apart.
_Slot = list


class ExactMatchFlowTable:
    """A hash table of per-connection decisions with batch insertion.

    Entries age out: each lookup stamps the entry with the current epoch
    (epochs advance once per rule-update period via :meth:`advance_epoch`),
    and :meth:`evict_idle` removes connections idle for too many epochs —
    the enclave's defense against the table growing without bound under
    high flow churn.  Eviction is *safe* for connection preservation: the
    per-flow verdict is hash-derived, so a flow whose entry was evicted and
    later re-created gets the identical decision.
    """

    #: Approximate enclave bytes per entry: five-tuple key, decision, and
    #: hash-bucket overhead — matches the lookup-table growth the paper
    #: observes for exact-match rules.
    BYTES_PER_ENTRY = 64

    def __init__(self) -> None:
        self._slots: Dict[FiveTuple, _Slot] = {}
        self._pending: List[Tuple[FiveTuple, Action]] = []
        self._epoch = 0

    # -- direct entries --------------------------------------------------------

    def lookup(self, flow: FiveTuple) -> Optional[Action]:
        """The installed decision for ``flow``, or None if absent."""
        slot = self._slots.get(flow)
        if slot is None:
            return None
        slot[1] = self._epoch
        return slot[0]

    def install(self, flow: FiveTuple, decision: Action) -> None:
        """Install (or overwrite) a per-connection decision immediately."""
        self._slots[flow] = [decision, self._epoch]

    def remove(self, flow: FiveTuple) -> None:
        """Drop a per-connection entry (e.g. connection timed out)."""
        self._slots.pop(flow, None)

    # -- aging ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def advance_epoch(self) -> int:
        """Move to the next update period; returns the new epoch."""
        self._epoch += 1
        return self._epoch

    def evict_idle(self, max_idle_epochs: int) -> int:
        """Remove entries not looked up for > ``max_idle_epochs`` epochs.

        Returns the number of evicted connections.
        """
        if max_idle_epochs < 0:
            raise ValueError("max_idle_epochs must be non-negative")
        epoch = self._epoch
        stale = [
            flow
            for flow, slot in self._slots.items()
            if epoch - slot[1] > max_idle_epochs
        ]
        for flow in stale:
            del self._slots[flow]
        return len(stale)

    # -- hybrid design: queue now, install at the next update period ------------

    def queue(self, flow: FiveTuple, decision: Action) -> None:
        """Queue a hash-decided new flow for the next batch conversion."""
        self._pending.append((flow, decision))

    def flush_pending(self) -> int:
        """Batch-install all queued flows (the per-update-period conversion).

        Returns the number of entries installed.  Duplicate queued flows keep
        the first decision, matching "all the packets in a flow are allowed
        or dropped together".
        """
        installed = 0
        slots = self._slots
        for flow, decision in self._pending:
            if flow not in slots:
                slots[flow] = [decision, self._epoch]
                installed += 1
        self._pending.clear()
        return installed

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, flow: FiveTuple) -> bool:
        return flow in self._slots

    def entries(self) -> Iterable[Tuple[FiveTuple, Action]]:
        """All installed entries (deterministic order for tests)."""
        return sorted(
            ((flow, slot[0]) for flow, slot in self._slots.items()),
            key=lambda kv: kv[0],
        )

    def memory_bytes(self) -> int:
        """Enclave footprint of installed + queued entries."""
        return (len(self._slots) + len(self._pending)) * self.BYTES_PER_ENTRY
