"""Rule lookup structures (paper IV-A, V-A, Appendix F).

The enclave resolves each packet against its installed rules through a
multi-bit trie (the paper's "state-of-the-art multi-bit tries data
structure") plus an exact-match flow table for connection-preserving
non-deterministic rules.  :mod:`repro.lookup.memory_model` captures the
linear memory cost ``C_j = u * rules + v`` that both Fig 3b and the
Appendix C optimizer rely on.
"""

from repro.lookup.multibit_trie import MultiBitTrie, TrieStats
from repro.lookup.flowtable import ExactMatchFlowTable
from repro.lookup.memory_model import (
    EnclaveMemoryModel,
    PAPER_MEMORY_MODEL,
)

__all__ = [
    "EnclaveMemoryModel",
    "ExactMatchFlowTable",
    "MultiBitTrie",
    "PAPER_MEMORY_MODEL",
    "TrieStats",
]
