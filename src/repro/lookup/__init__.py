"""Rule lookup structures (paper IV-A, V-A, Appendix F).

The enclave resolves each packet against its installed rules through a
multi-bit trie (the paper's "state-of-the-art multi-bit tries data
structure") plus an exact-match flow table for connection-preserving
non-deterministic rules.  :mod:`repro.lookup.membership` adds the tier that
makes million-entry ``/32``-source blocklists feasible: a Bloom pre-filter
backed by a cuckoo exact-confirm table, composed with the trie by
:class:`~repro.lookup.membership.TieredRuleStore`.
:mod:`repro.lookup.memory_model` captures the linear memory cost
``C_j = u * rules + v`` that both Fig 3b and the Appendix C optimizer rely
on, extended with byte-accurate pricing for the membership structures.
"""

from repro.lookup.multibit_trie import MultiBitTrie, TrieStats
from repro.lookup.flowtable import ExactMatchFlowTable
from repro.lookup.membership import (
    BloomFilter,
    CuckooHashTable,
    MembershipRule,
    MembershipStats,
    MembershipTier,
    TieredRuleStore,
)
from repro.lookup.memory_model import (
    EnclaveMemoryModel,
    MembershipCostModel,
    PAPER_MEMORY_MODEL,
)

__all__ = [
    "BloomFilter",
    "CuckooHashTable",
    "EnclaveMemoryModel",
    "ExactMatchFlowTable",
    "MembershipCostModel",
    "MembershipRule",
    "MembershipStats",
    "MembershipTier",
    "MultiBitTrie",
    "PAPER_MEMORY_MODEL",
    "TieredRuleStore",
    "TrieStats",
]
