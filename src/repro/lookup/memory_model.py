"""Enclave memory cost model: ``C(rules) = u * rules + v`` (paper IV-B, Fig 3b).

Calibration, documented against the paper's measured points:

* Fig 3b shows the lookup-table memory footprint growing linearly with the
  rule count, reaching roughly 150 MB at 10,000 rules and crossing the
  ~92 MB EPC limit mid-sweep.  With ``u = 14 KiB`` per rule and a ``v =
  8 MiB`` base (code, sketches, buffers), the model gives 145 MB at 10 K
  rules and crosses 92 MB near 6,100 rules — matching the figure's shape.
* Fig 3a's *throughput* knee sits earlier, at ≈3,000 rules, because lookup
  performance collapses before memory is exhausted.  The optimizer therefore
  uses a tighter *performance memory budget* ``M_opt`` chosen so that
  ``(M_opt - v) / u ≈ 3,000`` rules per enclave — the paper's stated
  per-enclave rule limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MB


@dataclass(frozen=True)
class MembershipCostModel:
    """Byte pricing for the membership tier's structures.

    The tier is priced from a :class:`~repro.lookup.membership.MembershipStats`
    snapshot (duck-typed: any object with ``bloom_bits``, ``num_buckets``,
    ``slots_per_bucket``, ``entries`` and ``stash_entries`` works), so the
    model stays import-free of the lookup structures it prices:

    * the Bloom filter is exactly its bit array (``bloom_bits / 8``),
    * every cuckoo slot is charged whether occupied or not — the table is
      pre-allocated, which is what the EPC sees,
    * every live entry carries its compact rule object,
    * stash entries pay a separate (pointer-chasing) premium.
    """

    #: Bytes per cuckoo slot: the 4-byte key and a value pointer, padded.
    bucket_slot_bytes: int = 16

    #: Bytes per live entry: the compact MembershipRule plus its list cell.
    entry_bytes: int = 96

    #: Bytes per stash entry (key + value pointer + list overhead).
    stash_entry_bytes: int = 32

    def footprint_bytes(self, stats) -> int:
        """Total membership-tier bytes for a stats snapshot."""
        return (
            stats.bloom_bits // 8
            + stats.num_buckets * stats.slots_per_bucket * self.bucket_slot_bytes
            + stats.entries * self.entry_bytes
            + stats.stash_entries * self.stash_entry_bytes
        )


@dataclass(frozen=True)
class EnclaveMemoryModel:
    """Linear per-enclave memory model with EPC and performance budgets."""

    #: Bytes of lookup-table memory per installed rule (the ILP's ``u``).
    bytes_per_rule: int = 14 * 1024

    #: Fixed enclave overhead in bytes: code, two ~1 MB sketches, ring
    #: buffers, SSL state (the ILP's ``v``).
    base_bytes: int = 8 * MB

    #: Usable Enclave Page Cache before paging (paper: "EPC limit is around
    #: 92 MB, as seen in many other works").
    epc_limit_bytes: int = 92 * MB

    #: Memory budget the optimizer packs against, chosen so the implied rule
    #: capacity matches the ≈3,000-rule throughput knee of Fig 3a.
    performance_budget_bytes: int = 50 * MB

    #: Pricing for the membership tier (Bloom bits + cuckoo buckets), which
    #: scales per *blocked source* instead of per 14 KiB trie rule.
    membership: MembershipCostModel = MembershipCostModel()

    def footprint_bytes(self, num_rules: int) -> int:
        """Total enclave footprint with ``num_rules`` installed."""
        if num_rules < 0:
            raise ValueError("num_rules must be non-negative")
        return self.base_bytes + self.bytes_per_rule * num_rules

    def exceeds_epc(self, num_rules: int) -> bool:
        """True once the footprint would trigger EPC paging."""
        return self.footprint_bytes(num_rules) > self.epc_limit_bytes

    def rule_capacity(self, budget_bytes: int = 0) -> int:
        """Max rules under ``budget_bytes`` (default: performance budget).

        This is the ``(M - v) / u`` bound the greedy algorithm enforces.
        """
        budget = budget_bytes or self.performance_budget_bytes
        if budget <= self.base_bytes:
            return 0
        return (budget - self.base_bytes) // self.bytes_per_rule

    def membership_footprint_bytes(self, stats) -> int:
        """Membership-tier bytes for a stats snapshot (0 for ``None``)."""
        if stats is None:
            return 0
        return self.membership.footprint_bytes(stats)

    def tiered_footprint_bytes(self, num_trie_rules: int, membership_stats) -> int:
        """Total enclave footprint for a tiered store: base + the linear
        14 KiB-per-rule lookup table for the *trie* rules only, plus the
        membership structures priced at their actual byte sizes."""
        return self.footprint_bytes(num_trie_rules) + self.membership_footprint_bytes(
            membership_stats
        )

    def tiered_exceeds_epc(self, num_trie_rules: int, membership_stats) -> bool:
        """True once the tiered footprint would trigger EPC paging — a
        10M-entry blocklist outgrows the 92 MB EPC even in compact form,
        and the cost model must say so."""
        return (
            self.tiered_footprint_bytes(num_trie_rules, membership_stats)
            > self.epc_limit_bytes
        )

    @property
    def u(self) -> int:
        """ILP constant ``u`` (bytes per rule)."""
        return self.bytes_per_rule

    @property
    def v(self) -> int:
        """ILP constant ``v`` (base bytes)."""
        return self.base_bytes


#: The calibration used throughout benchmarks and defaults.
PAPER_MEMORY_MODEL = EnclaveMemoryModel()
