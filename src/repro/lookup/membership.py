"""Tiered membership pre-filter for million-entry source-IP blocklists.

A real IXP blackhole list is millions of exact ``/32`` source addresses —
pure membership queries, not longest-prefix matches.  Feeding them to the
destination-keyed :class:`~repro.lookup.multibit_trie.MultiBitTrie` is
pathological: a ``/32``-source rule has a wildcard destination, so every one
of them lands on the trie root and lookup degenerates into a linear scan.

This module adds the membership tier the ROADMAP calls for (StreamBF-CH
shape): a **Bloom pre-filter** answers "definitely not blocked" for the
overwhelming majority of benign sources in O(k) bit probes, and a **cuckoo
hash table** exactly confirms the Bloom positives, so the effective false
positive rate of the *tier* is zero — a Bloom false positive costs one extra
bounded lookup, never a wrong verdict.  Both structures hash through the
version-tagged :class:`~repro.sketch.hashing.HashFamily`, paying **one**
SHA-256 digest per query: the family's raw 64-bit lanes are taken once and
reduced modulo the Bloom bit count and the cuckoo bucket count separately.

:class:`TieredRuleStore` composes the tier with the trie behind the exact
rule-store interface :class:`~repro.core.filter.StatelessFilter` uses, and
routes rules by shape: an eligible rule (deterministic DROP, IPv4 ``/32``
source, wildcard everything else) goes to the membership tier, everything
else to the trie.  Verdicts are provably identical to a trie-only store —
the differential suite in ``tests/test_membership_properties.py`` pins this.

Adaptive resizing: the tier rebuilds itself when the Bloom fill ratio
implies an estimated FPR above 5 % (removals leave ghost bits; inserts
beyond the sized capacity saturate the array) or when the cuckoo load
factor crosses 90 %.  Inserts are eviction-loop safe: kicks are bounded and
overflow lands in a small stash; a full stash forces a growth rebuild
instead of looping.  Every rebuild bumps a generation counter and notifies
listeners — the filter's per-flow decision memo subscribes so a rebuild can
never resurrect a stale verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import LookupError_, MembershipVersionError
from repro.lookup.multibit_trie import MultiBitTrie, TrieStats
from repro.obs import LazyCounter, LazyGauge
from repro.sketch.hashing import FAMILY_VERSION, HashFamily

_QUERIES = LazyCounter(
    "vif_membership_queries_total",
    help="Source-IP membership queries answered by the membership tier",
)
_BLOOM_NEGATIVES = LazyCounter(
    "vif_membership_bloom_negatives_total",
    help="Membership queries the Bloom pre-filter rejected (no cuckoo probe)",
)
_CONFIRMS = LazyCounter(
    "vif_membership_confirms_total",
    help="Bloom positives the cuckoo exact-confirm tier verified (true hits)",
)
_FALSE_POSITIVE_CONFIRMS = LazyCounter(
    "vif_membership_false_positive_confirms_total",
    help="Bloom positives the cuckoo exact-confirm tier rejected (Bloom FPs)",
)
_RESIZES = LazyCounter(
    "vif_membership_resizes_total",
    help="Adaptive rebuilds of the membership tier (FPR/load triggered)",
)
_ENTRIES = LazyGauge(
    "vif_membership_entries",
    help="Live rules held by the membership tier",
)
_LOAD_FACTOR = LazyGauge(
    "vif_membership_load_factor",
    help="Cuckoo table occupancy (entries / total slots)",
)

#: Hash lanes drawn per key: the first ``_BLOOM_LANES`` feed the Bloom
#: probes, the first two double as the cuckoo's candidate buckets.  All come
#: from one SHA-256 digest (four 8-byte slices).
_BLOOM_LANES = 3
_CUCKOO_LANES = 2

_BLOOM_MAGIC = b"VIFM"
_BLOOM_BLOB_VERSION = 1


class BloomFilter:
    """A plain bit-array Bloom filter driven by pre-computed hash lanes.

    The filter never hashes anything itself — callers pass the
    :meth:`HashFamily.lanes` slices, and the filter applies its own modulus.
    That keeps one digest shared between this tier's Bloom and cuckoo
    halves, and it makes the bit layout a pure function of
    ``(family version, family seed, num_bits, num_lanes)`` — which is
    exactly what the serialized blob pins.
    """

    __slots__ = ("num_bits", "num_lanes", "ones", "_bits")

    def __init__(self, num_bits: int, num_lanes: int = _BLOOM_LANES) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_lanes <= 0:
            raise ValueError("num_lanes must be positive")
        self.num_bits = num_bits
        self.num_lanes = num_lanes
        self.ones = 0  # set bits, maintained incrementally for the FPR estimate
        self._bits = bytearray((num_bits + 7) // 8)

    def add(self, lanes: Sequence[int]) -> None:
        bits = self._bits
        num_bits = self.num_bits
        for lane in lanes[: self.num_lanes]:
            pos = lane % num_bits
            byte, mask = pos >> 3, 1 << (pos & 7)
            if not bits[byte] & mask:
                bits[byte] |= mask
                self.ones += 1

    def might_contain(self, lanes: Sequence[int]) -> bool:
        bits = self._bits
        num_bits = self.num_bits
        for lane in lanes[: self.num_lanes]:
            pos = lane % num_bits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    @property
    def fill_ratio(self) -> float:
        return self.ones / self.num_bits

    def fpr_estimate(self) -> float:
        """Estimated false-positive probability at the current fill.

        A query is a false positive when all ``k`` probed bits are set; with
        a fill ratio ``f`` that happens with probability ``f^k``.  Removals
        leave ghost bits behind (a Bloom filter cannot unset shared bits),
        so the estimate reads the *actual* array fill, not the live entry
        count — ghosts raise it honestly.
        """
        return self.fill_ratio ** self.num_lanes

    # -- wire format ---------------------------------------------------------

    def serialize(self, family: HashFamily) -> bytes:
        """Self-describing blob: layout parameters + the bit array.

        The blob carries the hash-family **derivation version** and seed —
        the two inputs (besides the sizes) that determine which bits a key
        sets.  Loading under a different derivation would silently answer
        membership queries from garbage bits, so :meth:`deserialize` fails
        loudly instead, exactly like sketch blobs.
        """
        seed = family.family_seed.encode("utf-8")
        return b"".join(
            (
                _BLOOM_MAGIC,
                bytes((_BLOOM_BLOB_VERSION, family.version, self.num_lanes)),
                len(seed).to_bytes(2, "big"),
                seed,
                self.num_bits.to_bytes(8, "big"),
                self.ones.to_bytes(8, "big"),
                bytes(self._bits),
            )
        )

    @classmethod
    def deserialize(cls, blob: bytes, family: HashFamily) -> "BloomFilter":
        """Inverse of :meth:`serialize`; validates versions before bits."""
        if len(blob) < 23 or blob[:4] != _BLOOM_MAGIC:
            raise MembershipVersionError("not a membership Bloom blob")
        blob_version, family_version, num_lanes = blob[4], blob[5], blob[6]
        if blob_version != _BLOOM_BLOB_VERSION:
            raise MembershipVersionError(
                f"membership blob layout v{blob_version} unsupported "
                f"(this build reads v{_BLOOM_BLOB_VERSION})"
            )
        if family_version != family.version:
            raise MembershipVersionError(
                f"membership blob hashed under family version {family_version}, "
                f"this family derives version {family.version} — refusing to "
                "answer membership queries from incompatible bits"
            )
        seed_len = int.from_bytes(blob[7:9], "big")
        seed = blob[9 : 9 + seed_len].decode("utf-8")
        if seed != family.family_seed:
            raise MembershipVersionError(
                f"membership blob seeded with {seed!r}, family uses "
                f"{family.family_seed!r}"
            )
        off = 9 + seed_len
        num_bits = int.from_bytes(blob[off : off + 8], "big")
        ones = int.from_bytes(blob[off + 8 : off + 16], "big")
        bits = blob[off + 16 :]
        bloom = cls(num_bits, num_lanes)
        if len(bits) != len(bloom._bits):
            raise MembershipVersionError(
                f"membership blob truncated: {len(bits)} bit-array bytes, "
                f"expected {len(bloom._bits)}"
            )
        bloom._bits = bytearray(bits)
        bloom.ones = ones
        return bloom


class CuckooHashTable:
    """A two-choice cuckoo hash table with bounded kicks and a stash.

    Keys are IPv4 source addresses (integers); values are opaque.  The two
    candidate buckets come from the first two hash lanes the caller derived
    (one digest, shared with the Bloom filter), each holding up to
    ``slots_per_bucket`` entries.  Insertion into two full buckets evicts a
    resident entry and relocates it to its alternate bucket, at most
    ``max_kicks`` times; an entry still homeless after that goes to the
    stash.  A full stash makes :meth:`insert` return ``False`` — the tier
    responds by growing the table, so an adversarial key set degrades into a
    rebuild, never an eviction loop.
    """

    __slots__ = (
        "num_buckets",
        "slots_per_bucket",
        "max_kicks",
        "stash_limit",
        "entries",
        "_lane_fn",
        "_buckets",
        "_stash",
        "_kick_rotor",
    )

    def __init__(
        self,
        num_buckets: int,
        lane_fn: Callable[[int], Sequence[int]],
        slots_per_bucket: int = 4,
        max_kicks: int = 64,
        stash_limit: int = 8,
    ) -> None:
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.num_buckets = num_buckets
        self.slots_per_bucket = slots_per_bucket
        self.max_kicks = max_kicks
        self.stash_limit = stash_limit
        self.entries = 0
        self._lane_fn = lane_fn
        self._buckets: List[List[Tuple[int, object]]] = [
            [] for _ in range(num_buckets)
        ]
        self._stash: List[Tuple[int, object]] = []
        # Deterministic victim selection: a rotating slot index instead of
        # RNG keeps shard workers and the reference filter byte-identical.
        self._kick_rotor = 0

    def _bucket_pair(self, lanes: Sequence[int]) -> Tuple[int, int]:
        n = self.num_buckets
        return lanes[0] % n, lanes[1] % n

    @property
    def load_factor(self) -> float:
        return self.entries / (self.num_buckets * self.slots_per_bucket)

    @property
    def stash_entries(self) -> int:
        return len(self._stash)

    def get(self, key: int, lanes: Sequence[int]) -> Optional[object]:
        b1, b2 = self._bucket_pair(lanes)
        for stored_key, value in self._buckets[b1]:
            if stored_key == key:
                return value
        if b2 != b1:
            for stored_key, value in self._buckets[b2]:
                if stored_key == key:
                    return value
        for stored_key, value in self._stash:
            if stored_key == key:
                return value
        return None

    def insert(self, key: int, value: object, lanes: Sequence[int]) -> bool:
        """Insert ``key`` (must not be present); False when a growth is needed."""
        b1, b2 = self._bucket_pair(lanes)
        slots = self.slots_per_bucket
        buckets = self._buckets
        if len(buckets[b1]) < slots:
            buckets[b1].append((key, value))
            self.entries += 1
            return True
        if len(buckets[b2]) < slots:
            buckets[b2].append((key, value))
            self.entries += 1
            return True
        # Both candidates full: cuckoo-kick a resident to its alternate home.
        home = b1
        entry = (key, value)
        for _ in range(self.max_kicks):
            bucket = buckets[home]
            victim_slot = self._kick_rotor % slots
            self._kick_rotor += 1
            victim = bucket[victim_slot]
            bucket[victim_slot] = entry
            v1, v2 = self._bucket_pair(self._lane_fn(victim[0]))
            alt = v2 if home == v1 else v1
            if len(buckets[alt]) < slots:
                buckets[alt].append(victim)
                self.entries += 1
                return True
            entry, home = victim, alt
        if len(self._stash) < self.stash_limit:
            self._stash.append(entry)
            self.entries += 1
            return True
        # Undo nothing: the displaced chain is still fully stored except
        # ``entry``; re-homing it is the caller's rebuild's job.  Signal by
        # stashing unconditionally and reporting the overflow.
        self._stash.append(entry)
        self.entries += 1
        return False

    def remove(self, key: int, lanes: Sequence[int]) -> Optional[object]:
        b1, b2 = self._bucket_pair(lanes)
        for b in (b1, b2) if b2 != b1 else (b1,):
            bucket = self._buckets[b]
            for i, (stored_key, value) in enumerate(bucket):
                if stored_key == key:
                    bucket[i] = bucket[-1]
                    bucket.pop()
                    self.entries -= 1
                    return value
        for i, (stored_key, value) in enumerate(self._stash):
            if stored_key == key:
                self._stash[i] = self._stash[-1]
                self._stash.pop()
                self.entries -= 1
                return value
        return None


class MembershipRule:
    """A compact ``/32``-source DROP rule held by the membership tier.

    A million-entry blocklist cannot afford a full
    :class:`~repro.core.rules.FilterRule` + :class:`FlowPattern` per entry
    (~500 bytes and two prefix parses each); this carries the four fields
    that vary and serves the rule interface the verdict path reads
    (``rule_id``, ``action``, ``deterministic``, ``pattern.specificity``).
    :meth:`materialize` produces the equivalent full ``FilterRule`` on
    demand (control-plane exports, ``installed_rules`` ECalls).
    """

    __slots__ = ("rule_id", "src_int", "rate_bps", "requested_by", "_materialized")

    #: Membership rules are deterministic DROPs by construction.
    deterministic = True
    p_allow = None
    p_drop = 1.0
    #: All membership patterns share one specificity: 32 source bits,
    #: nothing else pinned (see :meth:`FlowPattern.specificity`).
    specificity = 32

    def __init__(
        self,
        rule_id: int,
        src_int: int,
        rate_bps: float = 0.0,
        requested_by: str = "",
    ) -> None:
        self.rule_id = rule_id
        self.src_int = src_int
        self.rate_bps = rate_bps
        self.requested_by = requested_by
        self._materialized = None

    @property
    def action(self):
        from repro.core.rules import Action  # deferred: no core<->lookup cycle

        return Action.DROP

    @property
    def pattern(self) -> "MembershipRule":
        # The verdict path only reads ``pattern.specificity``; serving it
        # from the rule itself avoids one object per blocklist entry.
        return self

    def materialize(self):
        """The equivalent full :class:`FilterRule` (built lazily, cached)."""
        if self._materialized is None:
            from repro.core.rules import Action, FilterRule, FlowPattern

            self._materialized = FilterRule(
                rule_id=self.rule_id,
                pattern=FlowPattern.from_src_host(self.src_int),
                action=Action.DROP,
                rate_bps=self.rate_bps,
                requested_by=self.requested_by,
            )
        return self._materialized

    @classmethod
    def from_rule(cls, rule) -> "MembershipRule":
        """Compact form of an eligible :class:`FilterRule` (see
        :meth:`TieredRuleStore.routes_to_membership`)."""
        compact = cls(
            rule_id=rule.rule_id,
            src_int=rule.pattern.src_net_int,
            rate_bps=rule.rate_bps,
            requested_by=rule.requested_by,
        )
        compact._materialized = rule
        return compact

    def __repr__(self) -> str:
        return f"MembershipRule(rule_id={self.rule_id}, src_int={self.src_int})"


@dataclass(frozen=True)
class MembershipStats:
    """Size/occupancy snapshot for cost accounting and tests."""

    entries: int
    bloom_bits: int
    bloom_ones: int
    bloom_lanes: int
    num_buckets: int
    slots_per_bucket: int
    stash_entries: int
    load_factor: float
    fpr_estimate: float
    generation: int
    resizes: int


def _next_power_of_two(n: int) -> int:
    return 1 << max(0, n - 1).bit_length()


class MembershipTier:
    """Bloom pre-filter + cuckoo exact-confirm over blocked source IPs."""

    #: Bloom bits provisioned per live entry at (re)build time.  With three
    #: lanes and 16 bits/entry the steady-state estimated FPR is
    #: ``(1 - e^(-3/16))^3 ≈ 0.4 %`` — an order of magnitude under the 5 %
    #: rebuild trigger, so rebuilds fire on genuine growth/ghost pressure.
    BLOOM_BITS_PER_ENTRY = 16

    def __init__(
        self,
        initial_capacity: int = 1024,
        slots_per_bucket: int = 4,
        max_kicks: int = 64,
        stash_limit: int = 8,
        fpr_threshold: float = 0.05,
        load_threshold: float = 0.90,
        family_seed: str = "vif-membership",
    ) -> None:
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if not 0.0 < fpr_threshold < 1.0:
            raise ValueError("fpr_threshold must be in (0, 1)")
        if not 0.0 < load_threshold <= 1.0:
            raise ValueError("load_threshold must be in (0, 1]")
        self.fpr_threshold = fpr_threshold
        self.load_threshold = load_threshold
        self._slots_per_bucket = slots_per_bucket
        self._max_kicks = max_kicks
        self._stash_limit = stash_limit
        # Width is irrelevant here — only the raw lanes are used — but the
        # family still version-tags the derivation, which the Bloom blob pins.
        self.family = HashFamily(depth=4, width=1 << 32, family_seed=family_seed)
        self.generation = 0
        self.resizes = 0
        self._by_id: Dict[int, MembershipRule] = {}
        self._rebuild_listeners: List[Callable[[int], None]] = []
        self._build_structures(initial_capacity)

    # -- hashing -------------------------------------------------------------

    def _lanes(self, src_int: int) -> Sequence[int]:
        return self.family.lanes(src_int.to_bytes(4, "big"))

    # -- structure lifecycle -------------------------------------------------

    def _build_structures(self, capacity: int) -> None:
        capacity = max(capacity, 64)
        self.bloom = BloomFilter(
            _next_power_of_two(capacity * self.BLOOM_BITS_PER_ENTRY),
            num_lanes=_BLOOM_LANES,
        )
        num_buckets = _next_power_of_two(
            max(16, int(capacity / (self._slots_per_bucket * 0.8)))
        )
        self.cuckoo = CuckooHashTable(
            num_buckets,
            lane_fn=self._lanes,
            slots_per_bucket=self._slots_per_bucket,
            max_kicks=self._max_kicks,
            stash_limit=self._stash_limit,
        )

    def add_rebuild_listener(self, listener: Callable[[int], None]) -> None:
        """``listener(generation)`` fires after every rebuild/resize.

        The filter's per-flow decision memo subscribes: a rebuild re-homes
        every entry, so any cached verdict derived from the old structures
        must be invalidated even though the *rule set* did not change.
        """
        self._rebuild_listeners.append(listener)

    def _rebuild(self, capacity: int) -> None:
        survivors = self._group_by_src()
        self._build_structures(capacity)
        while True:
            placed_all = True
            for src_int, rules in survivors.items():
                lanes = self._lanes(src_int)
                self.bloom.add(lanes)  # idempotent: safe across restarts
                if not self.cuckoo.insert(src_int, rules, lanes):
                    placed_all = False
                    break
            if placed_all:
                break
            # Placement overflowed even the stash — extremely unlikely at a
            # freshly sized table, but handled by doubling and restarting
            # rather than looping kicks (the eviction-loop safety story).
            self.cuckoo = CuckooHashTable(
                self.cuckoo.num_buckets * 2,
                lane_fn=self._lanes,
                slots_per_bucket=self._slots_per_bucket,
                max_kicks=self._max_kicks,
                stash_limit=self._stash_limit,
            )
        self.generation += 1
        self.resizes += 1
        _RESIZES.inc()
        self._update_gauges()
        for listener in self._rebuild_listeners:
            listener(self.generation)

    def _group_by_src(self) -> Dict[int, List[MembershipRule]]:
        grouped: Dict[int, List[MembershipRule]] = {}
        for rule in sorted(self._by_id.values(), key=lambda r: r.rule_id):
            grouped.setdefault(rule.src_int, []).append(rule)
        return grouped

    def _update_gauges(self) -> None:
        _ENTRIES.set(len(self._by_id))
        _LOAD_FACTOR.set(self.cuckoo.load_factor)

    def maybe_resize(self) -> bool:
        """Apply the adaptive-resizing policy; True when a rebuild ran.

        Triggers (ROADMAP item 2 / StreamBF-CH): estimated Bloom FPR above
        ``fpr_threshold`` (growth past the sized capacity, or ghost bits
        after heavy removal) or cuckoo load factor above ``load_threshold``.
        The rebuild sizes both structures for the *live* entry count.
        """
        if (
            self.bloom.fpr_estimate() > self.fpr_threshold
            or self.cuckoo.load_factor > self.load_threshold
        ):
            self._rebuild(max(len(self._by_id) * 2, 64))
            return True
        return False

    # -- rule management -----------------------------------------------------

    def insert(self, rule: MembershipRule) -> None:
        if rule.rule_id in self._by_id:
            raise LookupError_(f"rule {rule.rule_id} already installed")
        lanes = self._lanes(rule.src_int)
        existing = self.cuckoo.get(rule.src_int, lanes)
        if existing is not None:
            # Same source blocked by several victims: keep one slot, a
            # rule list sorted by id (lowest id wins ties, like the trie).
            rules: List[MembershipRule] = existing  # type: ignore[assignment]
            rules.append(rule)
            rules.sort(key=lambda r: r.rule_id)
        else:
            while not self.cuckoo.insert(rule.src_int, [rule], lanes):
                self._rebuild(max(len(self._by_id) * 2, 64))
            self.bloom.add(lanes)
        self._by_id[rule.rule_id] = rule
        self.maybe_resize()
        self._update_gauges()

    def remove(self, rule_id: int) -> MembershipRule:
        rule = self._by_id.get(rule_id)
        if rule is None:
            raise LookupError_(f"rule {rule_id} is not installed")
        lanes = self._lanes(rule.src_int)
        entry = self.cuckoo.get(rule.src_int, lanes)
        assert entry is not None, "tier index and cuckoo table diverged"
        rules: List[MembershipRule] = entry  # type: ignore[assignment]
        rules[:] = [r for r in rules if r.rule_id != rule_id]
        if not rules:
            self.cuckoo.remove(rule.src_int, lanes)
        # The Bloom bit stays set (ghost): clearing shared bits would create
        # false negatives.  Ghost pressure shows up in fpr_estimate() and is
        # reclaimed by the next maintenance rebuild.
        del self._by_id[rule_id]
        self._update_gauges()
        return rule

    def bulk_load(self, rules: Iterable[MembershipRule]) -> int:
        """Replace the whole tier with ``rules`` in one sized build.

        This is the hot blocklist-swap path: structures are provisioned for
        the final count up front, so a 10-million-entry load performs zero
        adaptive rebuilds on the way in.  Counts as one resize; fires the
        rebuild listeners exactly once.
        """
        incoming: Dict[int, MembershipRule] = {}
        for rule in rules:
            if rule.rule_id in incoming:
                raise LookupError_(f"rule {rule.rule_id} already installed")
            incoming[rule.rule_id] = rule
        self._by_id = incoming
        self._rebuild(max(len(incoming) * 2, 64))
        return len(incoming)

    # -- the query path ------------------------------------------------------

    def query(self, src_int: int) -> Optional[MembershipRule]:
        """The blocking rule for ``src_int`` (lowest id), or None.

        One digest; the Bloom filter turns the common benign-source case
        into k bit probes, and the cuckoo confirm makes the tier's effective
        false-positive rate exactly zero.
        """
        _QUERIES.inc()
        lanes = self._lanes(src_int)
        if not self.bloom.might_contain(lanes):
            _BLOOM_NEGATIVES.inc()
            return None
        entry = self.cuckoo.get(src_int, lanes)
        if entry is None:
            _FALSE_POSITIVE_CONFIRMS.inc()
            return None
        _CONFIRMS.inc()
        return entry[0]  # type: ignore[index]

    def might_contain(self, src_int: int) -> bool:
        """The Bloom tier's answer alone (no exact confirm) — test hook for
        the never-false-negative property."""
        return self.bloom.might_contain(self._lanes(src_int))

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._by_id

    def get_rule(self, rule_id: int) -> Optional[MembershipRule]:
        return self._by_id.get(rule_id)

    def rules(self) -> List[MembershipRule]:
        return sorted(self._by_id.values(), key=lambda r: r.rule_id)

    def stats(self) -> MembershipStats:
        return MembershipStats(
            entries=len(self._by_id),
            bloom_bits=self.bloom.num_bits,
            bloom_ones=self.bloom.ones,
            bloom_lanes=self.bloom.num_lanes,
            num_buckets=self.cuckoo.num_buckets,
            slots_per_bucket=self.cuckoo.slots_per_bucket,
            stash_entries=self.cuckoo.stash_entries,
            load_factor=self.cuckoo.load_factor,
            fpr_estimate=self.bloom.fpr_estimate(),
            generation=self.generation,
            resizes=self.resizes,
        )

    def serialize_bloom(self) -> bytes:
        """The Bloom pre-filter as a version-pinned blob (checkpointing)."""
        return self.bloom.serialize(self.family)

    def load_bloom(self, blob: bytes) -> None:
        """Restore a serialized Bloom array; fails loudly on version skew."""
        self.bloom = BloomFilter.deserialize(blob, self.family)


class TieredRuleStore:
    """The trie plus the membership tier behind one rule-store interface.

    Rules route by shape: :meth:`routes_to_membership` sends exact-``/32``
    IPv4 source DROP rules to the membership tier, everything else to the
    :class:`MultiBitTrie`.  Lookups consult both and resolve overlaps with
    the exact most-specific-match tiebreak the trie and
    :class:`~repro.core.rules.RuleSet` already implement, so the composed
    store is verdict-identical to a trie holding every rule — just without
    the root-node linear scan that makes million-entry blocklists
    infeasible there.
    """

    def __init__(
        self,
        stride_bits: int = 8,
        membership: Optional[MembershipTier] = None,
        membership_enabled: bool = True,
    ) -> None:
        self.trie = MultiBitTrie(stride_bits=stride_bits)
        # Note: an empty tier is falsy (it has __len__), so test identity.
        self.membership: Optional[MembershipTier] = (
            (membership if membership is not None else MembershipTier())
            if membership_enabled
            else None
        )
        self._trie_by_id: Dict[int, object] = {}
        # Multiset of trie-rule specificities: the membership fast path may
        # skip the trie walk only while no trie rule could out-rank a
        # membership hit (specificity 32).
        self._spec_counts: Dict[int, int] = {}
        self._max_trie_spec = -1

    # -- routing -------------------------------------------------------------

    @staticmethod
    def routes_to_membership(rule) -> bool:
        """True for the blocklist shape: deterministic DROP of one IPv4
        source host, all other fields wildcarded."""
        pattern = rule.pattern
        return (
            rule.deterministic
            and rule.p_drop == 1.0
            and pattern.src_version == 4
            and pattern.src_prefix_len == 32
            and pattern.dst_version == 4
            and pattern.dst_prefix_len == 0
            and pattern.src_ports is None
            and pattern.dst_ports is None
            and pattern.protocol is None
        )

    # -- rule management -----------------------------------------------------

    def insert(self, rule) -> None:
        if rule.rule_id in self._trie_by_id or (
            self.membership is not None and rule.rule_id in self.membership
        ):
            raise LookupError_(f"rule {rule.rule_id} already installed")
        if self.membership is not None:
            if isinstance(rule, MembershipRule):
                self.membership.insert(rule)
                return
            if self.routes_to_membership(rule):
                self.membership.insert(MembershipRule.from_rule(rule))
                return
        self.trie.insert(rule)
        self._trie_by_id[rule.rule_id] = rule
        spec = rule.pattern.specificity
        self._spec_counts[spec] = self._spec_counts.get(spec, 0) + 1
        if spec > self._max_trie_spec:
            self._max_trie_spec = spec

    def insert_batch(self, rules) -> int:
        """Insert many rules; a failure leaves the applied prefix installed
        (matching :meth:`MultiBitTrie.insert_batch` semantics)."""
        count = 0
        for rule in rules:
            self.insert(rule)
            count += 1
        return count

    def remove(self, rule_or_id) -> None:
        rule_id = (
            rule_or_id if isinstance(rule_or_id, int) else rule_or_id.rule_id
        )
        if self.membership is not None and rule_id in self.membership:
            self.membership.remove(rule_id)
            return
        rule = self._trie_by_id.get(rule_id)
        if rule is None:
            raise LookupError_(f"rule {rule_id} is not installed")
        self.trie.remove(rule)
        del self._trie_by_id[rule_id]
        spec = rule.pattern.specificity
        remaining = self._spec_counts[spec] - 1
        if remaining:
            self._spec_counts[spec] = remaining
        else:
            del self._spec_counts[spec]
            if spec == self._max_trie_spec:
                self._max_trie_spec = max(self._spec_counts, default=-1)

    def maintenance(self) -> bool:
        """Periodic adaptive-resize check (the filter's update tick calls
        this so ghost-bit pressure from removals is eventually reclaimed)."""
        if self.membership is None:
            return False
        return self.membership.maybe_resize()

    # -- lookup --------------------------------------------------------------

    def lookup(self, flow):
        """Most-specific installed rule matching ``flow``, or None —
        byte-identical to a trie holding every rule.

        The membership tier only understands IPv4 sources and its patterns
        carry an IPv4 wildcard destination, which (like any
        :meth:`FlowPattern.matches`) does not match IPv6 destinations — so
        the tier is consulted only for v4→v4 flows.  A membership hit may
        skip the trie walk entirely unless some trie rule's specificity
        could reach the membership tier's 32; then both are resolved with
        the standard (specificity, lowest-id) tiebreak.
        """
        membership = self.membership
        member = None
        if (
            membership is not None
            and membership._by_id
            and flow.src_ip_version == 4
            and flow.dst_ip_version == 4
        ):
            member = membership.query(flow.src_ip_int)
            if member is not None and self._max_trie_spec < 32:
                return member
        best = self.trie.lookup(flow)
        if member is None:
            return best
        if best is None:
            return member
        best_spec = best.pattern.specificity
        if 32 > best_spec or (32 == best_spec and member.rule_id < best.rule_id):
            return member
        return best

    # -- blocklist bulk paths ------------------------------------------------

    def load_blocklist(
        self,
        entries: Iterable[Union[Tuple[int, int], Sequence[int]]],
        requested_by: str = "",
    ) -> int:
        """Install ``(rule_id, src_int)`` blocklist entries incrementally."""
        if self.membership is None:
            raise LookupError_("membership tier disabled on this store")
        count = 0
        for rule_id, src_int in entries:
            if rule_id in self._trie_by_id:
                raise LookupError_(f"rule {rule_id} already installed")
            self.membership.insert(
                MembershipRule(rule_id, src_int, requested_by=requested_by)
            )
            count += 1
        return count

    def reload_blocklist(
        self,
        entries: Iterable[Union[Tuple[int, int], Sequence[int]]],
        requested_by: str = "",
    ) -> int:
        """Replace the whole membership tier with ``entries`` (one sized
        build, one rebuild notification).  Trie rules are untouched."""
        if self.membership is None:
            raise LookupError_("membership tier disabled on this store")
        rules = []
        for rule_id, src_int in entries:
            if rule_id in self._trie_by_id:
                raise LookupError_(f"rule {rule_id} already installed")
            rules.append(MembershipRule(rule_id, src_int, requested_by=requested_by))
        return self.membership.bulk_load(rules)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.trie) + (
            len(self.membership) if self.membership is not None else 0
        )

    def __contains__(self, rule_id: int) -> bool:
        if rule_id in self._trie_by_id:
            return True
        return self.membership is not None and rule_id in self.membership

    def find_rule(self, rule_id: int):
        """The installed rule by id (materialized for membership entries)."""
        rule = self._trie_by_id.get(rule_id)
        if rule is not None:
            return rule
        if self.membership is not None:
            member = self.membership.get_rule(rule_id)
            if member is not None:
                return member.materialize()
        return None

    def rules(self) -> List[object]:
        """Every installed rule as a full FilterRule, sorted by id."""
        out = list(self._trie_by_id.values())
        if self.membership is not None:
            out.extend(rule.materialize() for rule in self.membership.rules())
        return sorted(out, key=lambda r: r.rule_id)

    def trie_stats(self) -> TrieStats:
        return self.trie.stats()

    def membership_stats(self) -> Optional[MembershipStats]:
        return None if self.membership is None else self.membership.stats()
