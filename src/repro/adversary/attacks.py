"""Attack-traffic builders for the two evaluated attack classes (paper VI-C).

* **DNS amplification** (Rossow, "Amplification Hell"): reflected UDP
  traffic *from* vulnerable open resolvers — source port 53, large
  responses (the amplification payload), many distinct resolver source IPs.
* **Mirai-style flood**: high-rate TCP traffic from a large bot population
  — small packets, per-bot ephemeral ports, aimed at the victim's service
  port.

Both builders return :class:`~repro.dataplane.pktgen.FlowSpec_` lists with
``ingress_as`` annotations so neighbor-AS audits and the discrimination
scenarios can group traffic by upstream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dataplane.packet import FiveTuple, Protocol
from repro.dataplane.pktgen import FlowSpec_
from repro.util.rng import deterministic_rng


def _spread_ip(rng, base_octet: int) -> str:
    """A pseudo-random public-looking address under ``base_octet``."""
    return (
        f"{base_octet}.{rng.randrange(1, 255)}."
        f"{rng.randrange(1, 255)}.{rng.randrange(1, 255)}"
    )


def dns_amplification_flows(
    num_resolvers: int,
    victim_ip: str = "203.0.113.10",
    ingress_ases: Sequence[int] = (),
    packet_size: int = 1024,
    seed: int = 0,
) -> List[FlowSpec_]:
    """Reflected DNS responses from ``num_resolvers`` open resolvers.

    Each resolver sends UDP from port 53 to an ephemeral victim port;
    ``packet_size`` defaults to a large amplified response.
    """
    if num_resolvers <= 0:
        raise ValueError("num_resolvers must be positive")
    rng = deterministic_rng(f"dns-amp:{seed}")
    flows: List[FlowSpec_] = []
    seen = set()
    while len(flows) < num_resolvers:
        src_ip = _spread_ip(rng, rng.choice([37, 41, 62, 93, 103, 177, 196]))
        if src_ip in seen:
            continue
        seen.add(src_ip)
        ingress: Optional[int] = (
            ingress_ases[len(flows) % len(ingress_ases)] if ingress_ases else None
        )
        flows.append(
            FlowSpec_(
                five_tuple=FiveTuple(
                    src_ip=src_ip,
                    dst_ip=victim_ip,
                    src_port=53,
                    dst_port=rng.randrange(1024, 65535),
                    protocol=Protocol.UDP,
                ),
                packet_size=packet_size,
                ingress_as=ingress,
            )
        )
    return flows


def mirai_flood_flows(
    num_bots: int,
    victim_ip: str = "203.0.113.10",
    victim_port: int = 80,
    ingress_ases: Sequence[int] = (),
    packet_size: int = 64,
    seed: int = 0,
) -> List[FlowSpec_]:
    """A Mirai-style TCP flood from ``num_bots`` compromised devices."""
    if num_bots <= 0:
        raise ValueError("num_bots must be positive")
    rng = deterministic_rng(f"mirai:{seed}")
    flows: List[FlowSpec_] = []
    seen = set()
    while len(flows) < num_bots:
        # Mirai concentrated in consumer/IoT eyeball space.
        src_ip = _spread_ip(rng, rng.choice([24, 58, 78, 110, 186, 200]))
        src_port = rng.randrange(1024, 65535)
        if (src_ip, src_port) in seen:
            continue
        seen.add((src_ip, src_port))
        ingress: Optional[int] = (
            ingress_ases[len(flows) % len(ingress_ases)] if ingress_ases else None
        )
        flows.append(
            FlowSpec_(
                five_tuple=FiveTuple(
                    src_ip=src_ip,
                    dst_ip=victim_ip,
                    src_port=src_port,
                    dst_port=victim_port,
                    protocol=Protocol.TCP,
                ),
                packet_size=packet_size,
                ingress_as=ingress,
            )
        )
    return flows
