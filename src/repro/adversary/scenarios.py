"""End-to-end attack/defense scenarios.

These harnesses wire together victim, filtering network, traffic and audits
so that tests and examples can make the paper's security claims concrete:

* :func:`run_bypass_scenario` — a malicious VIF network mounts a chosen
  bypass attack; the function returns what the victim's and neighbors'
  audits concluded.  The claim: every bypass configuration is detected by
  the party the paper says detects it, and an honest run stays clean.
* :func:`run_discrimination_scenario` — Goal 1 against an *unverified*
  (SENSS-like) network vs against VIF.  The claim: without verifiability
  the per-AS drop rates silently diverge from the requested rule; with VIF
  the only way to discriminate is drop-before-filtering, which the
  discriminated neighbor detects.
* :func:`run_inaccurate_filtering_scenario` — Goal 2: the network filters
  only part of the traffic to save capacity.  With VIF the victim's
  outgoing-log audit exposes the unfiltered excess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.adversary.filtering_network import (
    BypassConfig,
    HonestFilteringNetwork,
    MaliciousFilteringNetwork,
    RuleTampering,
    UnverifiedFilteringNetwork,
)
from repro.core.bypass import BypassEvidence
from repro.core.controller import IXPController
from repro.core.rules import FilterRule, RPKIRegistry, RuleSet
from repro.core.session import VIFSession
from repro.dataplane.packet import Packet
from repro.dataplane.pktgen import FlowSpec_
from repro.tee.attestation import IASService


def _build_session(
    rules: Sequence[FilterRule],
    victim_name: str,
    victim_prefix: str,
    num_filters: int = 1,
    sketch_seed: str = "vif",
):
    """Stand up IAS + RPKI + controller + attested session with rules installed."""
    ias = IASService()
    rpki = RPKIRegistry()
    rpki.authorize(victim_name, victim_prefix)
    controller = IXPController(ias, sketch_seed=sketch_seed)
    controller.launch_filters(num_filters, scale_out=num_filters > 1)
    session = VIFSession(victim_name, rpki, ias, controller)
    session.attest_filters()
    session.submit_rules(list(rules))
    return session, controller


@dataclass
class BypassScenarioResult:
    """Outcome of one bypass scenario run."""

    victim_evidence: BypassEvidence
    neighbor_evidence: Dict[int, BypassEvidence] = field(default_factory=dict)
    delivered_packets: int = 0
    sent_packets: int = 0

    @property
    def detected(self) -> bool:
        if not self.victim_evidence.clean:
            return True
        return any(not e.clean for e in self.neighbor_evidence.values())


def run_bypass_scenario(
    rules: Sequence[FilterRule],
    flows: Sequence[FlowSpec_],
    packets_per_flow: int = 1,
    bypass: Optional[BypassConfig] = None,
    victim_name: str = "victim.example",
    victim_prefix: str = "203.0.113.0/24",
) -> BypassScenarioResult:
    """Run traffic through a (possibly malicious) VIF network and audit.

    ``bypass=None`` runs the honest baseline.  Neighbor auditors are created
    for every distinct ``ingress_as`` in the flows.
    """
    session, controller = _build_session(rules, victim_name, victim_prefix)
    network = (
        HonestFilteringNetwork(controller)
        if bypass is None
        else MaliciousFilteringNetwork(controller, bypass)
    )

    # Each neighbor AS runs its own attested verification session — its
    # incoming-log fetches travel over its own authenticated channel.
    from repro.core.neighbor import NeighborSession

    neighbor_ases = sorted(
        {f.ingress_as for f in flows if f.ingress_as is not None}
    )
    neighbors: Dict[int, NeighborSession] = {}
    for asn in neighbor_ases:
        neighbor = NeighborSession(asn, controller, controller.ias)
        neighbor.attest_filters()
        neighbors[asn] = neighbor

    packets: List[Packet] = []
    for flow in flows:
        for _ in range(packets_per_flow):
            packet = flow.make_packet()
            packets.append(packet)
            if packet.ingress_as in neighbors:
                neighbors[packet.ingress_as].observe_handoff(packet)

    delivered = network.carry(packets)
    session.observe_delivered(delivered)

    victim_evidence = session.audit_round(abort_on_evidence=True)
    neighbor_evidence = {
        asn: neighbor.audit_round() for asn, neighbor in neighbors.items()
    }

    return BypassScenarioResult(
        victim_evidence=victim_evidence,
        neighbor_evidence=neighbor_evidence,
        delivered_packets=len(delivered),
        sent_packets=len(packets),
    )


@dataclass
class DiscriminationResult:
    """Per-AS delivery rates under a (possibly tampered) probabilistic rule."""

    requested_p_allow: float
    per_as_delivery_rate: Dict[int, float] = field(default_factory=dict)

    def max_divergence(self) -> float:
        """Largest |delivered-rate − requested| across neighbor ASes."""
        if not self.per_as_delivery_rate:
            return 0.0
        return max(
            abs(rate - self.requested_p_allow)
            for rate in self.per_as_delivery_rate.values()
        )


def run_discrimination_scenario(
    rule: FilterRule,
    flows: Sequence[FlowSpec_],
    tampering: Optional[RuleTampering] = None,
    packets_per_flow: int = 1,
) -> DiscriminationResult:
    """Goal 1 against the *unverified* baseline network.

    Returns per-ingress-AS delivery rates; with tampering the rates diverge
    from the requested probability and nothing in the data path reveals it.
    """
    rules = RuleSet([rule])
    network = UnverifiedFilteringNetwork(rules, tampering)

    sent: Dict[int, int] = {}
    got: Dict[int, int] = {}
    packets: List[Packet] = []
    for flow in flows:
        for _ in range(packets_per_flow):
            packet = flow.make_packet()
            packets.append(packet)
            if packet.ingress_as is not None:
                sent[packet.ingress_as] = sent.get(packet.ingress_as, 0) + 1
    for packet in network.carry(packets):
        if packet.ingress_as is not None:
            got[packet.ingress_as] = got.get(packet.ingress_as, 0) + 1

    requested = rule.p_allow if rule.p_allow is not None else (1.0 - rule.p_drop)
    return DiscriminationResult(
        requested_p_allow=requested,
        per_as_delivery_rate={
            asn: got.get(asn, 0) / count for asn, count in sent.items()
        },
    )


def run_inaccurate_filtering_scenario(
    rules: Sequence[FilterRule],
    flows: Sequence[FlowSpec_],
    skip_filter_fraction: float,
    packets_per_flow: int = 1,
) -> BypassScenarioResult:
    """Goal 2 against VIF: steer a fraction of traffic around the filters.

    The skipped traffic reaches the victim without appearing in the
    enclave's outgoing log, so the victim-side audit flags injection.
    """
    return run_bypass_scenario(
        rules,
        flows,
        packets_per_flow=packets_per_flow,
        bypass=BypassConfig(skip_filter_fraction=skip_filter_fraction),
    )
