"""Honest, malicious, and unverified filtering-network models.

All deterministic: "random" drop/injection choices hash the packet's flow
and id under a seed, so scenarios replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.controller import IXPController
from repro.core.rules import FilterRule, RuleSet
from repro.dataplane.packet import Packet
from repro.util.rng import stable_hash64

_HASH_SPACE = float(2**64)


def _coin(key: bytes, salt: str, probability: float) -> bool:
    """Deterministic biased coin: True with ``probability``."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return stable_hash64(key, salt) < probability * _HASH_SPACE


class HonestFilteringNetwork:
    """Runs the VIF deployment exactly as configured."""

    def __init__(self, controller: IXPController) -> None:
        self.controller = controller

    def carry(self, packets: Iterable[Packet]) -> List[Packet]:
        """Deliver packets through the deployment toward the victim."""
        return self.controller.carry(packets)


@dataclass
class BypassConfig:
    """Which bypass attacks a malicious VIF network mounts (paper III-B).

    * ``drop_before_filtering`` — per-ingress-AS probability of discarding a
      packet before it reaches any enclave (Goal 1 flavored: discriminate a
      neighbor while blaming DDoS filtering).
    * ``drop_after_filtering`` — probability of discarding a packet the
      filter allowed.
    * ``inject_after_filtering`` — probability of re-injecting a copy of a
      packet the filter dropped.
    * ``skip_filter_fraction`` — Goal 2: fraction of traffic steered around
      the filters entirely (forwarded unfiltered to save enclave capacity).
    """

    drop_before_filtering: Dict[int, float] = field(default_factory=dict)
    drop_after_filtering: float = 0.0
    inject_after_filtering: float = 0.0
    skip_filter_fraction: float = 0.0
    seed: str = "adversary"


class MaliciousFilteringNetwork(HonestFilteringNetwork):
    """A VIF filtering network mounting bypass attacks.

    It cannot touch enclave internals (isolation) or the sealed rule/log
    records (channel integrity); everything it *can* do is packet steering
    outside the enclaves — exactly what the sketch audits are built to
    catch.
    """

    def __init__(self, controller: IXPController, config: BypassConfig) -> None:
        super().__init__(controller)
        self.config = config
        self.packets_dropped_before = 0
        self.packets_dropped_after = 0
        self.packets_injected = 0
        self.packets_skipped_filter = 0

    def carry(self, packets: Iterable[Packet]) -> List[Packet]:
        config = self.config
        delivered: List[Packet] = []
        for packet in packets:
            key = packet.five_tuple.key() + b"#" + str(packet.packet_id).encode()

            # Drop before filtering (neighbor-AS discrimination).
            if packet.ingress_as is not None:
                p_drop = config.drop_before_filtering.get(packet.ingress_as, 0.0)
                if _coin(key, f"{config.seed}/before", p_drop):
                    self.packets_dropped_before += 1
                    continue

            # Goal 2: steer around the filter to save enclave capacity.
            if _coin(key, f"{config.seed}/skip", config.skip_filter_fraction):
                self.packets_skipped_filter += 1
                delivered.append(packet)
                continue

            enclave_index = self.controller.load_balancer.route(packet)
            if enclave_index is None:
                delivered.append(packet)
                continue
            allowed = self.controller.enclaves[enclave_index].ecall(
                "process_packet", packet
            )
            if allowed:
                # Drop after filtering.
                if _coin(key, f"{config.seed}/after", config.drop_after_filtering):
                    self.packets_dropped_after += 1
                    continue
                delivered.append(packet)
            else:
                # Injection after filtering: resurrect the dropped packet.
                if _coin(key, f"{config.seed}/inject", config.inject_after_filtering):
                    self.packets_injected += 1
                    delivered.append(packet.clone())
        return delivered


@dataclass
class RuleTampering:
    """How an *unverified* network modifies victim rules (Goal 1 / Goal 2).

    ``per_as_p_allow[as_number]`` overrides a non-deterministic rule's
    allow-probability for traffic entering via that AS (Goal 1: e.g. drop
    80 % from AS A but only 20 % from AS B while the victim asked for 50 %).
    ``global_p_allow`` overrides it for everyone (Goal 2: execute the rule
    inaccurately to save resources).
    """

    per_as_p_allow: Dict[int, float] = field(default_factory=dict)
    global_p_allow: Optional[float] = None
    seed: str = "unverified"


class UnverifiedFilteringNetwork:
    """A SENSS-like filtering service with **no verifiability** (paper VIII-A).

    There is no enclave and no authenticated log: the network applies
    whatever rules it likes.  Used as the baseline that shows why
    rule-violation attacks are undetectable without VIF — the victim sees
    *some* traffic reduction and has no way to tell 50 % from 80 %/20 %.
    """

    def __init__(
        self,
        rules: RuleSet,
        tampering: Optional[RuleTampering] = None,
    ) -> None:
        self.rules = rules
        self.tampering = tampering or RuleTampering()

    def carry(self, packets: Iterable[Packet]) -> List[Packet]:
        delivered: List[Packet] = []
        for packet in packets:
            rule = self.rules.match(packet.five_tuple)
            if rule is None:
                delivered.append(packet)
                continue
            p_allow = self._effective_p_allow(rule, packet)
            if _coin(
                packet.five_tuple.key(),
                f"{self.tampering.seed}/{rule.rule_id}",
                p_allow,
            ):
                delivered.append(packet)
        return delivered

    def _effective_p_allow(self, rule: FilterRule, packet: Packet) -> float:
        requested = 0.0 if rule.p_drop >= 1.0 else 1.0 - rule.p_drop
        if (
            packet.ingress_as is not None
            and packet.ingress_as in self.tampering.per_as_p_allow
        ):
            return self.tampering.per_as_p_allow[packet.ingress_as]
        if self.tampering.global_p_allow is not None:
            return self.tampering.global_p_allow
        return requested
