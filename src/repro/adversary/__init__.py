"""Adversary models (paper II-A, III-B).

The threat model is a single malicious *filtering network* with full control
of its own control and data plane.  This package provides:

* :class:`HonestFilteringNetwork` — the baseline that simply runs the
  deployment as configured;
* :class:`MaliciousFilteringNetwork` — mounts the three bypass attacks
  (inject-after, drop-after, drop-before) and the Goal-2 "save filtering
  capacity" attack (steering traffic around the filters) against a real VIF
  deployment, so tests can show each one is *detected*;
* :class:`UnverifiedFilteringNetwork` — a SENSS-like strawman without TEEs
  that executes *modified* rules directly (Goal 1 discrimination, Goal 2
  inaccurate filtering), so tests/examples can show the attacks succeed
  silently when filtering is not verifiable;
* attack-traffic builders for the two evaluated attack classes (DNS
  amplification, Mirai-style floods) and scenario harnesses tying traffic,
  network and audits together.
"""

from repro.adversary.filtering_network import (
    BypassConfig,
    HonestFilteringNetwork,
    MaliciousFilteringNetwork,
    RuleTampering,
    UnverifiedFilteringNetwork,
)
from repro.adversary.attacks import (
    dns_amplification_flows,
    mirai_flood_flows,
)
from repro.adversary.scenarios import (
    BypassScenarioResult,
    DiscriminationResult,
    run_bypass_scenario,
    run_discrimination_scenario,
    run_inaccurate_filtering_scenario,
)

__all__ = [
    "BypassConfig",
    "BypassScenarioResult",
    "DiscriminationResult",
    "HonestFilteringNetwork",
    "MaliciousFilteringNetwork",
    "RuleTampering",
    "UnverifiedFilteringNetwork",
    "dns_amplification_flows",
    "mirai_flood_flows",
    "run_bypass_scenario",
    "run_discrimination_scenario",
    "run_inaccurate_filtering_scenario",
]
