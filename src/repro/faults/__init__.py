"""Deterministic fault injection for the filtering-enclave fleet.

The paper's threat model (section III) lets the *untrusted IXP* crash an
enclave, starve its platform, or sit between the victim and the IAS; the
defense is that every such failure is fail-closed and recoverable.  This
package turns that claim into something testable:

* :mod:`repro.faults.schedule` — seeded, replayable schedules of fault
  events (crash, platform loss, EPC exhaustion, IAS outage) interleaved
  with traffic rounds;
* :mod:`repro.faults.injector` — applies events to a live
  :class:`~repro.core.fleet.FleetManager`, including :class:`FlakyIAS`, an
  attestation service that fails the next *k* verifications;
* :mod:`repro.faults.harness` — drives fleet rounds under a schedule while
  *independently* checking the fail-closed invariant (no packet matching a
  filter rule is ever delivered without an enclave verdict, even
  mid-failover).

Everything is deterministic given the schedule seed, so a failing run is a
reproducer, not an anecdote.
"""

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.faults.injector import FaultInjector, FlakyIAS
from repro.faults.harness import (
    FaultInjectionHarness,
    HarnessResult,
    RoundRecord,
)

__all__ = [
    "FaultEvent",
    "FaultInjectionHarness",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FlakyIAS",
    "HarnessResult",
    "RoundRecord",
]
