"""The deterministic fault-injection harness.

Interleaves scheduled faults with traffic rounds against a
:class:`~repro.core.fleet.FleetManager` and *independently* audits the
fail-closed invariant each round: a delivered packet that matches any rule
in the harness's own reference copy of the rule set must carry an enclave
verdict.  The harness never trusts the fleet's ``unfiltered_packets``
counter for this — it re-derives the check from the packets themselves, so
a fleet-manager accounting bug cannot hide a breach.

Everything downstream of the seed is deterministic (schedules, traffic,
backoff jitter), so ``HarnessResult`` values are reproducible artifacts.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.core.fleet import (
    CarryResult,
    EnclaveHealth,
    FleetManager,
    RecoveryReport,
)
from repro.core.rules import RuleSet
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import RecoveryFailed
from repro.faults.injector import FaultInjector, FlakyIAS
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.optim.validation import validate_allocation
from repro.util.rng import deterministic_rng

TrafficSource = Callable[[int], Sequence[Packet]]


def rule_traffic(
    rules: RuleSet,
    seed: str = "vif-traffic",
    packets_per_rule: int = 4,
    background_packets: int = 4,
    background_dst: str = "198.18.0.0/15",
) -> TrafficSource:
    """A deterministic per-round traffic source exercising every rule.

    Each round carries ``packets_per_rule`` packets into every rule's
    destination prefix (varying source addresses, so split rules exercise
    several replicas) plus ``background_packets`` packets to unrelated
    destinations (``background_dst`` defaults to the RFC 2544 benchmark
    range) that must ride the default path.
    """
    rule_list = rules.rules()

    def first_host(prefix: str, offset: int) -> str:
        net = ipaddress.ip_network(prefix, strict=False)
        return str(net.network_address + (offset % max(net.num_addresses, 1)))

    def traffic(round_index: int) -> List[Packet]:
        rng = deterministic_rng(f"{seed}/round-{round_index}")
        packets: List[Packet] = []
        for rule in rule_list:
            for k in range(packets_per_rule):
                flow = FiveTuple(
                    src_ip=f"198.51.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                    dst_ip=first_host(rule.pattern.dst_prefix, k + 1),
                    src_port=rng.randrange(1024, 65535),
                    dst_port=(
                        rule.pattern.dst_ports[0]
                        if rule.pattern.dst_ports
                        else 80
                    ),
                    protocol=rule.pattern.protocol or Protocol.TCP,
                )
                packets.append(Packet(five_tuple=flow))
        for k in range(background_packets):
            flow = FiveTuple(
                src_ip=f"198.51.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                dst_ip=first_host(background_dst, rng.randrange(1, 1 << 16)),
                src_port=rng.randrange(1024, 65535),
                dst_port=443,
                protocol=Protocol.TCP,
            )
            packets.append(Packet(five_tuple=flow))
        rng.shuffle(packets)
        return packets

    return traffic


@dataclass
class RoundRecord:
    """Everything that happened in one harness round."""

    round_index: int
    events: List[FaultEvent]
    health: List[EnclaveHealth]
    recovery: RecoveryReport
    carry: CarryResult
    recovery_failed: bool = False
    #: Independently re-derived: delivered packets matching a reference rule
    #: without an enclave verdict.  Must be 0, always.
    invariant_violations: int = 0


@dataclass
class HarnessResult:
    """The full run: per-round records plus fleet-level aggregates."""

    records: List[RoundRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    #: validate_allocation() violations on the final allocation ([] == valid).
    final_allocation_violations: List[str] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.records)

    @property
    def invariant_violations(self) -> int:
        return sum(r.invariant_violations for r in self.records)

    @property
    def recovery_failures(self) -> int:
        return sum(1 for r in self.records if r.recovery_failed)

    @property
    def packets_sent(self) -> int:
        return sum(r.carry.sent for r in self.records)

    @property
    def packets_delivered(self) -> int:
        return sum(len(r.carry.delivered) for r in self.records)

    @property
    def packets_lost_to_failover(self) -> int:
        """Rule traffic dropped because its enclave was dead or shed."""
        return sum(
            r.carry.dropped_failclosed + r.carry.dropped_shed
            for r in self.records
        )

    def summary(self) -> Dict[str, float]:
        return {
            "rounds": self.rounds,
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "packets_lost_to_failover": self.packets_lost_to_failover,
            "invariant_violations": self.invariant_violations,
            "recovery_failures": self.recovery_failures,
            "allocation_valid": not self.final_allocation_violations,
            **{f"fleet_{k}": v for k, v in self.counters.items()},
        }


class FaultInjectionHarness:
    """Drives a fleet through a fault schedule with independent auditing."""

    def __init__(
        self,
        fleet: FleetManager,
        schedule: FaultSchedule,
        traffic: Optional[TrafficSource] = None,
        ias: Optional[FlakyIAS] = None,
    ) -> None:
        self.fleet = fleet
        self.schedule = schedule
        self.injector = FaultInjector(fleet, ias=ias)
        # Reference copy of the rules, snapshotted *now*: the invariant is
        # judged against what the victim asked for, not against whatever
        # rule set the fleet ends up with after shedding.
        self._reference = RuleSet(fleet._rules.rules())
        self.traffic = traffic or rule_traffic(
            self._reference, seed=f"{schedule.seed}/traffic"
        )

    def run(self) -> HarnessResult:
        """Play the schedule to completion; never raises on recovery
        failure (it is recorded and the round still carries fail-closed)."""
        result = HarnessResult()
        rounds_c = obs.get_registry().counter(
            "vif_harness_rounds_total",
            help="Fault-injection harness rounds completed",
        )
        violations_c = obs.get_registry().counter(
            "vif_harness_invariant_violations_total",
            help="Independently re-derived fail-closed violations (must stay 0)",
        )
        journal = obs.get_journal()
        session_id = (
            self.fleet.session.victim_name
            if self.fleet.session is not None
            else ""
        )
        for r in range(self.schedule.rounds):
            with obs.span("harness.round", round=r):
                if journal.enabled:
                    journal.set_round(r)
                    journal.emit(
                        "round_start",
                        round_id=r,
                        session_id=session_id,
                        scheduled_faults=len(self.schedule.for_round(r)),
                    )
                events = self.injector.apply_round(self.schedule, r)
                health = self.fleet.probe()
                recovery_failed = False
                try:
                    recovery = self.fleet.recover()
                except RecoveryFailed:
                    # Outage outlasted the retry budget: replacements stay
                    # un-attested and DEAD; traffic still fails closed and the
                    # next round retries recovery from scratch.
                    recovery = RecoveryReport()
                    recovery_failed = True
                carry = self.fleet.carry(self.traffic(r))
                record = RoundRecord(
                    round_index=r,
                    events=events,
                    health=health,
                    recovery=recovery,
                    carry=carry,
                    recovery_failed=recovery_failed,
                    invariant_violations=self._audit(carry),
                )
            rounds_c.inc()
            if record.invariant_violations:
                violations_c.inc(record.invariant_violations)
                if journal.enabled:
                    # The forensic moment: dump the flight-recorder ring
                    # (confined to this round and earlier) alongside the
                    # violation so the offending flows are in the artifact.
                    journal.emit(
                        "invariant_failure",
                        round_id=r,
                        session_id=session_id,
                        violations=record.invariant_violations,
                        recovery_failed=record.recovery_failed,
                        flight=obs.get_flight_recorder().dump(max_round=r),
                    )
            result.records.append(record)
        result.counters = self.fleet.counters.as_dict()
        if self.fleet.allocation is not None:
            result.final_allocation_violations = [
                str(v) for v in validate_allocation(self.fleet.allocation)
            ]
        return result

    def _audit(self, carry: CarryResult) -> int:
        """Independent fail-closed check over the delivered packets."""
        violations = 0
        for packet in carry.delivered:
            if id(packet) in carry.filtered_ids:
                continue
            if self._reference.match(packet.five_tuple) is not None:
                violations += 1
        return violations
