"""Applying fault events to a live fleet.

:class:`FlakyIAS` models the attestation-service outage the paper's WAN
numbers make plausible (Appendix G: every attestation crosses a continent to
the IAS): it behaves exactly like :class:`~repro.tee.attestation.IASService`
except that the next *k* verifications fail.  Because the fleet manager's
retry/backoff budget exceeds any scheduled outage, a transient outage delays
recovery instead of aborting it — which is what the harness asserts.

:class:`FaultInjector` maps :class:`~repro.faults.schedule.FaultEvent`
values onto the :class:`~repro.core.fleet.FleetManager` fault entry points.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.core.fleet import FleetManager
from repro.errors import AttestationError, ConfigurationError
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.tee.attestation import AttestationReport, IASService, Quote


class FlakyIAS(IASService):
    """An IAS whose next ``k`` verifications fail (injected outage).

    Drop-in for :class:`IASService` — same provisioning, same report key —
    so verifiers built against it validate real reports once the outage
    clears.  Outages stack: two ``fail_next(2)`` calls fail four
    verifications.
    """

    def __init__(self, service_name: str = "ias") -> None:
        super().__init__(service_name)
        self._outage_remaining = 0
        self.failed_verifications = 0

    def fail_next(self, count: int = 1) -> None:
        """Make the next ``count`` verify_quote calls fail."""
        if count < 0:
            raise ConfigurationError("outage length must be >= 0")
        self._outage_remaining += count

    @property
    def outage_remaining(self) -> int:
        return self._outage_remaining

    def verify_quote(self, quote: Quote) -> AttestationReport:
        if self._outage_remaining > 0:
            self._outage_remaining -= 1
            self.failed_verifications += 1
            raise AttestationError(
                "IAS unreachable (injected outage, "
                f"{self._outage_remaining} failures remaining)"
            )
        return super().verify_quote(quote)


class FaultInjector:
    """Dispatches schedule events onto a fleet (and its IAS)."""

    def __init__(
        self, fleet: FleetManager, ias: Optional[FlakyIAS] = None
    ) -> None:
        self.fleet = fleet
        self.ias = ias
        self.applied: List[FaultEvent] = []

    def apply(self, event: FaultEvent) -> None:
        """Fire one event.  IAS outages require a :class:`FlakyIAS`."""
        if event.kind is FaultKind.CRASH:
            self.fleet.inject_crash(event.target)
        elif event.kind is FaultKind.PLATFORM_LOSS:
            self.fleet.inject_crash(event.target, platform_lost=True)
        elif event.kind is FaultKind.EPC_EXHAUSTION:
            self.fleet.inject_epc_exhaustion(event.target)
        elif event.kind is FaultKind.IAS_OUTAGE:
            if self.ias is None:
                raise ConfigurationError(
                    "IAS_OUTAGE event needs a FlakyIAS injector target"
                )
            self.ias.fail_next(event.magnitude)
        elif event.kind in (
            FaultKind.WORKER_KILL,
            FaultKind.STAGE_HANG,
            FaultKind.RULE_CHURN,
            FaultKind.OFFLOAD_LIE,
        ):
            raise ConfigurationError(
                f"{event.kind.value} is a serve-scoped fault; replay it "
                "through repro.serve.chaos.ServeChaosDriver, not the "
                "per-round FaultInjector"
            )
        else:  # pragma: no cover - enum is closed
            raise ConfigurationError(f"unknown fault kind {event.kind!r}")
        obs.get_registry().counter(
            "vif_faults_injected_total",
            help="Fault events applied to a fleet, by kind",
            kind=event.kind.value,
        ).inc()
        journal = obs.get_journal()
        if journal.enabled:
            journal.emit(
                "fault_injected",
                round_id=event.round_index,
                kind=event.kind.value,
                target=event.target,
                magnitude=event.magnitude,
            )
        self.applied.append(event)

    def apply_round(
        self, schedule: FaultSchedule, round_index: int
    ) -> List[FaultEvent]:
        """Fire every event scheduled for ``round_index``; returns them."""
        events = schedule.for_round(round_index)
        for event in events:
            self.apply(event)
        return events
