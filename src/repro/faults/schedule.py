"""Seeded, replayable fault schedules.

A schedule is an immutable list of :class:`FaultEvent` pinned to round
indexes.  Generation draws from :func:`repro.util.rng.deterministic_rng`, so
the same seed always yields the same event sequence — a recovery bug found
by the harness replays bit-for-bit from its seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.rng import deterministic_rng


class FaultKind(enum.Enum):
    #: Enclave dies; its platform survives and can host a relaunch.
    CRASH = "crash"
    #: Enclave dies *and* its platform is gone (power/hardware loss);
    #: recovery needs a spare platform or a re-distribution.
    PLATFORM_LOSS = "platform-loss"
    #: Enclave dies and its platform's EPC is exhausted, so a relaunch
    #: fails at load time — forces the orphan/repair path.
    EPC_EXHAUSTION = "epc-exhaustion"
    #: The attestation service fails the next ``magnitude`` verifications
    #: (transient outage); recovery must ride it out with retry/backoff.
    IAS_OUTAGE = "ias-outage"
    # -- serve-scoped kinds (handled by repro.serve.chaos, not the round
    # -- injector; ``round_index`` means "burst index" for these) -----------
    #: A sharded data-plane worker process is killed outright; the serve
    #: watchdog must restart it and re-dispatch its in-flight batches.
    WORKER_KILL = "worker-kill"
    #: A service stage (``target`` picks ingest/filter/audit) hangs for
    #: ``magnitude`` heartbeat deadlines; the watchdog must cancel and
    #: restart it without losing the in-flight burst.
    STAGE_HANG = "stage-hang"
    #: A burst of ``magnitude`` hot rule installs immediately followed by
    #: their removals — the control-plane churn storm.
    RULE_CHURN = "rule-churn"
    #: The untrusted fast-drop tier starts lying: ``target`` selects the
    #: mode (0 = drop legitimate flows, 1 = hide drops from the sampler),
    #: ``magnitude`` the affected-flow percentage.  The offload auditor
    #: must catch it within its confidence-bound round count.
    OFFLOAD_LIE = "offload-lie"
    #: A synthetic latency spike on one stage (``target`` picks
    #: ingest/filter/audit, ``magnitude`` the spike in seconds).  Recorded
    #: through the serve loop's latency tracker so the stage-latency SLO's
    #: burn-rate gate must catch it — the observability drill.
    LATENCY_SPIKE = "latency-spike"


@dataclass(frozen=True)
class FaultEvent:
    """One fault, pinned to the round it fires in.

    ``target`` is the enclave slot for enclave-scoped kinds (taken modulo
    the live fleet size at injection time) and unused for IAS outages;
    ``magnitude`` is the outage length (failed verifications) for
    :attr:`FaultKind.IAS_OUTAGE` and unused otherwise.
    """

    round_index: int
    kind: FaultKind
    target: int = 0
    magnitude: int = 1

    def describe(self) -> str:
        if self.kind is FaultKind.IAS_OUTAGE:
            return f"r{self.round_index}: IAS outage x{self.magnitude}"
        return f"r{self.round_index}: {self.kind.value} @ slot {self.target}"


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable fault plan over ``rounds`` traffic rounds."""

    rounds: int
    events: Tuple[FaultEvent, ...] = ()
    seed: str = ""

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("schedule needs at least one round")
        for event in self.events:
            if not 0 <= event.round_index < self.rounds:
                raise ConfigurationError(
                    f"event {event.describe()!r} outside {self.rounds} rounds"
                )

    def for_round(self, round_index: int) -> List[FaultEvent]:
        """Events firing in ``round_index``, in schedule order."""
        return [e for e in self.events if e.round_index == round_index]

    @property
    def enclave_faults(self) -> int:
        return sum(
            1 for e in self.events if e.kind is not FaultKind.IAS_OUTAGE
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: str,
        rounds: int,
        fleet_size: int,
        crash_prob: float = 0.05,
        platform_loss_prob: float = 0.0,
        epc_exhaustion_prob: float = 0.0,
        ias_outage_prob: float = 0.0,
        ias_outage_length: int = 2,
    ) -> "FaultSchedule":
        """Draw a random schedule: per round, each fault class fires with
        its probability (enclave-scoped faults pick a uniform slot)."""
        if fleet_size < 1:
            raise ConfigurationError("fleet_size must be >= 1")
        rng = deterministic_rng(f"{seed}/fault-schedule")
        events: List[FaultEvent] = []
        kinds = (
            (FaultKind.CRASH, crash_prob),
            (FaultKind.PLATFORM_LOSS, platform_loss_prob),
            (FaultKind.EPC_EXHAUSTION, epc_exhaustion_prob),
        )
        for r in range(rounds):
            for kind, prob in kinds:
                if rng.random() < prob:
                    events.append(
                        FaultEvent(
                            round_index=r,
                            kind=kind,
                            target=rng.randrange(fleet_size),
                        )
                    )
            if rng.random() < ias_outage_prob:
                events.append(
                    FaultEvent(
                        round_index=r,
                        kind=FaultKind.IAS_OUTAGE,
                        magnitude=ias_outage_length,
                    )
                )
        return cls(rounds=rounds, events=tuple(events), seed=seed)

    @classmethod
    def generate_serve(
        cls,
        seed: str,
        bursts: int,
        workers: int,
        worker_kill_prob: float = 0.01,
        stage_hang_prob: float = 0.01,
        rule_churn_prob: float = 0.02,
        ias_outage_prob: float = 0.0,
        offload_lie_prob: float = 0.0,
        latency_spike_prob: float = 0.0,
        churn_size: int = 4,
        hang_deadlines: int = 2,
        ias_outage_length: int = 2,
        offload_lie_percent: int = 10,
        latency_spike_seconds: int = 60,
    ) -> "FaultSchedule":
        """Draw a serve-mode chaos schedule over ``bursts`` ingest bursts.

        Serve-scoped kinds ride the same :class:`FaultEvent` shape with
        ``round_index`` reinterpreted as the burst index; the schedule is
        replayed by :class:`repro.serve.chaos.ServeChaosDriver` rather than
        the per-round :class:`~repro.faults.injector.FaultInjector`.
        """
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        rng = deterministic_rng(f"{seed}/serve-chaos")
        events: List[FaultEvent] = []
        for b in range(bursts):
            if rng.random() < worker_kill_prob:
                events.append(
                    FaultEvent(
                        round_index=b,
                        kind=FaultKind.WORKER_KILL,
                        target=rng.randrange(workers),
                    )
                )
            if rng.random() < stage_hang_prob:
                events.append(
                    FaultEvent(
                        round_index=b,
                        kind=FaultKind.STAGE_HANG,
                        target=rng.randrange(3),
                        magnitude=hang_deadlines,
                    )
                )
            if rng.random() < rule_churn_prob:
                events.append(
                    FaultEvent(
                        round_index=b,
                        kind=FaultKind.RULE_CHURN,
                        magnitude=churn_size,
                    )
                )
            if rng.random() < ias_outage_prob:
                events.append(
                    FaultEvent(
                        round_index=b,
                        kind=FaultKind.IAS_OUTAGE,
                        magnitude=ias_outage_length,
                    )
                )
            if rng.random() < offload_lie_prob:
                events.append(
                    FaultEvent(
                        round_index=b,
                        kind=FaultKind.OFFLOAD_LIE,
                        target=rng.randrange(2),
                        magnitude=offload_lie_percent,
                    )
                )
            if rng.random() < latency_spike_prob:
                events.append(
                    FaultEvent(
                        round_index=b,
                        kind=FaultKind.LATENCY_SPIKE,
                        target=rng.randrange(3),
                        magnitude=latency_spike_seconds,
                    )
                )
        return cls(rounds=bursts, events=tuple(events), seed=seed)

    @classmethod
    def kill_fraction(
        cls,
        seed: str,
        rounds: int,
        fleet_size: int,
        fraction: float,
        at_round: Optional[int] = None,
        kind: FaultKind = FaultKind.CRASH,
    ) -> "FaultSchedule":
        """Kill ``fraction`` of the fleet (distinct slots) in one round.

        The acceptance scenario: 20% of a 10-enclave fleet dies mid-run and
        the fleet must restore a valid allocation with zero unfiltered
        packets.  Defaults to the middle round.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        if kind is FaultKind.IAS_OUTAGE:
            raise ConfigurationError("kill_fraction is enclave-scoped")
        count = max(1, round(fleet_size * fraction))
        if at_round is None:
            at_round = rounds // 2
        rng = deterministic_rng(f"{seed}/kill-fraction")
        slots = rng.sample(range(fleet_size), count)
        events = tuple(
            FaultEvent(round_index=at_round, kind=kind, target=slot)
            for slot in sorted(slots)
        )
        return cls(rounds=rounds, events=events, seed=seed)
