"""The paper's primary contribution: verifiable in-network filtering.

Submodules:

* :mod:`repro.core.rules` — victim-submitted filter rules (deterministic and
  non-deterministic, exact-match and prefix-based) with RPKI-style origin
  validation.
* :mod:`repro.core.filter` — the stateless ``f(p)`` filter with
  connection-preserving non-deterministic execution (hash-based, exact-match
  and the hybrid of Appendix A/F).
* :mod:`repro.core.enclave_filter` — the filter hosted inside a TEE enclave
  with in-enclave packet logs and load-balancer misbehavior checks.
* :mod:`repro.core.bypass` / :mod:`repro.core.verification` — sketch-based
  bypass detection for victims and neighbor ASes (paper III-B).
* :mod:`repro.core.distribution` — the Fig 5 master/slave rule
  redistribution protocol over the optimizer.
* :mod:`repro.core.controller` — the untrusted IXP controller and load
  balancer.
* :mod:`repro.core.session` — end-to-end victim<->filtering-network session:
  attestation, rule install, rounds, audits, abort-on-misbehavior.
* :mod:`repro.core.fleet` — fault-tolerant fleet manager: health probes,
  automatic failover with incremental rule re-distribution, fail-closed
  graceful degradation.
"""

from repro.core.rules import (
    Action,
    FilterRule,
    FlowPattern,
    RPKIRegistry,
    RuleSet,
)
from repro.core.filter import (
    ConnectionPreservingMode,
    FilterDecision,
    StatelessFilter,
)
from repro.core.enclave_filter import EnclaveBurstFilter, EnclaveFilter, FilterReport
from repro.core.bypass import (
    BypassEvidence,
    NeighborAuditor,
    VictimAuditor,
)
from repro.core.controller import BLACKHOLE, IXPController, LoadBalancer
from repro.core.distribution import (
    RedistributionRound,
    RuleDistributionProtocol,
)
from repro.core.fleet import (
    EnclaveHealth,
    FleetBurstFilter,
    FleetConfig,
    FleetCounters,
    FleetManager,
    RecoveryReport,
)
from repro.core.neighbor import NeighborSession
from repro.core.rounds import RoundOutcome, RoundScheduler
from repro.core.session import VIFSession, SessionState
from repro.core.stateful import (
    AuditableRateLimitFilter,
    NaiveStatefulFirewall,
    SourceGroupQuota,
    fair_share_quotas,
)

__all__ = [
    "Action",
    "AuditableRateLimitFilter",
    "BLACKHOLE",
    "BypassEvidence",
    "ConnectionPreservingMode",
    "EnclaveBurstFilter",
    "EnclaveFilter",
    "EnclaveHealth",
    "FilterDecision",
    "FilterReport",
    "FilterRule",
    "FleetBurstFilter",
    "FleetConfig",
    "FleetCounters",
    "FleetManager",
    "FlowPattern",
    "IXPController",
    "LoadBalancer",
    "NaiveStatefulFirewall",
    "NeighborAuditor",
    "NeighborSession",
    "RPKIRegistry",
    "RecoveryReport",
    "RedistributionRound",
    "RoundOutcome",
    "RoundScheduler",
    "RuleDistributionProtocol",
    "RuleSet",
    "SessionState",
    "SourceGroupQuota",
    "StatelessFilter",
    "VictimAuditor",
    "VIFSession",
    "fair_share_quotas",
]
