"""The end-to-end VIF session between a victim and a filtering network.

Mirrors the deployment walkthrough of paper VI-B:

1. the victim contacts the IXP controller out of band and authenticates via
   RPKI (its rules must target its own prefixes);
2. the IXP launches filter enclaves; the victim **remotely attests** each
   one, with the enclave's key-exchange public value bound into the
   attestation report (channel binding);
3. the victim establishes a secure channel *into each enclave* and submits
   its filter rules over it — the untrusted network relays opaque
   authenticated records it cannot tamper with;
4. the controller distributes rules/traffic across the fleet (redistribution
   rounds at most every few minutes — "a short time duration for each
   filtering round so that victim networks can abort quickly");
5. the victim (and neighbor ASes) audit the sketch logs each round and
   **abort the contract** on any bypass evidence.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.bypass import BypassEvidence, VictimAuditor, merge_enclave_logs
from repro.core.controller import IXPController
from repro.core.distribution import RuleDistributionProtocol
from repro.core.enclave_filter import EnclaveFilter
from repro.core.rules import FilterRule, RPKIRegistry, RuleSet
from repro.dataplane.packet import Packet
from repro.errors import SessionAborted, SessionError
from repro.obs.events import get_journal
from repro.sketch.countmin import CountMinSketch
from repro.tee.attestation import AttestationReport, IASService, RemoteAttestationVerifier
from repro.tee.secure_channel import ChannelEndpoint, SecureChannel


class SessionState(enum.Enum):
    CREATED = "created"
    ATTESTED = "attested"
    ACTIVE = "active"
    ABORTED = "aborted"
    CLOSED = "closed"


@dataclass
class AuditRecord:
    """One audit round's outcome, kept as session evidence."""

    round_number: int
    evidence: BypassEvidence


class VIFSession:
    """Victim-side driver of one filtering contract."""

    def __init__(
        self,
        victim_name: str,
        rpki: RPKIRegistry,
        ias: IASService,
        controller: IXPController,
        sketch_family_seed: str = "vif",
        audit_tolerance: int = 0,
    ) -> None:
        self.victim_name = victim_name
        self.rpki = rpki
        self.controller = controller
        self.state = SessionState.CREATED
        self.auditor = VictimAuditor(victim_name, family_seed=sketch_family_seed)
        self.verifier = RemoteAttestationVerifier(
            ias,
            expected_measurement=EnclaveFilter.measurement(),
            verifier_id=victim_name,
        )
        self.audit_tolerance = audit_tolerance
        self.attestation_reports: Dict[int, AttestationReport] = {}
        self.audit_log: List[AuditRecord] = []
        self._channels: Dict[int, SecureChannel] = {}
        self._endpoints: Dict[int, ChannelEndpoint] = {}
        self._installed = RuleSet()
        self._rounds = 0

    # -- step 2: attestation ------------------------------------------------------

    def attest_filters(self) -> int:
        """Attest every not-yet-attested enclave and open channels into them.

        Returns the number of enclaves newly attested.  Raises
        :class:`~repro.errors.AttestationError` if any enclave runs the
        wrong code — the victim walks away before submitting anything.
        """
        self._require_not_aborted()
        attested = 0
        for index, enclave in enumerate(self.controller.enclaves):
            if enclave.destroyed:
                # A dead slot is awaiting failover; there is nothing to
                # attest (its traffic fails closed meanwhile).  Replacements
                # show up here as fresh, un-attested enclaves after the
                # fleet manager calls invalidate_attestation().
                continue
            if index in self.attestation_reports:
                continue
            enclave_public: bytes = enclave.ecall("channel_public")
            report = self.verifier.attest(enclave, report_data=enclave_public)
            self.attestation_reports[index] = report

            endpoint = ChannelEndpoint.create(
                f"victim-{index}", f"{self.victim_name}/{enclave.enclave_id}"
            )
            enclave.ecall("open_victim_channel", endpoint.public)
            channel = SecureChannel.establish(
                endpoint, int.from_bytes(enclave_public, "big"), role="client"
            )
            self._endpoints[index] = endpoint
            self._channels[index] = channel
            attested += 1
            journal = get_journal()
            if journal.enabled:
                journal.emit(
                    "attestation",
                    session_id=self.victim_name,
                    enclave=enclave.enclave_id,
                    slot=index,
                )
        if self.state is SessionState.CREATED:
            self.state = SessionState.ATTESTED
        return attested

    def invalidate_attestation(self, index: int) -> None:
        """Forget the attestation and channel for one enclave slot.

        Called on failover: the replacement enclave at ``index`` is a fresh
        launch whose key-exchange value the victim has never seen, so the
        cached report and channel refer to the dead instance.  The next
        :meth:`attest_filters` re-attests the slot and re-binds the channel.
        """
        self.attestation_reports.pop(index, None)
        self._channels.pop(index, None)
        self._endpoints.pop(index, None)

    # -- step 3: rule submission -----------------------------------------------------

    def submit_rules(self, rules: Sequence[FilterRule]) -> int:
        """RPKI-validate and install rules into the (master) enclave.

        Rules travel as one sealed record; the enclave parses and installs
        them.  Returns the number installed.
        """
        self._require_state(SessionState.ATTESTED, SessionState.ACTIVE)
        self.rpki.validate_rules(rules)
        payload = json.dumps([rule.to_dict() for rule in rules]).encode()
        sealed = self._channels[0].seal(payload)
        installed = self.controller.enclaves[0].ecall("install_rules_sealed", sealed)
        for rule in rules:
            self._installed.add(rule)
        # Rules start at the master enclave (Fig 5); the load balancer must
        # steer matching traffic there until a redistribution round spreads
        # the rules across the fleet.
        routes = {rule.rule_id: [(0, 1.0)] for rule in self._installed}
        self.controller.load_balancer.configure(self._installed, routes)
        self.controller.state.rules = self._installed
        self.state = SessionState.ACTIVE
        return installed

    # -- step 4: scale-out ---------------------------------------------------------------

    def scale_out(
        self, protocol: RuleDistributionProtocol, window_s: float = 5.0
    ) -> None:
        """Run a redistribution round, then attest any newly launched enclave.

        Uses the authenticated Fig 5 round (rule re-calculation inside the
        master enclave, MAC'd state uploads and plan slices), so the
        controller ferrying the messages cannot skew the allocation.  New
        enclaves must pass attestation *before* the victim trusts their
        logs; an enclave that fails leaves the session aborted.
        """
        self._require_state(SessionState.ACTIVE)
        protocol.run_round_authenticated(window_s=window_s)
        self.attest_filters()

    # -- traffic + audit ------------------------------------------------------------------

    def observe_delivered(self, packets: Sequence[Packet]) -> None:
        """Feed the packets that actually arrived at the victim network."""
        self.auditor.observe_many(packets)

    def fetch_outgoing_log(self, enclave_index: int) -> CountMinSketch:
        """Fetch one enclave's authenticated outgoing sketch over the channel."""
        self._require_state(SessionState.ACTIVE)
        channel = self._channels[enclave_index]
        sealed_request = channel.seal(b"outgoing")
        sealed_response = self.controller.enclaves[enclave_index].ecall(
            "export_logs", sealed_request
        )
        return CountMinSketch.deserialize(channel.open(sealed_response))

    def audit_round(self, abort_on_evidence: bool = True) -> BypassEvidence:
        """Fetch all outgoing logs, merge, and compare with local receipts.

        On evidence of bypass the session aborts (the paper's remedy: "it
        can decide to abort the ongoing filtering request").
        """
        self._require_state(SessionState.ACTIVE)
        sketches = [
            self.fetch_outgoing_log(index)
            for index in range(len(self.controller.enclaves))
        ]
        merged = merge_enclave_logs(sketches)
        if merged is None:
            raise SessionError("no enclaves to audit")
        evidence = self.auditor.audit(merged, tolerance=self.audit_tolerance)
        self._rounds += 1
        self.audit_log.append(AuditRecord(self._rounds, evidence))
        if not evidence.clean and abort_on_evidence:
            self.state = SessionState.ABORTED
        return evidence

    # -- lifecycle ---------------------------------------------------------------------

    def abort(self) -> None:
        """Victim walks away from the contract."""
        self.state = SessionState.ABORTED

    def close(self) -> None:
        """Orderly end of the contract."""
        self._require_not_aborted()
        self.state = SessionState.CLOSED

    @property
    def installed_rules(self) -> RuleSet:
        return self._installed

    # -- internals ------------------------------------------------------------------------

    def _require_state(self, *states: SessionState) -> None:
        if self.state is SessionState.ABORTED:
            raise SessionAborted("session was aborted after detected misbehavior")
        if self.state not in states:
            raise SessionError(
                f"operation requires state in {[s.value for s in states]}, "
                f"session is {self.state.value}"
            )

    def _require_not_aborted(self) -> None:
        if self.state is SessionState.ABORTED:
            raise SessionAborted("session was aborted after detected misbehavior")
