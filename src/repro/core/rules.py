"""Victim-submitted filter rules (paper sections II, III-A, Appendix A).

A rule binds a :class:`FlowPattern` — an n-tuple match over
``(srcIP, dstIP, srcPort, dstPort, protocol)`` supporting exact values, CIDR
prefixes, port ranges and wildcards — to either a deterministic action
(``ALLOW``/``DROP``) or a non-deterministic drop probability
(``P_ALLOW + P_DROP = 1``) executed connection-preservingly by the filter.

Rules are validated RPKI-style before installation: the destination of every
pattern must fall inside a prefix the requesting victim is authorized for,
which is the paper's answer to "what if victim networks cause DoS by
blocking arbitrary packets?" (section VII).
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dataplane.packet import FiveTuple, Protocol
from repro.errors import RuleError, RuleValidationError
from repro.util.addrs import parse_network


class Action(enum.Enum):
    """Deterministic filtering actions."""

    ALLOW = "allow"
    DROP = "drop"


@dataclass(frozen=True)
class FlowPattern:
    """An n-tuple match specification.

    ``src_prefix``/``dst_prefix`` are CIDR strings (``"0.0.0.0/0"`` matches
    everything).  Port fields are inclusive ``(lo, hi)`` ranges, ``None``
    meaning any.  ``protocol`` of ``None`` matches any protocol.

    Examples from the paper: an exact-match five-tuple flow ("a specific TCP
    flow between two hosts") or a coarse-grained specification ("HTTP
    connections from hosts in a /24 prefix").

    Construction *compiles* both prefixes to ``(network_int, netmask_int)``
    pairs (plus version and prefix length), so :meth:`matches` is pure
    integer mask-and-compare with zero :mod:`ipaddress` calls per packet.
    The specificity score and the exact-match flag are precomputed for the
    same reason — the trie's most-specific tiebreak reads them per candidate
    rule on every lookup.
    """

    src_prefix: str = "0.0.0.0/0"
    dst_prefix: str = "0.0.0.0/0"
    src_ports: Optional[Tuple[int, int]] = None
    dst_ports: Optional[Tuple[int, int]] = None
    protocol: Optional[Protocol] = None

    def __post_init__(self) -> None:
        try:
            src_version, src_net, src_len, src_mask = parse_network(self.src_prefix)
        except ValueError as exc:
            raise RuleError(f"bad prefix {self.src_prefix!r}: {exc}") from exc
        try:
            dst_version, dst_net, dst_len, dst_mask = parse_network(self.dst_prefix)
        except ValueError as exc:
            raise RuleError(f"bad prefix {self.dst_prefix!r}: {exc}") from exc
        for ports in (self.src_ports, self.dst_ports):
            if ports is None:
                continue
            lo, hi = ports
            if not (0 <= lo <= hi <= 0xFFFF):
                raise RuleError(f"bad port range {ports}")
        set_ = object.__setattr__  # frozen dataclass: bypass the guard
        set_(self, "src_version", src_version)
        set_(self, "src_net_int", src_net)
        set_(self, "src_prefix_len", src_len)
        set_(self, "src_mask", src_mask)
        set_(self, "dst_version", dst_version)
        set_(self, "dst_net_int", dst_net)
        set_(self, "dst_prefix_len", dst_len)
        set_(self, "dst_mask", dst_mask)
        host_bits = {4: 32, 6: 128}
        set_(
            self,
            "_is_exact",
            src_len == host_bits[src_version]
            and dst_len == host_bits[dst_version]
            and self.src_ports is not None
            and self.src_ports[0] == self.src_ports[1]
            and self.dst_ports is not None
            and self.dst_ports[0] == self.dst_ports[1]
            and self.protocol is not None,
        )
        score = src_len + dst_len
        if self.src_ports is not None:
            score += 8 if self.src_ports[0] != self.src_ports[1] else 16
        if self.dst_ports is not None:
            score += 8 if self.dst_ports[0] != self.dst_ports[1] else 16
        if self.protocol is not None:
            score += 8
        set_(self, "_specificity", score)

    # -- matching ------------------------------------------------------------

    def matches(self, flow: FiveTuple) -> bool:
        """True when ``flow`` falls inside this pattern.

        Compiled form: integer mask comparisons against the five-tuple's
        cached address integers.  Version mismatches fail the match, exactly
        as ``ip_address(x) in ip_network(y)`` answered False across families.
        """
        if (
            flow.src_ip_version != self.src_version  # type: ignore[attr-defined]
            or (flow.src_ip_int & self.src_mask) != self.src_net_int  # type: ignore[attr-defined]
        ):
            return False
        if (
            flow.dst_ip_version != self.dst_version  # type: ignore[attr-defined]
            or (flow.dst_ip_int & self.dst_mask) != self.dst_net_int  # type: ignore[attr-defined]
        ):
            return False
        ports = self.src_ports
        if ports is not None and not ports[0] <= flow.src_port <= ports[1]:
            return False
        ports = self.dst_ports
        if ports is not None and not ports[0] <= flow.dst_port <= ports[1]:
            return False
        return self.protocol is None or flow.protocol == self.protocol

    @property
    def is_exact_match(self) -> bool:
        """True when the pattern pins a single five-tuple."""
        return self._is_exact  # type: ignore[attr-defined]

    @property
    def specificity(self) -> int:
        """Longest-prefix-match style tiebreak: more specific wins.

        Counts matched bits across both prefixes plus bonuses for pinned
        ports/protocol, so an exact-match rule always beats a coarse one.
        Precomputed at construction.
        """
        return self._specificity  # type: ignore[attr-defined]

    @classmethod
    def from_src_host(cls, src_int: int) -> "FlowPattern":
        """The ``/32``-source, wildcard-everything-else pattern for one IPv4
        host, built from its integer address.

        This is the exact shape of a blocklist entry (the membership tier's
        input), and blocklists come in the millions — the normal constructor
        pays two :func:`~repro.util.addrs.parse_network` calls per pattern,
        which dominates bulk installs.  Here the compiled fields are written
        directly; the result is field-for-field identical to
        ``FlowPattern(src_prefix=f"{dotted}/32")`` (pinned by a test).
        """
        if not 0 <= src_int <= 0xFFFFFFFF:
            raise RuleError(f"src_int {src_int} outside the IPv4 address space")
        self = object.__new__(cls)
        set_ = object.__setattr__
        dotted = (
            f"{(src_int >> 24) & 0xFF}.{(src_int >> 16) & 0xFF}"
            f".{(src_int >> 8) & 0xFF}.{src_int & 0xFF}"
        )
        set_(self, "src_prefix", f"{dotted}/32")
        set_(self, "dst_prefix", "0.0.0.0/0")
        set_(self, "src_ports", None)
        set_(self, "dst_ports", None)
        set_(self, "protocol", None)
        set_(self, "src_version", 4)
        set_(self, "src_net_int", src_int)
        set_(self, "src_prefix_len", 32)
        set_(self, "src_mask", 0xFFFFFFFF)
        set_(self, "dst_version", 4)
        set_(self, "dst_net_int", 0)
        set_(self, "dst_prefix_len", 0)
        set_(self, "dst_mask", 0)
        set_(self, "_is_exact", False)
        set_(self, "_specificity", 32)
        return self

    @classmethod
    def exact(cls, flow: FiveTuple) -> "FlowPattern":
        """The exact-match pattern for one five-tuple."""
        return cls(
            src_prefix=f"{flow.src_ip}/32",
            dst_prefix=f"{flow.dst_ip}/32",
            src_ports=(flow.src_port, flow.src_port),
            dst_ports=(flow.dst_port, flow.dst_port),
            protocol=flow.protocol,
        )

    def __str__(self) -> str:
        proto = self.protocol.name if self.protocol else "any"
        sp = f"{self.src_ports[0]}-{self.src_ports[1]}" if self.src_ports else "*"
        dp = f"{self.dst_ports[0]}-{self.dst_ports[1]}" if self.dst_ports else "*"
        return f"{proto} {self.src_prefix}:{sp} -> {self.dst_prefix}:{dp}"


@dataclass(frozen=True)
class FilterRule:
    """One victim-submitted rule.

    Deterministic rules carry ``action``; non-deterministic rules carry
    ``p_allow`` (the probability that a matching *connection* is allowed —
    all packets of one TCP/UDP flow share the decision, Appendix A).
    Exactly one of the two must be set.

    ``rate_bps`` is the measured average inbound rate matching this rule
    (the ``b_i`` of the optimizer); it is maintained by the enclave's byte
    counters, not trusted timestamps (paper footnote 6).
    """

    rule_id: int
    pattern: FlowPattern
    action: Optional[Action] = None
    p_allow: Optional[float] = None
    rate_bps: float = 0.0
    requested_by: str = ""

    def __post_init__(self) -> None:
        if (self.action is None) == (self.p_allow is None):
            raise RuleError(
                "exactly one of action / p_allow must be set "
                f"(rule {self.rule_id})"
            )
        if self.p_allow is not None and not 0.0 <= self.p_allow <= 1.0:
            raise RuleError(f"p_allow {self.p_allow} outside [0, 1]")
        if self.rate_bps < 0:
            raise RuleError("rate_bps must be non-negative")

    @property
    def deterministic(self) -> bool:
        return self.action is not None

    @property
    def p_drop(self) -> float:
        """The drop probability (0/1 for deterministic rules)."""
        if self.action is not None:
            return 1.0 if self.action is Action.DROP else 0.0
        assert self.p_allow is not None
        return 1.0 - self.p_allow

    def with_rate(self, rate_bps: float) -> "FilterRule":
        """Copy of this rule with an updated measured rate."""
        return FilterRule(
            rule_id=self.rule_id,
            pattern=self.pattern,
            action=self.action,
            p_allow=self.p_allow,
            rate_bps=rate_bps,
            requested_by=self.requested_by,
        )

    def describe(self) -> str:
        """Human-readable form, e.g. for audit logs."""
        if self.deterministic:
            assert self.action is not None
            verdict = self.action.value.upper()
        else:
            verdict = f"DROP {self.p_drop:.0%} of connections"
        return f"[{verdict}] {self.pattern}"

    # -- wire format (rules travel over the victim<->enclave secure channel) --

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding used by the secure-channel rule install."""
        return {
            "rule_id": self.rule_id,
            "src_prefix": self.pattern.src_prefix,
            "dst_prefix": self.pattern.dst_prefix,
            "src_ports": list(self.pattern.src_ports) if self.pattern.src_ports else None,
            "dst_ports": list(self.pattern.dst_ports) if self.pattern.dst_ports else None,
            "protocol": int(self.pattern.protocol) if self.pattern.protocol else None,
            "action": self.action.value if self.action else None,
            "p_allow": self.p_allow,
            "rate_bps": self.rate_bps,
            "requested_by": self.requested_by,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FilterRule":
        """Inverse of :meth:`to_dict`; validates through the constructors."""
        pattern = FlowPattern(
            src_prefix=str(data["src_prefix"]),
            dst_prefix=str(data["dst_prefix"]),
            src_ports=tuple(data["src_ports"]) if data.get("src_ports") else None,  # type: ignore[arg-type]
            dst_ports=tuple(data["dst_ports"]) if data.get("dst_ports") else None,  # type: ignore[arg-type]
            protocol=Protocol(data["protocol"]) if data.get("protocol") else None,
        )
        action_value = data.get("action")
        return cls(
            rule_id=int(data["rule_id"]),  # type: ignore[arg-type]
            pattern=pattern,
            action=Action(action_value) if action_value else None,
            p_allow=data.get("p_allow"),  # type: ignore[arg-type]
            rate_bps=float(data.get("rate_bps", 0.0)),  # type: ignore[arg-type]
            requested_by=str(data.get("requested_by", "")),
        )


class RuleSet:
    """An ordered collection of rules with most-specific-match semantics.

    Lookup returns the matching rule with the highest pattern specificity
    (ties broken by lowest rule id), mirroring how the multi-bit-trie lookup
    table resolves overlapping entries.
    """

    def __init__(self, rules: Iterable[FilterRule] = ()) -> None:
        self._rules: Dict[int, FilterRule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: FilterRule) -> None:
        if rule.rule_id in self._rules:
            raise RuleError(f"duplicate rule id {rule.rule_id}")
        self._rules[rule.rule_id] = rule

    def remove(self, rule_id: int) -> FilterRule:
        try:
            return self._rules.pop(rule_id)
        except KeyError as exc:
            raise RuleError(f"unknown rule id {rule_id}") from exc

    def get(self, rule_id: int) -> FilterRule:
        try:
            return self._rules[rule_id]
        except KeyError as exc:
            raise RuleError(f"unknown rule id {rule_id}") from exc

    def match(self, flow: FiveTuple) -> Optional[FilterRule]:
        """Most-specific rule matching ``flow``, or None."""
        best: Optional[FilterRule] = None
        for rule in self._rules.values():
            if not rule.pattern.matches(flow):
                continue
            if best is None:
                best = rule
                continue
            if rule.pattern.specificity > best.pattern.specificity or (
                rule.pattern.specificity == best.pattern.specificity
                and rule.rule_id < best.rule_id
            ):
                best = rule
        return best

    def total_rate_bps(self) -> float:
        """Sum of measured rates across rules (the optimizer's Σ b_i)."""
        return sum(rule.rate_bps for rule in self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[FilterRule]:
        return iter(sorted(self._rules.values(), key=lambda r: r.rule_id))

    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._rules

    def rules(self) -> List[FilterRule]:
        """Rules in id order."""
        return list(self)

    def subset(self, rule_ids: Iterable[int]) -> "RuleSet":
        """A new RuleSet holding only ``rule_ids`` (used by the optimizer)."""
        return RuleSet(self.get(rid) for rid in rule_ids)


@dataclass
class RPKIRegistry:
    """A toy Resource Public Key Infrastructure.

    Maps network names to the prefixes they are authorized to originate.
    The filtering network validates every submitted rule's destination
    against the requester's authorization before installing it (paper VI-B,
    VII), so a "victim" cannot filter traffic bound for someone else.
    """

    authorizations: Dict[str, List[str]] = field(default_factory=dict)

    def authorize(self, network: str, prefix: str) -> None:
        """Register ``prefix`` as originated by ``network``."""
        ipaddress.ip_network(prefix, strict=False)
        self.authorizations.setdefault(network, []).append(prefix)

    def covers(self, network: str, dst_prefix: str) -> bool:
        """True when ``dst_prefix`` lies inside a prefix of ``network``."""
        target = ipaddress.ip_network(dst_prefix, strict=False)
        for prefix in self.authorizations.get(network, []):
            net = ipaddress.ip_network(prefix, strict=False)
            if target.subnet_of(net):
                return True
        return False

    def validate_rule(self, rule: FilterRule) -> None:
        """Raise :class:`RuleValidationError` unless the rule is authorized."""
        if not rule.requested_by:
            raise RuleValidationError(
                f"rule {rule.rule_id} carries no requester identity"
            )
        if not self.covers(rule.requested_by, rule.pattern.dst_prefix):
            raise RuleValidationError(
                f"rule {rule.rule_id}: {rule.requested_by!r} is not authorized "
                f"for destination {rule.pattern.dst_prefix}"
            )

    def validate_rules(self, rules: Iterable[FilterRule]) -> None:
        """Validate every rule; raises on the first violation."""
        for rule in rules:
            self.validate_rule(rule)
