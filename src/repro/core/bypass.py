"""Bypass detection (paper section III-B).

The auditable filter guarantees correct verdicts *for the packets it sees*;
a malicious filtering network can still route traffic around the enclave.
The three bypass attacks and who detects each:

==========================  ==============================  ==================
Attack                      Symptom                         Detector
==========================  ==============================  ==================
Injection after filtering   victim receives packets the     victim, via the
                            enclave never forwarded         outgoing log
Drop after filtering        enclave forwarded packets the   victim, via the
                            victim never received           outgoing log
Drop before filtering       neighbor AS handed packets the  neighbor AS, via
                            enclave never saw               the incoming log
==========================  ==============================  ==================

(The fourth combination — injection *before* filtering — is explicitly not
an attack: packet-injection independence means injected packets simply get
filtered like any others.)

Both auditors keep a local sketch built with the *same hash family* as the
enclave's log and compare bin-by-bin.  A per-bin ``tolerance`` absorbs
benign loss between the filter and the observer; Appendix-B fault
localization (module :mod:`repro.interdomain.poisoning`) handles drops by
intermediate ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dataplane.packet import Packet
from repro.sketch.comparison import SketchComparison, compare_sketches
from repro.sketch.countmin import CountMinSketch
from repro.sketch.logs import FiveTupleLog, SourceIPLog


@dataclass
class BypassEvidence:
    """The outcome of one audit round."""

    observer: str
    comparison: SketchComparison
    suspected_attacks: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.suspected_attacks

    def describe(self) -> str:
        if self.clean:
            return f"{self.observer}: no bypass detected"
        return (
            f"{self.observer}: suspected {', '.join(self.suspected_attacks)} "
            f"(missing={self.comparison.total_missing}, "
            f"extra={self.comparison.total_extra})"
        )

    def to_payload(self) -> dict:
        """JSON-safe summary for the audit event journal."""
        return {
            "observer": self.observer,
            "clean": self.clean,
            "suspected_attacks": list(self.suspected_attacks),
            "bins_flagged": len(self.comparison.discrepancies),
            "missing": self.comparison.total_missing,
            "extra": self.comparison.total_extra,
        }


class VictimAuditor:
    """Victim-side log of received packets and the audit against the enclave.

    The victim runs an efficient sketch "on a commodity server without SGX
    overhead" (paper footnote 4) over every packet it actually receives,
    then periodically fetches the enclave's authenticated outgoing log and
    compares.
    """

    def __init__(self, victim_name: str, family_seed: str = "vif") -> None:
        self.victim_name = victim_name
        self.local_log = FiveTupleLog(family_seed=f"{family_seed}/out")

    def observe(self, packet: Packet) -> None:
        """Record one packet that reached the victim network."""
        self.local_log.record(packet)

    def observe_many(self, packets) -> None:
        for packet in packets:
            self.observe(packet)

    def audit(
        self, enclave_outgoing: CountMinSketch, tolerance: int = 0
    ) -> BypassEvidence:
        """Compare the enclave's outgoing log against what actually arrived."""
        comparison = compare_sketches(
            enclave_outgoing, self.local_log.sketch, tolerance=tolerance
        )
        suspected: List[str] = []
        if comparison.drop_suspected:
            suspected.append("drop-after-filtering")
        if comparison.injection_suspected:
            suspected.append("injection-after-filtering")
        return BypassEvidence(
            observer=f"victim:{self.victim_name}",
            comparison=comparison,
            suspected_attacks=suspected,
        )


class NeighborAuditor:
    """Neighbor-AS-side log of packets handed to the filtering network.

    A neighbor only sees its own side: it can prove *drop before filtering*
    (it delivered packets the enclave never logged) but cannot observe what
    happens after the filter — that is the victim's audit.
    """

    def __init__(self, as_number: int, family_seed: str = "vif") -> None:
        self.as_number = as_number
        self.local_log = SourceIPLog(family_seed=f"{family_seed}/in")

    def observe(self, packet: Packet) -> None:
        """Record one packet this AS forwarded into the filtering network."""
        self.local_log.record(packet)

    def observe_many(self, packets) -> None:
        for packet in packets:
            self.observe(packet)

    def audit(
        self, enclave_incoming: CountMinSketch, tolerance: int = 0
    ) -> BypassEvidence:
        """Compare the enclave's incoming log against what this AS delivered.

        Only bins where the *neighbor* count exceeds the enclave's indicate
        drop-before-filtering; the enclave legitimately counts more in every
        bin because it aggregates all neighbors into one sketch.
        """
        comparison = compare_sketches(
            enclave_incoming, self.local_log.sketch, tolerance=tolerance
        )
        suspected: List[str] = []
        if comparison.injection_suspected:
            # "extra at observer" here means: this AS delivered packets the
            # enclave never logged as arrived.
            suspected.append("drop-before-filtering")
        return BypassEvidence(
            observer=f"neighbor:AS{self.as_number}",
            comparison=comparison,
            suspected_attacks=suspected,
        )


def merge_enclave_logs(
    sketches: List[CountMinSketch],
) -> Optional[CountMinSketch]:
    """Merge per-enclave logs into one (scale-out audits, paper IV-B).

    All sketches must share a hash family; returns None for an empty list.
    """
    if not sketches:
        return None
    merged = sketches[0].copy()
    for sketch in sketches[1:]:
        merged.merge(sketch)
    return merged
