"""Filtering-round scheduling (paper III-B, IV-B).

The paper runs VIF in short rounds — "the VIF filtering network should
allow a short (e.g., a few minutes) time duration for each filtering round
so that victim networks can abort any further request quickly" — and
redistributes rules between rounds when an enclave nears its caps.

:class:`RoundScheduler` drives that loop against the simulation clock:

1. carry the round's traffic;
2. at the boundary: collect measured per-rule rates, redistribute if any
   enclave is under pressure (attesting anything newly launched);
3. run the victim's sketch audit; on evidence, the session aborts and the
   loop stops.

The scheduler is deliberately victim-perspective: it owns no data-plane
state and everything it does is observable/repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.core.bypass import BypassEvidence
from repro.core.distribution import RuleDistributionProtocol
from repro.core.session import SessionState, VIFSession
from repro.dataplane.packet import Packet
from repro.errors import ConfigurationError
from repro.tee.clock import HostClock

#: "a few minutes" — the paper's suggested round duration.
DEFAULT_ROUND_DURATION_S = 180.0

TrafficSource = Callable[[int], Iterable[Packet]]
DeliveryFn = Callable[[Iterable[Packet]], List[Packet]]


@dataclass
class RoundOutcome:
    """What happened in one filtering round."""

    round_number: int
    started_at_s: float
    packets_sent: int
    packets_delivered: int
    redistributed: bool
    enclaves_after: int
    audit: Optional[BypassEvidence] = None

    @property
    def aborted(self) -> bool:
        return self.audit is not None and not self.audit.clean


@dataclass
class RoundScheduler:
    """Runs consecutive filtering rounds until told to stop (or aborted)."""

    session: VIFSession
    protocol: RuleDistributionProtocol
    clock: HostClock = field(default_factory=HostClock)
    round_duration_s: float = DEFAULT_ROUND_DURATION_S
    #: Delivery path — override to interpose a (possibly malicious)
    #: filtering network; defaults to the honest controller path.
    deliver: Optional[DeliveryFn] = None
    outcomes: List[RoundOutcome] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.round_duration_s <= 0:
            raise ConfigurationError("round duration must be positive")
        if self.deliver is None:
            self.deliver = self.session.controller.carry

    def run_round(self, traffic: Iterable[Packet]) -> RoundOutcome:
        """Run one full round with the given traffic."""
        if self.session.state is not SessionState.ACTIVE:
            raise ConfigurationError(
                f"session must be active (is {self.session.state.value})"
            )
        round_number = len(self.outcomes) + 1
        started = self.clock.now()

        packets = list(traffic)
        delivered = self.deliver(packets)
        self.session.observe_delivered(delivered)
        self.clock.advance(self.round_duration_s)

        redistributed = False
        if self.protocol.needs_redistribution(window_s=self.round_duration_s):
            self.session.scale_out(self.protocol, window_s=self.round_duration_s)
            redistributed = True

        audit = self.session.audit_round()
        outcome = RoundOutcome(
            round_number=round_number,
            started_at_s=started,
            packets_sent=len(packets),
            packets_delivered=len(delivered),
            redistributed=redistributed,
            enclaves_after=len(self.session.controller.enclaves),
            audit=audit,
        )
        self.outcomes.append(outcome)
        return outcome

    def run(self, traffic_source: TrafficSource, max_rounds: int) -> List[RoundOutcome]:
        """Run up to ``max_rounds`` rounds; stops early on abort.

        ``traffic_source(round_number)`` supplies each round's packets.
        """
        if max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        for round_number in range(1, max_rounds + 1):
            outcome = self.run_round(traffic_source(round_number))
            if outcome.aborted:
                break
        return list(self.outcomes)
