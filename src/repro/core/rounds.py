"""Filtering-round scheduling (paper III-B, IV-B).

The paper runs VIF in short rounds — "the VIF filtering network should
allow a short (e.g., a few minutes) time duration for each filtering round
so that victim networks can abort any further request quickly" — and
redistributes rules between rounds when an enclave nears its caps.

:class:`RoundScheduler` drives that loop against the simulation clock:

1. carry the round's traffic;
2. at the boundary: collect measured per-rule rates, redistribute if any
   enclave is under pressure (attesting anything newly launched);
3. run the victim's sketch audit; the round's comparison is scored on the
   :class:`~repro.obs.audit.AuditTimeline`, and a (debounced) alert aborts
   the session.

The scheduler is deliberately victim-perspective: it owns no data-plane
state and everything it does is observable/repeatable.  With journaling
enabled (:func:`repro.obs.set_journaling`) every round emits
``round_start`` / ``redistribution`` / ``sketch_audit`` events — and
``bypass_evidence`` with a flight-recorder excerpt on alert — keyed by the
round number, so the whole session replays from the journal artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from repro.core.bypass import BypassEvidence
from repro.core.distribution import RuleDistributionProtocol
from repro.core.session import SessionState, VIFSession
from repro.dataplane.packet import Packet
from repro.errors import ConfigurationError
from repro.obs.audit import AuditAlert, AuditTimeline, DivergenceScore
from repro.obs.events import get_journal
from repro.tee.clock import HostClock

#: "a few minutes" — the paper's suggested round duration.
DEFAULT_ROUND_DURATION_S = 180.0

TrafficSource = Callable[[int], Iterable[Packet]]
DeliveryFn = Callable[[Iterable[Packet]], List[Packet]]


@dataclass
class RoundOutcome:
    """What happened in one filtering round."""

    round_number: int
    started_at_s: float
    packets_sent: int
    packets_delivered: int
    redistributed: bool
    enclaves_after: int
    audit: Optional[BypassEvidence] = None
    divergence: Optional[DivergenceScore] = None
    alerts: List[AuditAlert] = field(default_factory=list)

    @property
    def aborted(self) -> bool:
        """True when this round's (debounced) alerts aborted the session."""
        return bool(self.alerts)


@dataclass
class RoundScheduler:
    """Runs consecutive filtering rounds until told to stop (or aborted)."""

    session: VIFSession
    protocol: RuleDistributionProtocol
    clock: HostClock = field(default_factory=HostClock)
    round_duration_s: float = DEFAULT_ROUND_DURATION_S
    #: Delivery path — override to interpose a (possibly malicious)
    #: filtering network; defaults to the honest controller path.
    deliver: Optional[DeliveryFn] = None
    #: Divergence scoring + alert debounce.  The default (``debounce=1``)
    #: keeps the paper's behavior: evidence in any single round aborts.
    timeline: Optional[AuditTimeline] = None
    outcomes: List[RoundOutcome] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.round_duration_s <= 0:
            raise ConfigurationError("round duration must be positive")
        if self.deliver is None:
            self.deliver = self.session.controller.carry
        if self.timeline is None:
            self.timeline = AuditTimeline(
                session_id=self.session.victim_name
            )

    def run_round(self, traffic: Iterable[Packet]) -> RoundOutcome:
        """Run one full round with the given traffic."""
        if self.session.state is not SessionState.ACTIVE:
            raise ConfigurationError(
                f"session must be active (is {self.session.state.value})"
            )
        round_number = len(self.outcomes) + 1
        started = self.clock.now()
        journal = get_journal()
        if journal.enabled:
            # The ambient round key: everything emitted below this point —
            # attestation, failover, flight-recorder entries — correlates
            # to this round without explicit plumbing.
            journal.set_round(round_number)
            journal.emit(
                "round_start",
                round_id=round_number,
                session_id=self.session.victim_name,
                started_at_s=started,
                round_duration_s=self.round_duration_s,
            )

        packets = list(traffic)
        delivered = self.deliver(packets)
        self.session.observe_delivered(delivered)
        self.clock.advance(self.round_duration_s)

        redistributed = False
        if self.protocol.needs_redistribution(window_s=self.round_duration_s):
            self.session.scale_out(self.protocol, window_s=self.round_duration_s)
            redistributed = True
            if journal.enabled:
                journal.emit(
                    "redistribution",
                    round_id=round_number,
                    session_id=self.session.victim_name,
                    enclaves_after=len(self.session.controller.enclaves),
                )

        try:
            audit = self.session.audit_round(abort_on_evidence=False)
        except ValueError as exc:
            # Structural comparison failure (hash-family derivation or blob
            # version mismatch): journal the typed alert, then fail loudly —
            # an incomparable audit must never read as a clean one.
            self.timeline.record_family_mismatch(
                round_number, exc, observer=f"victim:{self.session.victim_name}"
            )
            raise
        divergence, alerts = self.timeline.record(round_number, audit)
        if alerts:
            # The paper's remedy, now debounced: the victim "can decide to
            # abort the ongoing filtering request".
            self.session.abort()
        outcome = RoundOutcome(
            round_number=round_number,
            started_at_s=started,
            packets_sent=len(packets),
            packets_delivered=len(delivered),
            redistributed=redistributed,
            enclaves_after=len(self.session.controller.enclaves),
            audit=audit,
            divergence=divergence,
            alerts=alerts,
        )
        self.outcomes.append(outcome)
        return outcome

    def run(self, traffic_source: TrafficSource, max_rounds: int) -> List[RoundOutcome]:
        """Run up to ``max_rounds`` rounds; stops early on abort.

        ``traffic_source(round_number)`` supplies each round's packets.
        """
        if max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        for round_number in range(1, max_rounds + 1):
            outcome = self.run_round(traffic_source(round_number))
            if outcome.aborted:
                break
        return list(self.outcomes)
