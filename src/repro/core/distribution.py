"""The Fig 5 master/slave rule redistribution protocol.

Redistribution happens in rounds.  Any enclave may become the master for a
round (the trigger is a threshold breach — an enclave's traffic or rule
count approaching its cap).  The round proceeds:

1. every slave uploads its rule set ``R_i`` and measured per-rule byte
   counts ``B_i`` to the master;
2. the master converts byte counts to bandwidths (using the *controller's*
   wall-clock window — enclave clocks are untrusted) and solves the
   Appendix C/D optimization with the greedy algorithm;
3. the new per-enclave rule sets go to the slaves, and the route map goes
   to the untrusted load balancer;
4. if the plan needs more enclaves, the controller launches and the victim
   attests them before they join (the attestation step lives in
   :mod:`repro.core.session`).

Rule configurations are immutable within a round: "the entire filter rule
set is given and does not change until the next rule reconfiguration".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.controller import IXPController
from repro.core.rules import FilterRule, RuleSet
from repro.errors import DistributionError
from repro.lookup.memory_model import EnclaveMemoryModel, PAPER_MEMORY_MODEL
from repro.optim.greedy import greedy_solve
from repro.optim.problem import Allocation, RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.units import GBPS


@dataclass
class RedistributionRound:
    """Record of one completed redistribution round."""

    round_number: int
    master_index: int
    num_enclaves_before: int
    num_enclaves_after: int
    allocation: Allocation
    rules_moved: int
    rates_bps: Dict[int, float] = field(default_factory=dict)


class RuleDistributionProtocol:
    """Drives redistribution rounds over an :class:`IXPController` fleet."""

    def __init__(
        self,
        controller: IXPController,
        enclave_bandwidth: float = 10 * GBPS,
        memory_model: EnclaveMemoryModel = PAPER_MEMORY_MODEL,
        headroom: float = 0.1,
        bandwidth_threshold: float = 0.9,
        rule_threshold: float = 0.9,
    ) -> None:
        self.controller = controller
        self.enclave_bandwidth = enclave_bandwidth
        self.memory_model = memory_model
        self.headroom = headroom
        self.bandwidth_threshold = bandwidth_threshold
        self.rule_threshold = rule_threshold
        self.rounds: List[RedistributionRound] = []

    # -- trigger -----------------------------------------------------------------

    def needs_redistribution(self, window_s: float) -> bool:
        """True when any enclave is near its bandwidth or rule cap."""
        rates = self.controller.collect_rule_rates(window_s)
        rule_cap = self.memory_model.rule_capacity()
        for enclave in self.controller.enclaves:
            installed = enclave.ecall("installed_rules")
            if len(installed) > self.rule_threshold * rule_cap:
                return True
            enclave_rate = sum(rates.get(r.rule_id, 0.0) for r in installed)
            if enclave_rate > self.bandwidth_threshold * self.enclave_bandwidth:
                return True
        return False

    # -- the round itself -----------------------------------------------------------

    def run_round(
        self,
        window_s: float,
        master_index: int = 0,
        extra_rules: Optional[List[FilterRule]] = None,
    ) -> RedistributionRound:
        """Execute one full Fig 5 round; returns its record.

        ``extra_rules`` lets the victim add rules at a round boundary (the
        only time the rule set may change).
        """
        controller = self.controller
        if not controller.enclaves:
            raise DistributionError("no enclaves to redistribute across")
        if not 0 <= master_index < len(controller.enclaves):
            raise DistributionError(f"bad master index {master_index}")

        # Step 1: slaves (and master) upload {R_i, B_i}.
        merged = RuleSet()
        seen: set = set()
        for enclave in controller.enclaves:
            for rule in enclave.ecall("installed_rules"):
                if rule.rule_id not in seen:
                    seen.add(rule.rule_id)
                    merged.add(rule)
        for rule in extra_rules or []:
            if rule.rule_id not in seen:
                seen.add(rule.rule_id)
                merged.add(rule)
        if len(merged) == 0:
            raise DistributionError("no rules installed anywhere")

        rates = controller.collect_rule_rates(window_s)
        for rule in extra_rules or []:
            rates.setdefault(rule.rule_id, rule.rate_bps)

        # Step 2: master recalculates the allocation.
        rule_list = merged.rules()
        problem = RuleDistributionProblem(
            bandwidths=[rates.get(rule.rule_id, 0.0) for rule in rule_list],
            enclave_bandwidth=self.enclave_bandwidth,
            memory_budget=self.memory_model.performance_budget_bytes,
            bytes_per_rule=self.memory_model.bytes_per_rule,
            base_bytes=self.memory_model.base_bytes,
            headroom=self.headroom,
        )
        allocation = greedy_solve(problem)
        violations = validate_allocation(allocation)
        if violations:
            raise DistributionError(
                "greedy produced an invalid allocation: " + "; ".join(violations)
            )

        # Step 3/4: reconfigure the fleet and the load balancer.
        before = len(controller.enclaves)
        placement_before = self._placement_snapshot()
        controller.apply_allocation(merged, allocation)
        placement_after = self._placement_snapshot()
        moved = self._count_moves(placement_before, placement_after)

        record = RedistributionRound(
            round_number=len(self.rounds) + 1,
            master_index=master_index,
            num_enclaves_before=before,
            num_enclaves_after=len(controller.enclaves),
            allocation=allocation,
            rules_moved=moved,
            rates_bps=rates,
        )
        self.rounds.append(record)
        return record

    # -- the authenticated round (rule re-calc inside the master enclave) -------

    def run_round_authenticated(
        self,
        window_s: float,
        master_index: int = 0,
        extra_rules_sealed: Optional[bytes] = None,
    ) -> RedistributionRound:
        """Fig 5 with end-to-end integrity: the controller only ferries.

        Slaves upload MAC'd ``{R_i, B_i}`` states; the master verifies
        them, recalculates the allocation *inside its enclave*, and returns
        a MAC'd plan; each slave verifies the plan before installing its
        slice.  A controller that modifies any byte in transit produces a
        :class:`~repro.errors.SecureChannelError` instead of a silently
        skewed allocation.  ``extra_rules_sealed`` lets the victim add
        rules at the round boundary over its secure channel to the master.
        """
        import json

        controller = self.controller
        if not controller.enclaves:
            raise DistributionError("no enclaves to redistribute across")
        if not 0 <= master_index < len(controller.enclaves):
            raise DistributionError(f"bad master index {master_index}")

        states = [
            enclave.ecall("export_state_authenticated")
            for enclave in controller.enclaves
        ]
        plan_blob = controller.enclaves[master_index].ecall(
            "master_recalculate",
            states,
            window_s,
            self.enclave_bandwidth,
            self.memory_model.performance_budget_bytes,
            self.memory_model.bytes_per_rule,
            self.memory_model.base_bytes,
            self.headroom,
            extra_rules_sealed,
        )
        # The plan is plaintext + 32-byte MAC; the controller may read it
        # (it must program the load balancer) but cannot alter it.
        plan = json.loads(plan_blob[:-32].decode())

        before = len(controller.enclaves)
        placement_before = self._placement_snapshot()
        needed = len(plan["assignments"])
        if needed > len(controller.enclaves):
            controller.launch_filters(needed - len(controller.enclaves),
                                      scale_out=True)
        elif needed < len(controller.enclaves):
            controller.retire_filters(len(controller.enclaves) - needed)

        rules = RuleSet(FilterRule.from_dict(d) for d in plan["rules"])
        routes: Dict[int, list] = {}
        for j, assignment in enumerate(plan["assignments"]):
            controller.enclaves[j].ecall("set_scale_out_mode", needed > 1)
            controller.enclaves[j].ecall("install_plan_slice", plan_blob, j)
            for rule_id, share in assignment.items():
                routes.setdefault(int(rule_id), []).append((j, float(share)))
        controller.load_balancer.configure(rules, routes)
        controller.state.rules = rules
        controller.state.rule_order = [r.rule_id for r in rules]

        # Rebuild the allocation object for the round record.
        problem = RuleDistributionProblem(
            bandwidths=plan["bandwidths"],
            enclave_bandwidth=plan["params"]["enclave_bandwidth"],
            memory_budget=plan["params"]["memory_budget"],
            bytes_per_rule=plan["params"]["bytes_per_rule"],
            base_bytes=plan["params"]["base_bytes"],
            headroom=plan["params"]["headroom"],
            enclaves_override=needed,
        )
        rule_index = {r.rule_id: i for i, r in enumerate(rules)}
        allocation = Allocation(
            problem=problem,
            assignments=[
                {rule_index[int(rid)]: float(share) for rid, share in a.items()}
                for a in plan["assignments"]
            ],
        )
        controller.state.allocation = allocation
        rates = {
            rule.rule_id: plan["bandwidths"][i]
            for i, rule in enumerate(rules)
        }
        record = RedistributionRound(
            round_number=len(self.rounds) + 1,
            master_index=master_index,
            num_enclaves_before=before,
            num_enclaves_after=len(controller.enclaves),
            allocation=allocation,
            rules_moved=self._count_moves(
                placement_before, self._placement_snapshot()
            ),
            rates_bps=rates,
        )
        self.rounds.append(record)
        return record

    # -- helpers ---------------------------------------------------------------------

    def _placement_snapshot(self) -> Dict[int, set]:
        """rule_id -> set of enclave indexes currently holding it."""
        placement: Dict[int, set] = {}
        for j, enclave in enumerate(self.controller.enclaves):
            for rule in enclave.ecall("installed_rules"):
                placement.setdefault(rule.rule_id, set()).add(j)
        return placement

    @staticmethod
    def _count_moves(before: Dict[int, set], after: Dict[int, set]) -> int:
        """Rules whose replica set changed (installs + removals count once)."""
        moved = 0
        for rule_id in set(before) | set(after):
            if before.get(rule_id, set()) != after.get(rule_id, set()):
                moved += 1
        return moved
