"""The untrusted IXP controller and load balancer (paper IV-B, VI-B, Fig 4/10).

Both components are *outside* the TCB.  The controller launches enclaves on
SGX platforms, learns the victim's rules (the paper accepts that "the VIF
IXP eventually learns and analyzes all the rules"), and programs the
switching fabric; the load balancer steers each inbound flow to the enclave
holding its rule.  Neither can undetectably misbehave:

* mis-steering a flow to an enclave that does not own its rule is flagged by
  that enclave's ``set_assigned_rules`` check;
* dropping flows instead of steering them shows up in the neighbor-side
  incoming-log audit;
* bypassing the filters entirely shows up in the victim-side outgoing-log
  audit.

The honest implementations live here; adversarial variants subclass
:class:`LoadBalancer` in :mod:`repro.adversary.filtering_network`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro import obs
from repro.core.enclave_filter import EnclaveFilter
from repro.core.filter import ConnectionPreservingMode
from repro.core.rules import RuleSet
from repro.dataplane.packet import FiveTuple, Packet
from repro.errors import ConfigurationError, DistributionError
from repro.optim.problem import Allocation
from repro.sketch.countmin import CountMinSketch
from repro.tee.attestation import IASService
from repro.tee.enclave import Enclave, Platform
from repro.tee.epc import EPCAccounting
from repro.util.rng import stable_hash64


#: Sentinel verdict from :meth:`LoadBalancer.route` for packets matching a
#: *shed* rule: the rule lost its enclave in a capacity-loss failover and its
#: traffic must be dropped at the switch, never forwarded unfiltered
#: (fail-closed degradation).
BLACKHOLE = "blackhole"


class LoadBalancer:
    """Flow-sticky weighted routing of packets to enclaves.

    Routing state is a map ``rule_id -> [(enclave_index, weight)]`` derived
    from an :class:`~repro.optim.problem.Allocation`: a split rule's traffic
    is divided across its replicas in proportion to the allocated bandwidth,
    with per-flow stickiness (a flow hashes to exactly one replica, so
    connection preservation survives the split).

    A rule may additionally be *blackholed* (graceful degradation under
    capacity loss): matching packets get the :data:`BLACKHOLE` verdict and
    are dropped by the carrier instead of being routed or forwarded.
    """

    def __init__(self) -> None:
        self._rules = RuleSet()
        self._routes: Dict[int, List[Tuple[int, float]]] = {}
        self._blackholed: Set[int] = set()
        registry = obs.get_registry()
        label = obs.next_instance_label("lb")
        self._unrouted_c = registry.counter(
            "vif_lb_unrouted_packets_total",
            help="Packets matching no installed rule (default path)",
            lb=label,
        )
        self._blackholed_c = registry.counter(
            "vif_lb_blackholed_packets_total",
            help="Packets for shed rules, dropped fail-closed at the switch",
            lb=label,
        )

    @property
    def unrouted_packets(self) -> int:
        """Packets routed to no enclave (stored in the metrics registry)."""
        return self._unrouted_c.value

    @unrouted_packets.setter
    def unrouted_packets(self, value: int) -> None:
        self._unrouted_c.set(value)

    @property
    def blackholed_packets(self) -> int:
        """Packets dropped fail-closed (stored in the metrics registry)."""
        return self._blackholed_c.value

    @blackholed_packets.setter
    def blackholed_packets(self, value: int) -> None:
        self._blackholed_c.set(value)

    def configure(
        self, rules: RuleSet, routes: Dict[int, List[Tuple[int, float]]]
    ) -> None:
        """Install the (untrusted copies of) rules and the routing map."""
        for rule_id, replicas in routes.items():
            if rule_id not in rules:
                raise ConfigurationError(f"route for unknown rule {rule_id}")
            if not replicas:
                raise ConfigurationError(f"rule {rule_id} has no replicas")
            # A NaN weight passes ``w < 0`` (every NaN comparison is False),
            # poisons ``total`` in route(), and silently lands all of the
            # rule's traffic on the last replica; infinities skew the split
            # just as silently.  Reject anything non-finite loudly.
            if any(not math.isfinite(w) for _, w in replicas):
                raise ConfigurationError(f"rule {rule_id} has a non-finite weight")
            if any(w < 0 for _, w in replicas):
                raise ConfigurationError(f"rule {rule_id} has a negative weight")
        self._rules = rules
        self._routes = {rid: list(reps) for rid, reps in routes.items()}
        self._blackholed -= set(self._routes)

    def blackhole(self, rule_ids: Iterable[int]) -> None:
        """Mark shed rules: their traffic is dropped, not forwarded."""
        for rule_id in rule_ids:
            self._blackholed.add(rule_id)
            self._routes.pop(rule_id, None)

    @property
    def blackholed_rule_ids(self) -> Set[int]:
        return set(self._blackholed)

    @staticmethod
    def shard_for_flow(
        flow: "FiveTuple", num_shards: int, salt: str = "rss"
    ) -> int:
        """RSS-style deterministic shard assignment for a flow.

        The multi-core data plane (:mod:`repro.dataplane.shard`) splits
        traffic across worker processes the way a NIC's receive-side scaling
        splits it across cores: a flow hash over the five-tuple, modulo the
        worker count.  Built on :func:`~repro.util.rng.stable_hash64`, so the
        assignment is identical in every process — the coordinator, a
        worker, and a victim replaying the trace all agree which worker owned
        which flow, which is what makes per-worker sketch logs auditable
        after a central merge.  Flow-granular by construction: every packet
        of a flow lands on the same worker, so per-flow state (connection
        preservation, exact-match entries) never straddles shards.
        """
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if num_shards == 1:
            return 0
        return stable_hash64(flow.key(), salt=f"rss/{salt}") % num_shards

    def route(self, packet: Packet) -> Union[int, str, None]:
        """The enclave index for ``packet``, or a non-routing verdict.

        Returns ``None`` when no rule matches — unmatched traffic takes the
        default path (no filtering requested for it), the honest behavior —
        or :data:`BLACKHOLE` when the matching rule was shed and its traffic
        must be dropped fail-closed.
        """
        rule = self._rules.match(packet.five_tuple)
        if rule is not None and rule.rule_id in self._blackholed:
            self.blackholed_packets += 1
            return BLACKHOLE
        if rule is None or rule.rule_id not in self._routes:
            self.unrouted_packets += 1
            return None
        replicas = self._routes[rule.rule_id]
        if len(replicas) == 1:
            return replicas[0][0]
        total = sum(w for _, w in replicas)
        if total <= 0:
            return replicas[0][0]
        point = (
            stable_hash64(packet.five_tuple.key(), salt=f"lb/{rule.rule_id}")
            / float(2**64)
        ) * total
        cumulative = 0.0
        for enclave_index, weight in replicas:
            cumulative += weight
            if point < cumulative:
                return enclave_index
        return replicas[-1][0]


@dataclass
class DeploymentState:
    """What the controller currently has installed."""

    rules: RuleSet = field(default_factory=RuleSet)
    allocation: Optional[Allocation] = None
    rule_order: List[int] = field(default_factory=list)  # index -> rule_id


class IXPController:
    """Launches filters, applies allocations, and moves packets through them."""

    def __init__(
        self,
        ias: IASService,
        enclave_secret_seed: str = "vif-ixp",
        mode: ConnectionPreservingMode = ConnectionPreservingMode.HYBRID,
        sketch_seed: str = "vif",
    ) -> None:
        self.ias = ias
        self.enclave_secret_seed = enclave_secret_seed
        self.mode = mode
        self.sketch_seed = sketch_seed
        self.load_balancer = LoadBalancer()
        self.enclaves: List[Enclave] = []
        self.programs: List[EnclaveFilter] = []
        self.state = DeploymentState()
        self._platform_counter = 0

    # -- enclave lifecycle ------------------------------------------------------

    def launch_filters(self, count: int, scale_out: Optional[bool] = None) -> List[Enclave]:
        """Launch ``count`` fresh filter enclaves on fresh platforms.

        ``scale_out`` defaults to True when the deployment will hold more
        than one enclave (enables the assigned-rules misbehavior check).
        """
        if count <= 0:
            raise ConfigurationError("count must be positive")
        if scale_out is None:
            scale_out = (len(self.enclaves) + count) > 1
        launched: List[Enclave] = []
        for _ in range(count):
            self._platform_counter += 1
            platform = Platform(f"ixp-server-{self._platform_counter}")
            self.ias.provision(platform)
            program = EnclaveFilter(
                secret=f"{self.enclave_secret_seed}/{self._platform_counter}",
                mode=self.mode,
                sketch_seed=self.sketch_seed,
                scale_out_mode=scale_out,
                decision_secret=f"{self.enclave_secret_seed}/fleet",
            )
            enclave = platform.launch(program)
            self.enclaves.append(enclave)
            self.programs.append(program)
            launched.append(enclave)
        return launched

    def relaunch_filter(
        self,
        index: int,
        platform: Optional[Platform] = None,
        epc: Optional["EPCAccounting"] = None,
    ) -> Enclave:
        """Replace the (dead) enclave at ``index`` with a fresh launch.

        Reuses the dead enclave's platform unless a replacement ``platform``
        is supplied (platform loss).  The fresh program gets a new channel
        secret — the victim must re-attest it — but the shared fleet
        decision secret, so hash-based flow verdicts survive the failover.
        The replacement starts with empty rule tables and sketch logs;
        callers reinstall rules and re-base audits.
        """
        if not 0 <= index < len(self.enclaves):
            raise ConfigurationError(f"no enclave at index {index}")
        old = self.enclaves[index]
        old.destroy()  # idempotent: usually already dead
        if platform is None:
            platform = old.platform
        self.ias.provision(platform)
        self._platform_counter += 1
        program = EnclaveFilter(
            secret=f"{self.enclave_secret_seed}/relaunch-{self._platform_counter}",
            mode=self.mode,
            sketch_seed=self.sketch_seed,
            scale_out_mode=len(self.enclaves) > 1,
            decision_secret=f"{self.enclave_secret_seed}/fleet",
        )
        enclave = platform.launch(program, epc=epc)
        self.enclaves[index] = enclave
        self.programs[index] = program
        return enclave

    def retire_filters(self, count: int) -> None:
        """Destroy the last ``count`` enclaves (shrinking deployments)."""
        if count <= 0 or count > len(self.enclaves):
            raise ConfigurationError("bad retire count")
        for _ in range(count):
            enclave = self.enclaves.pop()
            self.programs.pop()
            enclave.destroy()

    # -- rule installation ---------------------------------------------------------

    def install_single_filter(self, rules: RuleSet) -> None:
        """The single-enclave deployment: all rules on filter 0."""
        if not self.enclaves:
            self.launch_filters(1, scale_out=False)
        rule_list = rules.rules()
        self.enclaves[0].ecall("install_rules", rule_list)
        routes = {rule.rule_id: [(0, 1.0)] for rule in rule_list}
        self.load_balancer.configure(rules, routes)
        self.state.rules = rules
        self.state.rule_order = [rule.rule_id for rule in rule_list]
        self.state.allocation = None

    def apply_allocation(self, rules: RuleSet, allocation: Allocation) -> None:
        """Install an optimizer allocation across the enclave fleet.

        ``allocation`` indexes rules by position in ``rules.rules()`` order;
        the fleet is grown/shrunk to the allocation's enclave count, each
        enclave gets its subset (and its assigned-id list for misbehavior
        detection), and the load balancer gets the weighted routes.
        """
        rule_list = rules.rules()
        if allocation.problem.num_rules != len(rule_list):
            raise DistributionError(
                "allocation rule count does not match the rule set"
            )
        needed = len(allocation.assignments)
        if needed > len(self.enclaves):
            self.launch_filters(needed - len(self.enclaves), scale_out=True)
        elif needed < len(self.enclaves):
            self.retire_filters(len(self.enclaves) - needed)

        scale_out = len(allocation.assignments) > 1
        routes: Dict[int, List[Tuple[int, float]]] = {}
        for j, share_map in enumerate(allocation.assignments):
            self.enclaves[j].ecall("set_scale_out_mode", scale_out)
            subset = [rule_list[i] for i in sorted(share_map)]
            installed = {r.rule_id for r in self.enclaves[j].ecall("installed_rules")}
            to_remove = installed - {r.rule_id for r in subset}
            to_add = [r for r in subset if r.rule_id not in installed]
            if to_remove:
                self.enclaves[j].ecall("remove_rules", sorted(to_remove))
            if to_add:
                self.enclaves[j].ecall("install_rules", to_add)
            self.enclaves[j].ecall(
                "set_assigned_rules", [r.rule_id for r in subset]
            )
            for i, share in share_map.items():
                routes.setdefault(rule_list[i].rule_id, []).append((j, share))

        self.load_balancer.configure(rules, routes)
        self.state.rules = rules
        self.state.rule_order = [rule.rule_id for rule in rule_list]
        self.state.allocation = allocation

    # -- data path --------------------------------------------------------------

    #: Max packets per ``process_burst`` ECall on the carry path (stays
    #: well under :attr:`EnclaveFilter.MAX_BURST`).
    carry_burst_size = 64

    def carry(self, packets: Iterable[Packet]) -> List[Packet]:
        """Move packets through the deployment; returns the forwarded ones.

        Honest behavior: every packet matching an installed rule goes through
        its enclave; unmatched packets are forwarded unfiltered.  Consecutive
        packets routed to the same enclave share one ``process_burst`` ECall
        (up to :attr:`carry_burst_size`), so the enclave-transition count
        scales with bursts, not packets; verdicts and log contents are
        identical to the per-packet path, and delivery order is preserved.
        """
        forwarded: List[Packet] = []
        burst: List[Packet] = []
        burst_enclave: Optional[int] = None

        def flush() -> None:
            nonlocal burst, burst_enclave
            if burst_enclave is None:
                return
            verdicts = self.enclaves[burst_enclave].ecall("process_burst", burst)
            recorder = obs.get_flight_recorder()
            if recorder.enabled:
                round_id = obs.get_journal().current_round
                rules = self.state.rules
                entries = []
                for packet, ok in zip(burst, verdicts):
                    rule = rules.match(packet.five_tuple)
                    entries.append(
                        (
                            packet.five_tuple.key().decode(),
                            rule.rule_id if rule is not None else None,
                            "allowed" if ok else "dropped",
                            round_id,
                        )
                    )
                recorder.record_batch(entries)
            forwarded.extend(
                packet for packet, ok in zip(burst, verdicts) if ok
            )
            burst = []
            burst_enclave = None

        for packet in packets:
            enclave_index = self.load_balancer.route(packet)
            if enclave_index is BLACKHOLE:
                continue  # shed rule: fail-closed drop (counted by the LB)
            if enclave_index is None:
                flush()
                forwarded.append(packet)
                continue
            if (
                enclave_index != burst_enclave
                or len(burst) >= self.carry_burst_size
            ):
                flush()
                burst_enclave = enclave_index
            burst.append(packet)
        flush()
        return forwarded

    # -- telemetry ---------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Deployment-level counters, including the load balancer's.

        ``unrouted_packets`` (traffic matching no installed rule, forwarded
        on the default path) and ``blackholed_packets`` (traffic for shed
        rules, dropped fail-closed) previously accumulated invisibly inside
        the load balancer; surfacing them here keeps the controller's books
        reconcilable against pipeline accounting.  Destroyed enclaves are
        skipped rather than queried (their counters are unreachable), and
        reported under ``dead_enclaves``.
        """
        totals = {
            "enclaves": len(self.enclaves),
            "dead_enclaves": sum(1 for e in self.enclaves if e.destroyed),
            "unrouted_packets": self.load_balancer.unrouted_packets,
            "blackholed_packets": self.load_balancer.blackholed_packets,
            "packets_processed": 0,
            "packets_allowed": 0,
            "packets_dropped": 0,
        }
        for enclave in self.enclaves:
            if enclave.destroyed:
                continue
            report = enclave.ecall("report")
            totals["packets_processed"] += report.packets_processed
            totals["packets_allowed"] += report.packets_allowed
            totals["packets_dropped"] += report.packets_dropped
        return totals

    def collect_rule_rates(self, window_s: float) -> Dict[int, float]:
        """Aggregate per-rule byte counters into bps over ``window_s``.

        The division by wall time happens *here*, on the untrusted side,
        because enclave clocks are untrusted (paper footnote 6).  A lying
        controller only sabotages its own optimizer input.
        """
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        totals: Dict[int, int] = {}
        for enclave in self.enclaves:
            for rule_id, nbytes in enclave.ecall("export_rule_rates").items():
                totals[rule_id] = totals.get(rule_id, 0) + nbytes
        return {rid: nbytes * 8 / window_s for rid, nbytes in totals.items()}

    def collect_incoming_logs(self) -> List[CountMinSketch]:
        """Each enclave's incoming sketch (for neighbor audits in tests)."""
        return [p._logs.incoming.sketch.copy() for p in self.programs]

    def collect_outgoing_logs(self) -> List[CountMinSketch]:
        """Each enclave's outgoing sketch (for victim audits in tests).

        The production path fetches these through the sealed channel
        (:meth:`EnclaveFilter.export_logs`); tests shortcut via this helper.
        """
        return [p._logs.outgoing.sketch.copy() for p in self.programs]

    def misbehavior_reports(self) -> List[str]:
        """Load-balancer misbehavior events from every enclave."""
        events: List[str] = []
        for enclave in self.enclaves:
            events.extend(enclave.ecall("misbehavior_report"))
        return events

    def rule_update_tick(self) -> int:
        """Run the Appendix-F batch conversion on every enclave."""
        return sum(enclave.ecall("rule_update_tick") for enclave in self.enclaves)
