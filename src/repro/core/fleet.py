"""Fault-tolerant fleet management for the filtering enclaves.

The paper's scale-out design (VI-B, Appendix C) distributes rules over ~50
enclaves but assumes the fleet stays healthy; its own threat model admits the
untrusted IXP can kill an enclave at any time.  A dead enclave fails closed
(every ECall raises), which is safe but not *available*: rules assigned to it
blackhole their traffic until somebody notices.  :class:`FleetManager` is
that somebody.  It keeps the deployment serving through crashes, platform
loss, EPC exhaustion and IAS outages:

* **health monitoring** — cheap ``ping`` ECall probes per round; an enclave
  is SUSPECT after one missed probe and DEAD after a configurable streak
  (the data path also marks an enclave dead the moment a burst ECall raises
  :class:`~repro.errors.EnclaveSealedError`, so detection never waits for
  the prober);
* **failover** — a dead enclave is relaunched on its platform when the
  platform survives, else on a spare platform from a bounded budget; the
  replacement is re-attested through the victim's
  :class:`~repro.core.session.VIFSession` with bounded retry + exponential
  backoff (deterministic jitter from :mod:`repro.util.rng`), so a transient
  IAS outage delays recovery instead of aborting it;
* **incremental re-distribution** — when no relaunch is possible, the
  orphaned rules are greedily re-packed onto survivors
  (:func:`~repro.optim.repair.repair_allocation`), preserving every
  survivor's rule set; only if repair is infeasible does the manager fall
  back to a full :func:`~repro.optim.greedy.greedy_solve` over the
  surviving fleet;
* **graceful degradation** — when surviving capacity is below demand, rules
  are shed in priority/bandwidth order (:func:`~repro.optim.repair.shed_order`)
  and their traffic is *blackholed at the load balancer* — never passed
  unfiltered (fail-closed, the AITF partial-filtering stance) — with the
  shed set reported exactly.

Every decision is deterministic given the seed, so the fault-injection
harness (:mod:`repro.faults`) replays recovery paths bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.core.controller import BLACKHOLE, IXPController
from repro.core.rules import RuleSet
from repro.core.session import VIFSession
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import UNROUTED
from repro.errors import (
    AttestationError,
    ConfigurationError,
    EnclaveError,
    EnclaveMemoryError,
    EnclaveSealedError,
    FleetError,
    InfeasibleError,
    RecoveryFailed,
)
from repro.optim.greedy import greedy_solve
from repro.optim.problem import Allocation, RuleDistributionProblem
from repro.optim.repair import repair_allocation, shed_order
from repro.tee.attestation import PAPER_ATTESTATION_TIMING
from repro.tee.enclave import Platform
from repro.tee.epc import EPCAccounting
from repro.util.rng import deterministic_rng


class EnclaveHealth(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class FleetConfig:
    """Knobs for health monitoring and recovery."""

    #: Consecutive missed probes before an enclave is declared DEAD.
    miss_threshold: int = 2
    #: Attestation attempts per recovery before :class:`RecoveryFailed`.
    max_attestation_attempts: int = 6
    #: First retry backoff (simulated seconds); doubles per attempt.
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    #: Jitter as a fraction of the current delay (deterministic, seeded).
    backoff_jitter: float = 0.25
    #: Replacement platforms available when a platform is lost outright.
    spare_platforms: int = 4
    #: Simulated cost of launching a replacement enclave.
    relaunch_time_s: float = 0.5
    #: Simulated cost of a repair / full re-solve (rule reinstalls plus
    #: load-balancer route updates across the surviving fleet).
    redistribution_time_s: float = 0.25
    #: Seed for the deterministic backoff-jitter stream.
    seed: str = "vif-fleet"


def _fleet_counter(name: str, doc: str):
    """A counter attribute whose storage is a registry series."""

    def getter(self: "FleetCounters"):
        return self._counters[name].value

    def setter(self: "FleetCounters", value) -> None:
        self._counters[name].set(value)

    return property(getter, setter, doc=doc)


class FleetCounters:
    """Recovery observability; ``unfiltered_packets`` must stay 0.

    Fields are stored in the metrics registry as ``vif_fleet_<field>_total``
    series labeled per fleet instance, so the legacy attribute API and the
    Prometheus exposition read the same memory.  The two ``*_s``/``*_bps``
    fields are cumulative sums, not event counts.
    """

    FIELDS = (
        "probes",
        "probe_misses",
        "failovers",
        "relaunches",
        "attestation_retries",
        "repairs",
        "full_resolves",
        "rules_rehomed",
        "rules_shed",
        "shed_bandwidth_bps",
        "shed_drops",
        "failclosed_drops",
        "routing_anomalies",
        "unfiltered_packets",
        "recovery_time_s",
    )

    _HELP = {
        "probes": "Heartbeat ECalls issued",
        "probe_misses": "Heartbeat ECalls that raised",
        "failovers": "Dead slots handled by recover()",
        "relaunches": "Replacement enclaves brought up",
        "attestation_retries": "Attestation attempts that hit an IAS outage",
        "repairs": "Incremental allocation repairs",
        "full_resolves": "Full re-solves over the surviving fleet",
        "rules_rehomed": "Rules moved to a surviving enclave",
        "rules_shed": "Rules shed under capacity loss (blackholed)",
        "shed_bandwidth_bps": "Cumulative bandwidth of shed rules",
        "shed_drops": "Packets dropped because their rule was shed",
        "failclosed_drops": "Packets dropped because their enclave was dead",
        "routing_anomalies": "Rule-matching packets the LB left unrouted",
        "unfiltered_packets": "Delivered rule traffic no enclave adjudicated (must stay 0)",
        "recovery_time_s": "Cumulative simulated recovery time",
    }

    def __init__(
        self,
        registry: Optional["obs.MetricsRegistry"] = None,
        fleet: Optional[str] = None,
        **initial,
    ) -> None:
        reg = registry or obs.get_registry()
        self.fleet_label = fleet or obs.next_instance_label("fleet")
        self._counters = {
            name: reg.counter(
                f"vif_fleet_{name}_total",
                help=self._HELP[name],
                fleet=self.fleet_label,
            )
            for name in self.FIELDS
        }
        for name, value in initial.items():
            if name not in self._counters:
                raise TypeError(f"unknown fleet counter {name!r}")
            self._counters[name].set(value)

    probes = _fleet_counter("probes", _HELP["probes"])
    probe_misses = _fleet_counter("probe_misses", _HELP["probe_misses"])
    failovers = _fleet_counter("failovers", _HELP["failovers"])
    relaunches = _fleet_counter("relaunches", _HELP["relaunches"])
    attestation_retries = _fleet_counter(
        "attestation_retries", _HELP["attestation_retries"]
    )
    repairs = _fleet_counter("repairs", _HELP["repairs"])
    full_resolves = _fleet_counter("full_resolves", _HELP["full_resolves"])
    rules_rehomed = _fleet_counter("rules_rehomed", _HELP["rules_rehomed"])
    rules_shed = _fleet_counter("rules_shed", _HELP["rules_shed"])
    shed_bandwidth_bps = _fleet_counter(
        "shed_bandwidth_bps", _HELP["shed_bandwidth_bps"]
    )
    shed_drops = _fleet_counter("shed_drops", _HELP["shed_drops"])
    failclosed_drops = _fleet_counter(
        "failclosed_drops", _HELP["failclosed_drops"]
    )
    routing_anomalies = _fleet_counter(
        "routing_anomalies", _HELP["routing_anomalies"]
    )
    unfiltered_packets = _fleet_counter(
        "unfiltered_packets", _HELP["unfiltered_packets"]
    )
    recovery_time_s = _fleet_counter("recovery_time_s", _HELP["recovery_time_s"])

    def as_dict(self) -> Dict[str, float]:
        return {name: self._counters[name].value for name in self.FIELDS}

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={self._counters[n].value}" for n in self.FIELDS)
        return f"FleetCounters({inner})"


@dataclass
class RecoveryReport:
    """What one :meth:`FleetManager.recover` call did."""

    relaunched_slots: List[int] = field(default_factory=list)
    orphaned_slots: List[int] = field(default_factory=list)
    repaired: bool = False
    full_resolve: bool = False
    rules_rehomed: int = 0
    shed_rule_ids: List[int] = field(default_factory=list)
    shed_bandwidth_bps: float = 0.0

    @property
    def acted(self) -> bool:
        return bool(self.relaunched_slots or self.orphaned_slots)


@dataclass
class CarryResult:
    """One traffic round through the fleet, with fail-closed accounting."""

    delivered: List[Packet] = field(default_factory=list)
    #: ``id()`` of delivered packets adjudicated (and allowed) by a live
    #: enclave — the harness audits delivered ∖ filtered against the rules.
    filtered_ids: Set[int] = field(default_factory=set)
    allowed: int = 0
    dropped_filtered: int = 0
    unrouted: int = 0
    dropped_shed: int = 0
    dropped_failclosed: int = 0

    @property
    def sent(self) -> int:
        return (
            self.allowed
            + self.dropped_filtered
            + self.unrouted
            + self.dropped_shed
            + self.dropped_failclosed
        )


@dataclass
class RoundResult:
    """One fleet round: probe, recover, carry."""

    health: List[EnclaveHealth]
    recovery: RecoveryReport
    carry: CarryResult


# Internal per-packet verdict tags.
_ALLOWED = "allowed"
_DROPPED = "dropped"
_UNROUTED = "unrouted"
_SHED = "shed"
_FAILCLOSED = "failclosed"


class FleetManager:
    """Keeps an :class:`IXPController` fleet serving through failures."""

    def __init__(
        self,
        controller: IXPController,
        session: Optional[VIFSession] = None,
        config: Optional[FleetConfig] = None,
    ) -> None:
        self.controller = controller
        self.session = session
        self.config = config or FleetConfig()
        self.counters = FleetCounters()
        # Carry-path conservation books.  These are incremented ONLY inside
        # carry() (FleetBurstFilter routes its drops into the shared
        # shed/failclosed counters too, which is why the invariant needs its
        # own offered/outcome series rather than reusing FleetCounters).
        registry = obs.get_registry()
        label = self.counters.fleet_label
        self._carry_counters = {
            name: registry.counter(
                f"vif_fleet_carry_{name}_total",
                help=f"Carry-path packets: {name}",
                fleet=label,
            )
            for name in (
                "offered",
                "allowed",
                "dropped_filtered",
                "unrouted",
                "shed",
                "failclosed",
            )
        }
        self._recovery_hist = registry.histogram(
            "vif_fleet_recovery_seconds",
            help="Simulated recovery time per acted recover() call",
            buckets=obs.RECOVERY_BUCKETS,
            fleet=label,
        )
        registry.register_invariant(
            f"fleet_carry_conservation/{label}", self._carry_violation
        )
        self._rng = deterministic_rng(f"{self.config.seed}/backoff")
        self._health: List[EnclaveHealth] = []
        self._misses: List[int] = []
        self._rules = RuleSet()
        self._rule_order: List[int] = []
        self._bandwidths: List[float] = []
        self._priorities: Dict[int, int] = {}
        self._allocation: Optional[Allocation] = None
        self._problem_params: Dict[str, object] = {}
        self._shed: Set[int] = set()
        self._failed_platforms: Set[str] = set()
        self._platform_epc_caps: Dict[str, int] = {}
        self._spares_used = 0

    # -- deployment -------------------------------------------------------------

    def deploy(
        self,
        rules: RuleSet,
        bandwidths: Optional[Sequence[float]] = None,
        priorities: Optional[Dict[int, int]] = None,
        **problem_params: object,
    ) -> Allocation:
        """Solve, launch, install and (when a session is attached) attest.

        ``bandwidths`` defaults to each rule's measured ``rate_bps`` in rule
        id order; ``priorities`` feeds the shed policy (higher survives
        longer); remaining keyword arguments go to
        :class:`~repro.optim.problem.RuleDistributionProblem` (e.g.
        ``enclave_bandwidth``, ``enclaves_override``).
        """
        rule_list = rules.rules()
        if not rule_list:
            raise ConfigurationError("deploy needs at least one rule")
        if bandwidths is None:
            bandwidths = [rule.rate_bps for rule in rule_list]
        if len(bandwidths) != len(rule_list):
            raise ConfigurationError("bandwidths do not match the rule set")
        problem = RuleDistributionProblem(
            bandwidths=list(bandwidths), **problem_params
        )
        allocation = greedy_solve(problem)
        self.controller.apply_allocation(rules, allocation)

        self._rules = rules
        self._rule_order = [rule.rule_id for rule in rule_list]
        self._bandwidths = list(bandwidths)
        self._priorities = dict(priorities or {})
        self._allocation = allocation
        self._problem_params = dict(problem_params)
        self._problem_params.pop("enclaves_override", None)
        self._shed = set()
        self._sync_health(reset=True)
        if self.session is not None:
            self._attest_with_retry()
        return allocation

    # -- health monitoring --------------------------------------------------------

    def probe(self) -> List[EnclaveHealth]:
        """One heartbeat round: ``ping`` every enclave, update health."""
        self._sync_health()
        for j, enclave in enumerate(self.controller.enclaves):
            if self._health[j] is EnclaveHealth.DEAD:
                continue  # stays dead until recover() replaces it
            self.counters.probes += 1
            try:
                enclave.ecall("ping")
            except EnclaveError:
                self.counters.probe_misses += 1
                self._misses[j] += 1
                self._health[j] = (
                    EnclaveHealth.DEAD
                    if self._misses[j] >= self.config.miss_threshold
                    else EnclaveHealth.SUSPECT
                )
            else:
                self._misses[j] = 0
                self._health[j] = EnclaveHealth.HEALTHY
        return list(self._health)

    @property
    def health(self) -> List[EnclaveHealth]:
        return list(self._health)

    def health_summary(self) -> Dict[str, object]:
        """JSON-safe fleet health rollup (telemetry ``/readyz``/``/varz``).

        Counts the last-known per-slot states without probing — this is a
        read, safe to call from a scrape handler at any time.
        """
        self._sync_health()
        counts = {state.value: 0 for state in EnclaveHealth}
        for state in self._health:
            counts[state.value] += 1
        return {
            "slots": len(self._health),
            "by_state": counts,
            "all_healthy": counts[EnclaveHealth.HEALTHY.value]
            == len(self._health),
            "shed_rules": len(self._shed),
            "spares_used": self._spares_used,
        }

    @property
    def allocation(self) -> Optional[Allocation]:
        return self._allocation

    @property
    def shed_rule_ids(self) -> Set[int]:
        return set(self._shed)

    @property
    def active_rule_ids(self) -> List[int]:
        return list(self._rule_order)

    # -- multi-core sharded data plane ---------------------------------------------

    def sharded_data_plane(self, num_workers: int, **kwargs):
        """A :class:`~repro.dataplane.shard.ShardedDataPlane` over this fleet's rules.

        The workers are filter replicas of this deployment: same rule set,
        same connection-preserving mode, same sketch families, and the
        *shared fleet decision secret* — so every hash-based verdict matches
        what the fleet's enclaves would decide, and the centrally merged
        worker sketches are directly comparable with the fleet's audit logs.
        The caller owns the returned plane's lifecycle (use it as a context
        manager, call ``finish()`` for the merged result).
        """
        from repro.dataplane.shard import ShardedDataPlane

        controller = self.controller
        return ShardedDataPlane(
            rules=controller.state.rules.rules(),
            num_workers=num_workers,
            decision_secret=f"{controller.enclave_secret_seed}/fleet",
            mode=controller.mode,
            sketch_seed=controller.sketch_seed,
            **kwargs,
        )

    # -- hot rule updates (the serve control plane) ---------------------------------

    def _wanted_by_slot(self) -> List[Set[int]]:
        """Per-slot rule-id sets under the current allocation."""
        wanted: List[Set[int]] = [
            set() for _ in range(len(self.controller.enclaves))
        ]
        if self._allocation is None:
            return wanted
        for j, share_map in enumerate(self._allocation.assignments):
            if j < len(wanted):
                wanted[j] = {self._rule_order[i] for i in share_map}
        return wanted

    def install_rule(
        self,
        rule,
        bandwidth: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> List[int]:
        """Hot-install one rule into the serving fleet, without redeploy.

        Re-solves the distribution over the live slots, diff-installs only
        the deltas (surviving enclaves keep their rule sets wherever the
        solver allows), rebuilds the load-balancer routes, and — when a
        victim session is attached — re-attests every enclave whose rule
        set changed, through the same bounded retry/backoff machinery that
        failover uses.  If no feasible allocation admits the new rule, it
        is installed *shed*: blackholed at the load balancer (fail-closed)
        rather than rejected, so its traffic never passes unfiltered.
        Returns the slots whose rule sets changed.
        """
        if self._allocation is None and self._rule_order:
            raise FleetError("deploy() the fleet before hot rule updates")
        self._rules.add(rule)
        if priority is not None:
            self._priorities[rule.rule_id] = priority
        bw = rule.rate_bps if bandwidth is None else float(bandwidth)
        changed = self._resolve_live(
            add=(rule.rule_id, bw), action="install", rule_id=rule.rule_id
        )
        return changed

    def remove_rule(self, rule_id: int) -> List[int]:
        """Hot-retract one rule from the serving fleet, without redeploy.

        The inverse of :meth:`install_rule`: books are updated, the
        allocation is re-solved over the remaining active rules (always
        feasible — demand only shrinks), deltas are diff-installed, and
        changed enclaves are re-attested.  Removing a shed rule simply
        lifts its blackhole.  Returns the slots whose rule sets changed.
        """
        self._rules.remove(rule_id)  # raises RuleError on unknown id
        self._priorities.pop(rule_id, None)
        if rule_id in self._shed:
            self._shed.discard(rule_id)
            self.controller.load_balancer.configure(
                self._rules, self._current_routes()
            )
            if self._shed:
                self.controller.load_balancer.blackhole(self._shed)
            self._journal_rule_update("remove", rule_id, [], shed=True)
            return []
        return self._resolve_live(
            drop=rule_id, action="remove", rule_id=rule_id
        )

    def _current_routes(self) -> Dict[int, List[Tuple[int, float]]]:
        """LB routes implied by the current allocation (for rebuilds)."""
        routes: Dict[int, List[Tuple[int, float]]] = {}
        if self._allocation is None:
            return routes
        for j, share_map in enumerate(self._allocation.assignments):
            for i, share in share_map.items():
                routes.setdefault(self._rule_order[i], []).append((j, share))
        return routes

    def _resolve_live(
        self,
        action: str,
        rule_id: int,
        add: Optional[Tuple[int, float]] = None,
        drop: Optional[int] = None,
    ) -> List[int]:
        """Re-solve over live slots after a rule delta and install the diff."""
        before = self._wanted_by_slot()
        active = [
            (rid, bw)
            for rid, bw in zip(self._rule_order, self._bandwidths)
            if rid != drop
        ]
        if add is not None:
            active.append(add)
        live_slots = [
            j
            for j in range(len(self.controller.enclaves))
            if not self.controller.enclaves[j].destroyed
            and not (
                j < len(self._health)
                and self._health[j] is EnclaveHealth.DEAD
            )
        ]
        allocation: Optional[Allocation] = None
        if active and live_slots:
            problem = RuleDistributionProblem(
                bandwidths=[bw for _, bw in active],
                enclaves_override=len(live_slots),
                **self._problem_params,  # type: ignore[arg-type]
            )
            try:
                allocation = greedy_solve(problem)
            except InfeasibleError:
                if add is not None:
                    # No capacity for the new rule: fail closed — install
                    # it blackholed instead of letting its traffic pass.
                    self._shed.add(add[0])
                    self.counters.rules_shed += 1
                    self.counters.shed_bandwidth_bps += add[1]
                    self.controller.load_balancer.blackhole({add[0]})
                    self._journal_rule_update(action, rule_id, [], shed=True)
                    return []
                raise
        self._rule_order = [rid for rid, _ in active]
        self._bandwidths = [bw for _, bw in active]

        if allocation is None:
            self._allocation = None
            self._install_assignments([])
            self._journal_rule_update(action, rule_id, [], shed=False)
            return []

        # Map solver enclave indices back onto the physical live slots.
        slot_assignments: List[Dict[int, float]] = [
            {} for _ in range(len(self.controller.enclaves))
        ]
        for solver_j, share_map in enumerate(allocation.assignments):
            if solver_j < len(live_slots):
                slot_assignments[live_slots[solver_j]] = dict(share_map)
            elif share_map:
                slot_assignments[live_slots[-1]].update(share_map)
        self._allocation = Allocation(
            problem=allocation.problem, assignments=slot_assignments
        )
        self._install_assignments(slot_assignments)

        after = self._wanted_by_slot()
        changed = [
            j
            for j in range(len(self.controller.enclaves))
            if before[j] != after[j]
            and not self.controller.enclaves[j].destroyed
        ]
        if changed and self.session is not None:
            # A rule change alters the enclave's trusted state; re-attest
            # the touched enclaves through the failover retry/backoff path.
            for j in changed:
                self.session.invalidate_attestation(j)
            self._attest_with_retry()
        self._journal_rule_update(action, rule_id, changed, shed=False)
        return changed

    def _journal_rule_update(
        self, action: str, rule_id: int, changed: List[int], shed: bool
    ) -> None:
        obs.get_registry().counter(
            "vif_fleet_rule_updates_total",
            help="Hot rule deltas applied to a serving fleet, by action",
            fleet=self.counters.fleet_label,
            action=action,
        ).inc()
        journal = obs.get_journal()
        if journal.enabled:
            journal.emit(
                "rule_update",
                action=action,
                rule_id=rule_id,
                changed_slots=list(changed),
                shed=shed,
                active_rules=len(self._rule_order),
            )

    # -- fault entry points (used by repro.faults and tests) ----------------------

    def inject_crash(self, slot: int, platform_lost: bool = False) -> None:
        """Kill the enclave at ``slot``; optionally take its platform too."""
        slot = self._resolve_slot(slot)
        enclave = self.controller.enclaves[slot]
        enclave.destroy()
        if platform_lost:
            self._failed_platforms.add(enclave.platform.platform_id)

    def inject_epc_exhaustion(self, slot: int) -> None:
        """Kill the enclave at ``slot`` and EPC-starve its platform.

        A relaunch on the starved platform fails at load time
        (:class:`~repro.errors.EnclaveMemoryError` charging the base
        footprint), forcing the orphan/repair recovery path.
        """
        slot = self._resolve_slot(slot)
        enclave = self.controller.enclaves[slot]
        enclave.destroy()
        self._platform_epc_caps[enclave.platform.platform_id] = 1

    def _resolve_slot(self, slot: int) -> int:
        n = len(self.controller.enclaves)
        if n == 0:
            raise FleetError("fleet is empty")
        return slot % n

    # -- recovery ---------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Handle every DEAD slot: relaunch, repair, or shed — in that order."""
        self._sync_health()
        recovery_start_s = self.counters.recovery_time_s
        report = RecoveryReport()
        dead = [
            j
            for j, h in enumerate(self._health)
            if h is EnclaveHealth.DEAD or self.controller.enclaves[j].destroyed
        ]
        if not dead:
            return report
        for j in dead:
            self.counters.failovers += 1
            if self._relaunch(j) is not None:
                report.relaunched_slots.append(j)
            else:
                report.orphaned_slots.append(j)

        if report.relaunched_slots and self.session is not None:
            for j in report.relaunched_slots:
                self.session.invalidate_attestation(j)
            self._attest_with_retry()
        for j in report.relaunched_slots:
            self.counters.relaunches += 1
            self._health[j] = EnclaveHealth.HEALTHY
            self._misses[j] = 0

        if report.orphaned_slots:
            self._rehome_orphans(report)
        if report.acted:
            self._recovery_hist.observe(
                self.counters.recovery_time_s - recovery_start_s
            )
            journal = obs.get_journal()
            if journal.enabled:
                journal.emit(
                    "failover",
                    relaunched_slots=list(report.relaunched_slots),
                    orphaned_slots=list(report.orphaned_slots),
                    repaired=report.repaired,
                    full_resolve=report.full_resolve,
                    rules_rehomed=report.rules_rehomed,
                    shed_rule_ids=list(report.shed_rule_ids),
                    shed_bandwidth_bps=report.shed_bandwidth_bps,
                )
        return report

    def run_round(self, packets: Sequence[Packet]) -> RoundResult:
        """One operational round: probe health, recover, carry traffic."""
        with obs.span("fleet.round", fleet=self.counters.fleet_label):
            with obs.span("fleet.probe"):
                health = self.probe()
            with obs.span("fleet.recover"):
                recovery = self.recover()
            with obs.span("fleet.carry", packets=len(packets)):
                carry = self.carry(packets)
        return RoundResult(health=health, recovery=recovery, carry=carry)

    # -- data path ----------------------------------------------------------------

    def carry(self, packets: Sequence[Packet]) -> CarryResult:
        """Move packets through the fleet, failing closed across failover.

        Unlike :meth:`IXPController.carry`, a burst that hits a dead enclave
        does not abort the round: its packets are dropped (fail-closed,
        counted in ``dropped_failclosed``), the slot is marked DEAD for the
        next :meth:`recover`, and the rest of the traffic flows on.
        """
        packets = list(packets)
        tags = self._adjudicate(packets)
        self._record_flight(packets, tags)
        result = CarryResult()
        for packet, tag in zip(packets, tags):
            if tag == _ALLOWED:
                result.allowed += 1
                result.delivered.append(packet)
                result.filtered_ids.add(id(packet))
            elif tag == _DROPPED:
                result.dropped_filtered += 1
            elif tag == _UNROUTED:
                result.unrouted += 1
                result.delivered.append(packet)
            elif tag == _SHED:
                result.dropped_shed += 1
            else:
                result.dropped_failclosed += 1
        self.counters.shed_drops += result.dropped_shed
        self.counters.failclosed_drops += result.dropped_failclosed
        cc = self._carry_counters
        cc["offered"].inc(len(packets))
        cc["allowed"].inc(result.allowed)
        cc["dropped_filtered"].inc(result.dropped_filtered)
        cc["unrouted"].inc(result.unrouted)
        cc["shed"].inc(result.dropped_shed)
        cc["failclosed"].inc(result.dropped_failclosed)
        # Final audit of the fail-closed invariant: a delivered packet that
        # matches any rule (active or shed) must have been adjudicated by an
        # enclave.  Structurally unreachable; counted, never hidden.
        for packet in result.delivered:
            if id(packet) in result.filtered_ids:
                continue
            if self._rules.match(packet.five_tuple) is not None:
                self.counters.unfiltered_packets += 1
        return result

    def _adjudicate(self, packets: List[Packet]) -> List[str]:
        """Per-packet verdict tags, bursting consecutive same-slot packets."""
        tags: List[Optional[str]] = [None] * len(packets)
        lb = self.controller.load_balancer
        burst: List[Packet] = []
        burst_positions: List[int] = []
        burst_slot: Optional[int] = None

        def flush() -> None:
            nonlocal burst, burst_positions, burst_slot
            if burst_slot is None:
                return
            enclave = self.controller.enclaves[burst_slot]
            try:
                verdicts = enclave.ecall("process_burst", list(burst))
            except EnclaveSealedError:
                # Death discovered on the data path: fail closed, flag the
                # slot, keep the round going.
                self._mark_dead(burst_slot)
                for pos in burst_positions:
                    tags[pos] = _FAILCLOSED
            else:
                for pos, ok in zip(burst_positions, verdicts):
                    tags[pos] = _ALLOWED if ok else _DROPPED
            burst = []
            burst_positions = []
            burst_slot = None

        for idx, packet in enumerate(packets):
            verdict = lb.route(packet)
            if verdict is BLACKHOLE:
                tags[idx] = _SHED
                continue
            if verdict is None:
                # Cross-check the load balancer: if the authoritative rule
                # set matches this packet, "unrouted" would deliver rule
                # traffic unfiltered — drop it instead (fail-closed).
                if self._rules.match(packet.five_tuple) is not None:
                    self.counters.routing_anomalies += 1
                    tags[idx] = _FAILCLOSED
                else:
                    tags[idx] = _UNROUTED
                continue
            slot = verdict
            if (
                slot >= len(self.controller.enclaves)
                or self.controller.enclaves[slot].destroyed
                or (
                    slot < len(self._health)
                    and self._health[slot] is EnclaveHealth.DEAD
                )
            ):
                self._mark_dead(slot)
                tags[idx] = _FAILCLOSED
                continue
            if slot != burst_slot or len(burst) >= self.controller.carry_burst_size:
                flush()
                burst_slot = slot
            burst.append(packet)
            burst_positions.append(idx)
        flush()
        return [tag if tag is not None else _FAILCLOSED for tag in tags]

    def _record_flight(self, packets: Sequence[Packet], tags: Sequence[str]) -> None:
        """Batch the burst's verdicts into the flight recorder ring.

        One boolean check when recording is off; the per-packet rule lookup
        happens only when someone has opted into forensic capture.
        """
        recorder = obs.get_flight_recorder()
        if not recorder.enabled:
            return
        round_id = obs.get_journal().current_round
        entries = []
        for packet, tag in zip(packets, tags):
            rule = self._rules.match(packet.five_tuple)
            entries.append(
                (
                    packet.five_tuple.key().decode(),
                    rule.rule_id if rule is not None else None,
                    tag,
                    round_id,
                )
            )
        recorder.record_batch(entries)

    def _mark_dead(self, slot: int) -> None:
        self._sync_health()
        if 0 <= slot < len(self._health):
            self._health[slot] = EnclaveHealth.DEAD
            self._misses[slot] = self.config.miss_threshold

    # -- recovery internals --------------------------------------------------------

    def _relaunch(self, slot: int):
        """Try to replace the enclave at ``slot``; None when impossible."""
        old = self.controller.enclaves[slot]
        candidates: List[Platform] = []
        if old.platform.platform_id not in self._failed_platforms:
            candidates.append(old.platform)
        while True:
            if candidates:
                platform = candidates.pop(0)
            elif self._spares_used < self.config.spare_platforms:
                self._spares_used += 1
                platform = Platform(f"ixp-spare-{self._spares_used}")
            else:
                return None
            epc_cap = self._platform_epc_caps.get(platform.platform_id)
            epc = (
                EPCAccounting(epc_limit_bytes=epc_cap, hard_limit_bytes=epc_cap)
                if epc_cap
                else None
            )
            try:
                enclave = self.controller.relaunch_filter(
                    slot, platform=platform, epc=epc
                )
                self._reinstall_slot(slot)
            except EnclaveMemoryError:
                # EPC-starved platform: unusable for this (or any) slice.
                self._failed_platforms.add(platform.platform_id)
                self.controller.enclaves[slot].destroy()
                continue
            self.counters.recovery_time_s += self.config.relaunch_time_s
            return enclave

    def _reinstall_slot(self, slot: int) -> None:
        """Reinstall the current allocation's slice on a fresh enclave."""
        if self._allocation is None:
            return
        enclave = self.controller.enclaves[slot]
        share_map = (
            self._allocation.assignments[slot]
            if slot < len(self._allocation.assignments)
            else {}
        )
        rule_ids = sorted(self._rule_order[i] for i in share_map)
        enclave.ecall(
            "install_rules", [self._rules.get(rid) for rid in rule_ids]
        )
        enclave.ecall(
            "set_scale_out_mode", len(self.controller.enclaves) > 1
        )
        enclave.ecall("set_assigned_rules", rule_ids)

    def _attest_with_retry(self) -> int:
        """Re-attest pending enclaves, riding out IAS outages.

        Bounded retries with exponential backoff; the jitter stream is
        deterministic (seeded), so recoveries replay exactly.  Elapsed
        (simulated) time accumulates in ``counters.recovery_time_s``.
        """
        assert self.session is not None
        delay = self.config.backoff_base_s
        attempts = self.config.max_attestation_attempts
        for attempt in range(1, attempts + 1):
            try:
                attested = self.session.attest_filters()
            except AttestationError as exc:
                self.counters.attestation_retries += 1
                self.counters.recovery_time_s += (
                    PAPER_ATTESTATION_TIMING.end_to_end_s()
                )
                if attempt == attempts:
                    raise RecoveryFailed(
                        f"attestation failed after {attempts} attempts: {exc}"
                    ) from exc
                jitter = self._rng.random() * self.config.backoff_jitter * delay
                self.counters.recovery_time_s += delay + jitter
                delay *= self.config.backoff_factor
            else:
                self.counters.recovery_time_s += (
                    attested * PAPER_ATTESTATION_TIMING.end_to_end_s()
                )
                return attested
        return 0  # unreachable

    def _rehome_orphans(self, report: RecoveryReport) -> None:
        """Repair the allocation around unusable slots, shedding if needed."""
        if self._allocation is None:
            return
        self.counters.recovery_time_s += self.config.redistribution_time_s
        dead_slots = sorted(
            {
                j
                for j in range(len(self._allocation.assignments))
                if j in set(report.orphaned_slots)
                or (
                    j < len(self.controller.enclaves)
                    and self.controller.enclaves[j].destroyed
                )
            }
        )
        orphan_rules = {
            self._rule_order[i]
            for j in dead_slots
            if j < len(self._allocation.assignments)
            for i in self._allocation.assignments[j]
        }
        try:
            repaired = repair_allocation(self._allocation, dead_slots)
        except InfeasibleError:
            self._full_resolve(dead_slots, orphan_rules, report)
            return
        self.counters.repairs += 1
        self.counters.rules_rehomed += len(orphan_rules)
        report.repaired = True
        report.rules_rehomed = len(orphan_rules)
        self._allocation = repaired
        self._install_assignments(repaired.assignments)

    def _full_resolve(
        self,
        dead_slots: List[int],
        orphan_rules: Set[int],
        report: RecoveryReport,
    ) -> None:
        """Re-solve over the survivors, shedding rules until feasible."""
        live_slots = [
            j
            for j in range(len(self.controller.enclaves))
            if j not in set(dead_slots)
            and not self.controller.enclaves[j].destroyed
        ]
        active = list(zip(self._rule_order, self._bandwidths))
        queue = shed_order(active, self._priorities)
        shed: List[Tuple[int, float]] = []
        allocation: Optional[Allocation] = None
        while True:
            remaining = [rb for rb in active if rb not in set(shed)]
            if not remaining or not live_slots:
                shed = active  # nothing can be served; shed the rest
                remaining = []
                break
            problem = RuleDistributionProblem(
                bandwidths=[bw for _, bw in remaining],
                enclaves_override=len(live_slots),
                **self._problem_params,  # type: ignore[arg-type]
            )
            try:
                allocation = greedy_solve(problem)
                break
            except InfeasibleError:
                shed.append(queue.pop(0))

        shed_ids = [rid for rid, _ in shed]
        shed_bw = sum(bw for _, bw in shed)
        if shed_ids:
            self._shed.update(shed_ids)
            self.counters.rules_shed += len(shed_ids)
            self.counters.shed_bandwidth_bps += shed_bw
            report.shed_rule_ids = sorted(shed_ids)
            report.shed_bandwidth_bps = shed_bw
        self.counters.full_resolves += 1
        report.full_resolve = True

        if allocation is None:
            self._rule_order = []
            self._bandwidths = []
            self._allocation = None
            self.controller.load_balancer.configure(self._rules, {})
            self.controller.load_balancer.blackhole(self._shed)
            return

        remaining = [rb for rb in active if rb[0] not in set(shed_ids)]
        self._rule_order = [rid for rid, _ in remaining]
        self._bandwidths = [bw for _, bw in remaining]
        rehomed = len(orphan_rules & set(self._rule_order))
        self.counters.rules_rehomed += rehomed
        report.rules_rehomed = rehomed

        # Map solver enclave indices (0..n_live) back onto physical slots.
        slot_assignments: List[Dict[int, float]] = [
            {} for _ in range(len(self.controller.enclaves))
        ]
        for solver_j, share_map in enumerate(allocation.assignments):
            if solver_j < len(live_slots):
                slot_assignments[live_slots[solver_j]] = dict(share_map)
            elif share_map:
                # Solver headroom asked for more enclaves than survive;
                # fold the overflow onto the last live slot (validation
                # against G may fail, in which case repair would have been
                # tried first — this is the best-effort tail).
                slot_assignments[live_slots[-1]].update(share_map)
        self._allocation = Allocation(
            problem=allocation.problem, assignments=slot_assignments
        )
        self._install_assignments(slot_assignments)

    def _install_assignments(
        self, assignments: Sequence[Dict[int, float]]
    ) -> None:
        """Diff-install per-slot rule sets and rebuild LB routes."""
        routes: Dict[int, List[Tuple[int, float]]] = {}
        live = sum(1 for e in self.controller.enclaves if not e.destroyed)
        for j, enclave in enumerate(self.controller.enclaves):
            if enclave.destroyed:
                continue
            share_map = assignments[j] if j < len(assignments) else {}
            wanted_ids = {self._rule_order[i] for i in share_map}
            installed = {
                r.rule_id for r in enclave.ecall("installed_rules")
            }
            to_remove = sorted(installed - wanted_ids)
            to_add = sorted(wanted_ids - installed)
            if to_remove:
                enclave.ecall("remove_rules", to_remove)
            if to_add:
                enclave.ecall(
                    "install_rules", [self._rules.get(rid) for rid in to_add]
                )
            enclave.ecall("set_scale_out_mode", live > 1)
            enclave.ecall("set_assigned_rules", sorted(wanted_ids))
            for i, share in share_map.items():
                routes.setdefault(self._rule_order[i], []).append((j, share))
        self.controller.load_balancer.configure(self._rules, routes)
        if self._shed:
            self.controller.load_balancer.blackhole(self._shed)
        self.controller.state.rules = self._rules
        self.controller.state.rule_order = list(self._rule_order)
        self.controller.state.allocation = self._allocation

    # -- internals ----------------------------------------------------------------

    def _carry_violation(self) -> Optional[str]:
        """Carry-path conservation predicate (a registry invariant).

        Every packet offered to :meth:`carry` ends in exactly one outcome
        bucket; returns ``None`` when the books balance.
        """
        cc = self._carry_counters
        offered = cc["offered"].value
        accounted = (
            cc["allowed"].value
            + cc["dropped_filtered"].value
            + cc["unrouted"].value
            + cc["shed"].value
            + cc["failclosed"].value
        )
        if offered == accounted:
            return None
        return (
            f"fleet carry lost packets untracked: offered={offered}, "
            f"accounted={accounted} "
            f"({ {name: c.value for name, c in cc.items()} })"
        )

    def _sync_health(self, reset: bool = False) -> None:
        n = len(self.controller.enclaves)
        if reset:
            self._health = [EnclaveHealth.HEALTHY] * n
            self._misses = [0] * n
            return
        while len(self._health) < n:
            self._health.append(EnclaveHealth.HEALTHY)
            self._misses.append(0)
        del self._health[n:]
        del self._misses[n:]


class FleetBurstFilter:
    """Pipeline adapter: the whole fleet behind one burst-filter interface.

    Lets a :class:`~repro.dataplane.pipeline.FilterPipeline` keep polling
    across failovers: packets for dead enclaves get a False verdict
    (fail-closed drop), shed-rule packets get False, unmatched packets get
    the :data:`~repro.dataplane.pipeline.UNROUTED` verdict (forwarded on the
    default path, counted separately in pipeline stats).
    """

    #: The fleet records its own flight-recorder entries (with rule ids),
    #: so the pipeline must not double-record bursts filtered through here.
    records_flight = True

    def __init__(self, fleet: FleetManager) -> None:
        self.fleet = fleet

    def __call__(self, packet: Packet):
        return self.process_burst([packet])[0]

    def process_burst(self, packets: Sequence[Packet]) -> List[object]:
        packets = list(packets)
        tags = self.fleet._adjudicate(packets)
        self.fleet._record_flight(packets, tags)
        verdicts: List[object] = []
        for tag in tags:
            if tag == _ALLOWED:
                verdicts.append(True)
            elif tag == _UNROUTED:
                verdicts.append(UNROUTED)
            else:
                verdicts.append(False)
        # Keep the fleet's own books consistent with the pipeline's.
        self.fleet.counters.shed_drops += sum(1 for t in tags if t == _SHED)
        self.fleet.counters.failclosed_drops += sum(
            1 for t in tags if t == _FAILCLOSED
        )
        return verdicts
