"""The VIF filter as an enclave program (paper Fig 6).

:class:`EnclaveFilter` packages the stateless filter, the two count-min
packet logs, per-rule byte counters (the optimizer's ``B_i`` feed) and the
victim-facing secure channel into an :class:`~repro.tee.enclave.EnclaveProgram`.
The untrusted host reaches it only through ECalls:

=====================  ========================================================
ECall                  Purpose
=====================  ========================================================
``install_rules``      install victim rules (over the secure channel in the
                       full session; directly in unit tests)
``set_assigned_rules`` scale-out: the rule-id subset this enclave owns — any
                       packet matching none of them is load-balancer
                       misbehavior (paper IV-B)
``process_packet``     the data-plane fast path: log, filter, log
``process_burst``      the batched fast path: one enclave transition per
                       burst of packets, returning a verdict vector (the
                       paper's "reduce the number of context switches")
``rule_update_tick``   Appendix-F batch conversion of queued flows
``export_rule_rates``  per-rule byte counters for redistribution rounds
``channel_public``     the enclave's DH public value (bound into attestation
                       report_data)
``open_victim_channel``complete the handshake with the victim
``export_logs``        authenticated sketch logs over the secure channel
``misbehavior_report`` load-balancer misbehavior events collected so far
``ping``               liveness heartbeat for the fleet manager's health probes
=====================  ========================================================

EPC accounting mirrors the memory model: the base footprint (code, sketches,
buffers) is charged at load, the lookup table and exact-match flow table are
resized as rules and flows are installed, so
``enclave.epc.paging`` turns on exactly when Fig 3b says it should.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.filter import (
    ConnectionPreservingMode,
    FilterDecision,
    StatelessFilter,
)
from repro.core.rules import FilterRule
from repro.dataplane.packet import FiveTuple, Packet
from repro.errors import EnclaveError, SecureChannelError
from repro.lookup.memory_model import EnclaveMemoryModel, PAPER_MEMORY_MODEL
from repro.obs import LazyCounter
from repro.sketch.logs import PacketLogPair
from repro.tee.enclave import Enclave, EnclaveProgram
from repro.tee.secure_channel import ChannelEndpoint, SecureChannel

_BURST_PACKETS = LazyCounter(
    "vif_fastpath_burst_packets_total",
    help="Packets processed through EnclaveFilter.process_burst",
)
_BURST_UNIQUE_FLOWS = LazyCounter(
    "vif_fastpath_burst_unique_flows_total",
    help="Unique five-tuples decided per burst (coalescing denominator)",
)


@dataclass
class FilterReport:
    """Operational snapshot the controller/victim can request."""

    packets_processed: int = 0
    packets_allowed: int = 0
    packets_dropped: int = 0
    unmatched_packets: int = 0
    rule_bytes: Dict[int, int] = field(default_factory=dict)
    misbehavior_events: List[str] = field(default_factory=list)


class EnclaveFilter(EnclaveProgram):
    """The trusted filtering program loaded into each VIF enclave."""

    VERSION = "vif-filter-1.0"

    def __init__(
        self,
        secret: str,
        mode: ConnectionPreservingMode = ConnectionPreservingMode.HYBRID,
        memory_model: EnclaveMemoryModel = PAPER_MEMORY_MODEL,
        sketch_seed: str = "vif",
        scale_out_mode: bool = False,
        decision_secret: Optional[str] = None,
        decision_cache_size: int = 65536,
    ) -> None:
        """``secret`` seeds this enclave's channel identity; ``decision_secret``
        (shared fleet-wide, defaulting to ``secret``) seeds the hash-based
        filtering coin so a flow keeps its verdict when a redistribution
        round moves its rule to a different enclave.  ``decision_cache_size``
        bounds the per-flow verdict memo inside the enclave (0 disables)."""
        super().__init__()
        self._filter = StatelessFilter(
            secret=decision_secret or secret,
            mode=mode,
            decision_cache_size=decision_cache_size,
        )
        # Fleet-shared MAC key for the Fig 5 master/slave protocol: state
        # uploads and plan slices are authenticated end to end between
        # enclaves, so the controller ferrying them cannot tamper.  Derived
        # from the fleet decision secret (provisioned alike to every fleet
        # member, verified by attestation).
        import hashlib as _hashlib

        self._fleet_mac_key = _hashlib.sha256(
            (decision_secret or secret).encode() + b"|fleet-mac"
        ).digest()
        self._logs = PacketLogPair(family_seed=sketch_seed)
        self._memory_model = memory_model
        self._scale_out_mode = scale_out_mode
        self._assigned_rule_ids: Optional[set] = None
        self._report = FilterReport()
        self._channel_endpoint = ChannelEndpoint.create("enclave", secret)
        self._victim_channel: Optional[SecureChannel] = None
        self._neighbor_channels: Dict[int, SecureChannel] = {}
        self._ping_counter = 0

    # -- lifecycle ----------------------------------------------------------

    def on_load(self, enclave: Enclave) -> None:
        super().on_load(enclave)
        enclave.epc.allocate("base", self._memory_model.base_bytes)
        for name, fn in [
            ("install_rules", self.install_rules),
            ("set_assigned_rules", self.set_assigned_rules),
            ("set_scale_out_mode", self.set_scale_out_mode),
            ("process_packet", self.process_packet),
            ("process_burst", self.process_burst),
            ("rule_update_tick", self.rule_update_tick),
            ("export_rule_rates", self.export_rule_rates),
            ("channel_public", self.channel_public),
            ("open_victim_channel", self.open_victim_channel),
            ("open_neighbor_channel", self.open_neighbor_channel),
            ("export_logs", self.export_logs),
            ("export_incoming_log_to_neighbor", self.export_incoming_log_to_neighbor),
            ("install_rules_sealed", self.install_rules_sealed),
            ("export_state_authenticated", self.export_state_authenticated),
            ("master_recalculate", self.master_recalculate),
            ("install_plan_slice", self.install_plan_slice),
            ("misbehavior_report", self.misbehavior_report),
            ("ping", self.ping),
            ("report", self.report),
            ("num_rules", lambda: self._filter.num_rules),
            ("installed_rules", self.installed_rules),
            ("remove_rules", self.remove_rules),
            ("load_blocklist", self.load_blocklist),
        ]:
            self.register_ecall(name, fn)

    # -- rules ---------------------------------------------------------------

    def install_rules(self, rules: Sequence[FilterRule]) -> int:
        """Install rules and charge the lookup table against the EPC."""
        installed = self._filter.install_rules(rules)
        for rule in rules:
            self._report.rule_bytes.setdefault(rule.rule_id, 0)
        self._resize_epc()
        return installed

    def remove_rules(self, rule_ids: Sequence[int]) -> int:
        """Remove rules by id (redistribution rounds shrink rule sets too)."""
        removed = 0
        for rule_id in rule_ids:
            if rule_id not in self._filter.store:
                continue
            self._filter.remove_rule(rule_id)
            # Byte counters survive removal: they are cumulative-since-launch
            # accounting, and redistribution must not lose measured history.
            removed += 1
        self._resize_epc()
        return removed

    def load_blocklist(self, entries, requested_by: str = "") -> int:
        """Bulk-install ``(rule_id, src_int)`` blocklist entries into the
        membership tier; charges the membership EPC region."""
        entries = list(entries)
        installed = self._filter.load_blocklist(entries, requested_by=requested_by)
        for rule_id, _src in entries:
            self._report.rule_bytes.setdefault(rule_id, 0)
        self._resize_epc()
        return installed

    def installed_rules(self) -> List[FilterRule]:
        """The rules currently installed (the ``R_i`` of Fig 5).

        Membership-tier entries come back materialized as full
        :class:`FilterRule` objects, so Fig 5 state uploads and plan slices
        see one uniform rule list regardless of which tier holds a rule.
        """
        return self._filter.installed_rules()

    def set_assigned_rules(self, rule_ids: Sequence[int]) -> None:
        """Scale-out: declare which rule ids this enclave is responsible for."""
        self._assigned_rule_ids = set(rule_ids)

    def set_scale_out_mode(self, enabled: bool) -> None:
        """Toggle the load-balancer misbehavior checks.

        Flipped on for every fleet member when a deployment grows past one
        enclave — including the original master, which was launched alone.
        """
        self._scale_out_mode = bool(enabled)

    # -- data plane -----------------------------------------------------------

    #: Upper bound on one burst ECall — the in-enclave staging buffer is
    #: finite, so the host cannot shovel an unbounded batch across in one
    #: transition.
    MAX_BURST = 1024

    def _account_decision(self, packet: Packet, decision: FilterDecision) -> None:
        """Per-rule byte counters plus the scale-out misbehavior checks.

        In scale-out mode, a packet matching none of the assigned rules is
        recorded as load-balancer misbehavior (paper IV-B: "these
        misbehaviors can be easily detected by each filter by checking if it
        receives any packets that do not match the rules it receives from
        the master node").
        """
        if decision.rule is not None:
            self._report.rule_bytes[decision.rule.rule_id] = (
                self._report.rule_bytes.get(decision.rule.rule_id, 0) + packet.size
            )
            if (
                self._scale_out_mode
                and self._assigned_rule_ids is not None
                and decision.rule.rule_id not in self._assigned_rule_ids
            ):
                self._report.misbehavior_events.append(
                    "load-balancer sent packet for rule "
                    f"{decision.rule.rule_id} not assigned to this enclave"
                )
        else:
            self._report.unmatched_packets += 1
            if self._scale_out_mode:
                self._report.misbehavior_events.append(
                    f"load-balancer sent non-matching packet {packet.five_tuple}"
                )

    def process_packet(self, packet: Packet) -> bool:
        """Log incoming, filter, log forwarded; returns True to forward."""
        self._logs.record_incoming(packet)
        self._report.packets_processed += 1

        decision: FilterDecision = self._filter.decide(packet)
        self._account_decision(packet, decision)

        if decision.allowed:
            self._logs.record_forwarded(packet)
            self._report.packets_allowed += 1
        else:
            self._report.packets_dropped += 1
        return decision.allowed

    def process_burst(self, packets: Sequence[Packet]) -> List[bool]:
        """The batched fast path: one enclave transition for a whole burst.

        Per-packet semantics (verdicts, per-rule byte counters, misbehavior
        events, sketch contents) are identical to calling
        :meth:`process_packet` once per packet — only the transition count
        and the work pattern change: both packet logs are updated with one
        bulk pass per burst, and duplicate five-tuples within the burst are
        coalesced so each unique flow pays one rule lookup/verdict (sound
        because ``f(p)`` is stateless: every packet of a flow gets the same
        verdict by construction).  Accounting still runs per packet.
        Returns one verdict per packet, in order.
        """
        packets = list(packets)
        if len(packets) > self.MAX_BURST:
            raise EnclaveError(
                f"burst of {len(packets)} exceeds the enclave staging "
                f"buffer ({self.MAX_BURST} packets)"
            )
        if not packets:
            return []
        self._logs.record_incoming_burst(packets)
        self._report.packets_processed += len(packets)

        decide = self._filter.decide_flow
        decisions: Dict[FiveTuple, FilterDecision] = {}
        verdicts: List[bool] = []
        forwarded: List[Packet] = []
        for packet in packets:
            flow = packet.five_tuple
            decision = decisions.get(flow)
            if decision is None:
                decision = decide(flow)
                decisions[flow] = decision
            self._account_decision(packet, decision)
            verdicts.append(decision.allowed)
            if decision.allowed:
                forwarded.append(packet)
        _BURST_PACKETS.inc(len(packets))
        _BURST_UNIQUE_FLOWS.inc(len(decisions))
        self._logs.record_forwarded_burst(forwarded)
        self._report.packets_allowed += len(forwarded)
        self._report.packets_dropped += len(packets) - len(forwarded)
        return verdicts

    def rule_update_tick(self, max_idle_epochs: Optional[int] = None) -> int:
        """Appendix-F batch conversion (+ optional idle-flow eviction);
        resizes the flow-table EPC charge."""
        installed = self._filter.rule_update_tick(max_idle_epochs)
        self._resize_epc()
        return installed

    # -- accounting exports -------------------------------------------------------

    def export_rule_rates(self) -> Dict[int, int]:
        """Per-rule byte counters since launch (the ``B_i`` upload of Fig 5).

        Deliberately *not* timestamped inside the enclave — the enclave clock
        is untrusted (paper footnote 6); the controller divides by its own
        wall time.
        """
        return dict(self._report.rule_bytes)

    def report(self) -> FilterReport:
        """Full operational snapshot (counters are copies)."""
        return FilterReport(
            packets_processed=self._report.packets_processed,
            packets_allowed=self._report.packets_allowed,
            packets_dropped=self._report.packets_dropped,
            unmatched_packets=self._report.unmatched_packets,
            rule_bytes=dict(self._report.rule_bytes),
            misbehavior_events=list(self._report.misbehavior_events),
        )

    def misbehavior_report(self) -> List[str]:
        return list(self._report.misbehavior_events)

    def ping(self) -> int:
        """Liveness heartbeat for the fleet manager's health probes.

        The cheapest possible ECall: a destroyed enclave raises
        :class:`~repro.errors.EnclaveSealedError` at the enclave boundary
        before ever reaching this code, so a successful return *is* the
        health signal.  Returns a monotonically increasing probe counter so
        callers can also detect a silently restarted program (the counter
        resets to 1).
        """
        self._ping_counter += 1
        return self._ping_counter

    # -- the Fig 5 master/slave protocol, authenticated end to end -------------

    def _fleet_seal(self, payload: bytes) -> bytes:
        import hmac as _hmac
        import hashlib as _hashlib

        tag = _hmac.new(self._fleet_mac_key, payload, _hashlib.sha256).digest()
        return payload + tag

    def _fleet_open(self, blob: bytes) -> bytes:
        import hmac as _hmac
        import hashlib as _hashlib

        if len(blob) < 32:
            raise SecureChannelError("fleet message too short")
        payload, tag = blob[:-32], blob[-32:]
        expected = _hmac.new(self._fleet_mac_key, payload, _hashlib.sha256).digest()
        if not _hmac.compare_digest(expected, tag):
            raise SecureChannelError(
                "fleet message authentication failed (controller tampering?)"
            )
        return payload

    def export_state_authenticated(self) -> bytes:
        """The slave's {R_i, B_i} upload of Fig 5, MAC'd under the fleet key.

        The untrusted controller carries this to the master; any bit it
        flips (inflating a competitor's byte counts, dropping a rule) fails
        authentication there.
        """
        import json

        payload = json.dumps(
            {
                "rules": [r.to_dict() for r in self.installed_rules()],
                "bytes": {str(k): v for k, v in self._report.rule_bytes.items()},
            },
            sort_keys=True,
        ).encode()
        return self._fleet_seal(payload)

    def master_recalculate(
        self,
        states: Sequence[bytes],
        window_s: float,
        enclave_bandwidth: float,
        memory_budget: int,
        bytes_per_rule: int,
        base_bytes: int,
        headroom: float,
        extra_rules_sealed: Optional[bytes] = None,
    ) -> bytes:
        """The master's "filter rule re-calc" step — *inside* the enclave.

        Verifies every slave upload, merges rule sets and byte counts,
        converts to rates over the controller-supplied window, runs the
        greedy optimizer, and returns the authenticated plan: the merged
        rule list plus per-enclave ``{rule_id: share}`` assignments.  The
        plan is plaintext-readable (the controller must program the load
        balancer from it) but tamper-evident for the slaves who install it.

        ``extra_rules_sealed`` optionally carries new victim rules over the
        victim<->master secure channel, admitted only at this round
        boundary (paper IV-B).
        """
        import json

        from repro.optim.greedy import greedy_solve
        from repro.optim.problem import RuleDistributionProblem

        merged: Dict[int, FilterRule] = {}
        byte_counts: Dict[int, int] = {}
        for blob in states:
            state = json.loads(self._fleet_open(blob).decode())
            for rule_dict in state["rules"]:
                rule = FilterRule.from_dict(rule_dict)
                merged.setdefault(rule.rule_id, rule)
            for rule_id, count in state["bytes"].items():
                byte_counts[int(rule_id)] = byte_counts.get(int(rule_id), 0) + count
        if extra_rules_sealed is not None:
            if self._victim_channel is None:
                raise SecureChannelError("victim channel not established")
            extra = json.loads(
                self._victim_channel.open(extra_rules_sealed).decode()
            )
            for rule_dict in extra:
                rule = FilterRule.from_dict(rule_dict)
                merged.setdefault(rule.rule_id, rule)
                byte_counts.setdefault(
                    rule.rule_id, int(rule.rate_bps * window_s / 8)
                )
        if not merged:
            raise SecureChannelError("no rules in any uploaded state")

        rule_ids = sorted(merged)
        if window_s <= 0:
            raise SecureChannelError("bad rate window")
        problem = RuleDistributionProblem(
            bandwidths=[
                byte_counts.get(rule_id, 0) * 8 / window_s for rule_id in rule_ids
            ],
            enclave_bandwidth=enclave_bandwidth,
            memory_budget=memory_budget,
            bytes_per_rule=bytes_per_rule,
            base_bytes=base_bytes,
            headroom=headroom,
        )
        allocation = greedy_solve(problem)
        plan = {
            "rules": [merged[rule_id].to_dict() for rule_id in rule_ids],
            "bandwidths": list(problem.bandwidths),
            "params": {
                "enclave_bandwidth": enclave_bandwidth,
                "memory_budget": memory_budget,
                "bytes_per_rule": bytes_per_rule,
                "base_bytes": base_bytes,
                "headroom": headroom,
            },
            "assignments": [
                {str(rule_ids[i]): share for i, share in assignment.items()}
                for assignment in allocation.assignments
            ],
        }
        return self._fleet_seal(json.dumps(plan, sort_keys=True).encode())

    def install_plan_slice(self, plan_blob: bytes, my_index: int) -> int:
        """Slave side of Fig 5: verify the plan and install *my* slice.

        Replaces the current rule set with the plan's assignment for
        ``my_index`` and records the assigned ids for the load-balancer
        misbehavior check.  Returns the number of rules now installed.
        """
        import json

        plan = json.loads(self._fleet_open(plan_blob).decode())
        if not 0 <= my_index < len(plan["assignments"]):
            raise SecureChannelError(
                f"plan has no slice for enclave index {my_index}"
            )
        by_id = {
            int(d["rule_id"]): FilterRule.from_dict(d) for d in plan["rules"]
        }
        wanted = {int(rule_id) for rule_id in plan["assignments"][my_index]}
        installed = {r.rule_id for r in self.installed_rules()}
        self.remove_rules(sorted(installed - wanted))
        self.install_rules([by_id[rid] for rid in sorted(wanted - installed)])
        self.set_assigned_rules(sorted(wanted))
        return self._filter.num_rules

    # -- secure channel -------------------------------------------------------

    def channel_public(self) -> bytes:
        """The DH public value; the victim checks it against report_data."""
        return self._channel_endpoint.public_bytes()

    def open_victim_channel(self, victim_public: int) -> None:
        """Complete the handshake; the enclave side acts as the server."""
        self._victim_channel = SecureChannel.establish(
            self._channel_endpoint, victim_public, role="server"
        )

    def open_neighbor_channel(self, asn: int, neighbor_public: int) -> None:
        """Neighbor ASes get their own authenticated channels (paper Fig 1:
        neighbors verify the filtering too).  One channel per ASN."""
        self._neighbor_channels[asn] = SecureChannel.establish(
            self._channel_endpoint, neighbor_public, role="server"
        )

    def export_incoming_log_to_neighbor(self, asn: int, sealed_request: bytes) -> bytes:
        """Serve the authenticated incoming log to a neighbor AS.

        Neighbors only ever see the *incoming* sketch (what entered the
        filter) — the outgoing log is the victim's business.
        """
        channel = self._neighbor_channels.get(asn)
        if channel is None:
            raise SecureChannelError(f"no channel established for AS{asn}")
        if channel.open(sealed_request) != b"incoming":
            raise SecureChannelError("neighbors may only query the incoming log")
        return channel.seal(self._logs.incoming.sketch.serialize())

    def install_rules_sealed(self, sealed_rules: bytes) -> int:
        """Install rules delivered over the secure channel.

        The payload is a JSON array of rule dicts
        (:meth:`~repro.core.rules.FilterRule.to_dict`).  Because the host
        only relays an opaque authenticated record, it cannot modify, drop
        or reorder individual rules without the victim noticing — this is
        what removes the Goal-1/Goal-2 rule-tampering capability.
        """
        import json

        if self._victim_channel is None:
            raise SecureChannelError("victim channel not established")
        payload = self._victim_channel.open(sealed_rules)
        rules = [FilterRule.from_dict(d) for d in json.loads(payload.decode())]
        return self.install_rules(rules)

    def export_logs(self, sealed_request: bytes) -> bytes:
        """Serve an authenticated log query over the secure channel.

        The request plaintext is ``b"incoming"`` or ``b"outgoing"``; the
        response is the serialized sketch, sealed.  Any host tampering with
        either record fails HMAC verification at the victim.
        """
        if self._victim_channel is None:
            raise SecureChannelError("victim channel not established")
        which = self._victim_channel.open(sealed_request)
        if which == b"incoming":
            blob = self._logs.incoming.sketch.serialize()
        elif which == b"outgoing":
            blob = self._logs.outgoing.sketch.serialize()
        else:
            raise SecureChannelError(f"unknown log query {which!r}")
        return self._victim_channel.seal(blob)

    # -- internals ---------------------------------------------------------------

    def _resize_epc(self) -> None:
        if self._enclave is None:
            return
        store = self._filter.store
        # The 14 KiB/rule linear model prices the *trie* tier; membership
        # entries are charged at their actual structure sizes below, which
        # is the whole point of the tier — a million /32 sources must not
        # book a 14 GB lookup table.
        self.enclave.epc.resize(
            "lookup_table",
            self._memory_model.bytes_per_rule * len(store.trie),
        )
        membership_stats = store.membership_stats()
        if membership_stats is not None and membership_stats.entries == 0:
            membership_stats = None  # an unused tier charges nothing
        self.enclave.epc.resize(
            "membership",
            self._memory_model.membership_footprint_bytes(membership_stats),
        )
        self.enclave.epc.resize("flow_table", self._filter.flow_table.memory_bytes())


class EnclaveBurstFilter:
    """Host-side adapter binding an enclave's data path to the pipeline.

    :class:`~repro.dataplane.pipeline.FilterPipeline` accepts any callable;
    wrapping the enclave in this adapter additionally exposes the burst
    interface, so the pipeline pays one ``process_burst`` ECall per burst
    instead of one ``process_packet`` ECall per packet — the context-switch
    reduction the paper's §V data plane is built around.
    """

    def __init__(self, enclave: Enclave) -> None:
        self.enclave = enclave

    def __call__(self, packet: Packet) -> bool:
        """Per-packet fallback: one enclave transition per packet."""
        return self.enclave.ecall("process_packet", packet)

    def process_burst(self, packets: Sequence[Packet]) -> List[bool]:
        """One enclave transition for the whole burst."""
        return self.enclave.ecall("process_burst", list(packets))
