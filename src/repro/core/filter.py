"""The stateless auditable filter ``f(p)`` (paper III-A, Appendix A/F).

Auditability requires *arrival-time independence* and *packet-injection
independence* (equation 2): the verdict for a packet must be a pure function
of the packet itself, the installed rules, and the enclave's sealed secret.
:class:`StatelessFilter` enforces this by construction — no verdict reads a
clock or any history of other flows.

Non-deterministic rules (drop a *fraction* of matching connections) are
executed connection-preservingly in one of three modes (Appendix A):

* ``HASH_BASED`` — verdict = [SHA-derived hash of (5-tuple, enclave secret)
  < P_ALLOW].  Smallest memory, pays a hash per packet.
* ``EXACT_MATCH`` — the hash verdict of a flow's first packet is installed
  as an exact-match table entry; later packets hit the table.  Fast lookups,
  larger memory, table-update cost.
* ``HYBRID`` — hash-based for new flows, queued and batch-converted to
  exact-match entries at every update period (the design the paper
  recommends; Table II measures the batch insert).

Because the per-flow "coin flip" is *derived from the sealed secret via a
hash* rather than drawn from mutable RNG state, the exact-match table is
purely a cache: every mode returns the same verdict for the same packet, and
the filter stays stateless in the sense the auditability argument needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.rules import Action, FilterRule
from repro.dataplane.packet import FiveTuple, Packet
from repro.errors import ConfigurationError
from repro.lookup.flowtable import ExactMatchFlowTable
from repro.lookup.membership import MembershipTier, TieredRuleStore
from repro.lookup.multibit_trie import MultiBitTrie
from repro.obs import LazyCounter
from repro.util.rng import stable_hash64

_HASH_SPACE = float(2**64)

_CACHE_HITS = LazyCounter(
    "vif_fastpath_decision_cache_hits_total",
    help="Per-flow decision cache hits in StatelessFilter.decide_flow",
)
_CACHE_MISSES = LazyCounter(
    "vif_fastpath_decision_cache_misses_total",
    help="Per-flow decision cache misses in StatelessFilter.decide_flow",
)


class ConnectionPreservingMode(enum.Enum):
    """How non-deterministic rules are executed (Appendix A/F)."""

    HASH_BASED = "hash-based"
    EXACT_MATCH = "exact-match"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class FilterDecision:
    """The verdict for one packet, with provenance for audits and stats."""

    allowed: bool
    rule: Optional[FilterRule]
    used_hash: bool

    @property
    def action(self) -> Action:
        return Action.ALLOW if self.allowed else Action.DROP


class StatelessFilter:
    """Rule evaluation with connection-preserving probabilistic execution."""

    def __init__(
        self,
        secret: str,
        mode: ConnectionPreservingMode = ConnectionPreservingMode.HYBRID,
        default_action: Action = Action.ALLOW,
        stride_bits: int = 8,
        decision_cache_size: int = 0,
        membership_tier: bool = True,
        membership: Optional[MembershipTier] = None,
    ) -> None:
        """``membership_tier=False`` yields the trie-only store — the
        reference configuration the differential membership tests compare
        against; ``membership`` injects a pre-configured tier (tests force
        tiny capacities to cross resize boundaries cheaply)."""
        if not secret:
            raise ConfigurationError("the filter needs a non-empty enclave secret")
        if decision_cache_size < 0:
            raise ConfigurationError("decision_cache_size must be >= 0")
        self._secret = secret
        self.mode = mode
        self.default_action = default_action
        self.store = TieredRuleStore(
            stride_bits=stride_bits,
            membership=membership,
            membership_enabled=membership_tier,
        )
        if self.store.membership is not None:
            # A tier rebuild re-homes entries without changing the rule set;
            # any memoized verdict predating it must die with it.
            self.store.membership.add_rebuild_listener(self._on_membership_rebuild)
        self.flow_table = ExactMatchFlowTable()
        self.hash_evaluations = 0
        self.table_hits = 0
        #: Bumped on every rule install/remove.  Live-update machinery (the
        #: serve control plane, the sharded workers) uses it to correlate a
        #: verdict with the rule set it was decided under; any bump implies
        #: the decision memo was invalidated.
        self.ruleset_version = 0
        # Pure memoization of decide_flow: because f(p) is stateless, the
        # verdict for a five-tuple cannot change between rule updates, so a
        # bounded FIFO cache is semantically invisible (it only skips
        # recomputation).  Disabled (size 0) by default so instrumentation
        # counters like hash_evaluations keep their historical meaning.
        self._decision_cache_size = decision_cache_size
        self._decision_cache: Dict[FiveTuple, FilterDecision] = {}

    # -- rule management -----------------------------------------------------

    @property
    def trie(self) -> MultiBitTrie:
        """The destination-prefix trie tier (compat accessor; ``/32``-source
        drop rules live in :attr:`store`'s membership tier instead)."""
        return self.store.trie

    def _on_membership_rebuild(self, generation: int) -> None:
        self._decision_cache.clear()

    def install_rule(self, rule: FilterRule) -> None:
        try:
            self.store.insert(rule)
        finally:
            self.ruleset_version += 1
            self._decision_cache.clear()

    def install_rules(self, rules) -> int:
        """Install many rules; returns how many were inserted."""
        try:
            return self.store.insert_batch(rules)
        finally:
            # insert_batch may have applied a prefix of the batch before
            # failing; invalidate unconditionally.
            self.ruleset_version += 1
            self._decision_cache.clear()

    def remove_rule(self, rule) -> None:
        """Remove an installed rule (accepts the rule object or its id)."""
        try:
            self.store.remove(rule)
        finally:
            self.ruleset_version += 1
            self._decision_cache.clear()

    def load_blocklist(self, entries, requested_by: str = "") -> int:
        """Install ``(rule_id, src_int)`` blocklist entries into the
        membership tier (the bulk path for million-entry blackhole lists)."""
        try:
            return self.store.load_blocklist(entries, requested_by=requested_by)
        finally:
            self.ruleset_version += 1
            self._decision_cache.clear()

    def reload_blocklist(self, entries, requested_by: str = "") -> int:
        """Replace the membership tier's contents wholesale (one sized
        rebuild); trie rules are untouched."""
        try:
            return self.store.reload_blocklist(entries, requested_by=requested_by)
        finally:
            self.ruleset_version += 1
            self._decision_cache.clear()

    def installed_rules(self):
        """Every installed rule as a full FilterRule, sorted by id."""
        return self.store.rules()

    def find_rule(self, rule_id: int):
        """The installed rule by id, or None (O(1) across both tiers)."""
        return self.store.find_rule(rule_id)

    @property
    def num_rules(self) -> int:
        return len(self.store)

    # -- the filter function ---------------------------------------------------

    def decide(self, packet: Packet) -> FilterDecision:
        """The auditable ``f(p)``: verdict from the packet alone."""
        return self.decide_flow(packet.five_tuple)

    def decide_flow(self, flow: FiveTuple) -> FilterDecision:
        """Verdict for a five-tuple (all packets of the flow agree)."""
        if self._decision_cache_size:
            cached = self._decision_cache.get(flow)
            if cached is not None:
                _CACHE_HITS.inc()
                return cached
            _CACHE_MISSES.inc()
            decision = self._decide_flow_uncached(flow)
            cache = self._decision_cache
            if len(cache) >= self._decision_cache_size:
                cache.pop(next(iter(cache)))  # FIFO eviction
            cache[flow] = decision
            return decision
        return self._decide_flow_uncached(flow)

    def _decide_flow_uncached(self, flow: FiveTuple) -> FilterDecision:
        rule = self.store.lookup(flow)
        if rule is None:
            return FilterDecision(
                allowed=self.default_action is Action.ALLOW,
                rule=None,
                used_hash=False,
            )
        if rule.deterministic:
            assert rule.action is not None
            return FilterDecision(
                allowed=rule.action is Action.ALLOW, rule=rule, used_hash=False
            )
        return self._decide_probabilistic(flow, rule)

    def __call__(self, packet: Packet) -> bool:
        """Callable form for :class:`~repro.dataplane.pipeline.FilterPipeline`."""
        return self.decide(packet).allowed

    # -- update period ----------------------------------------------------------

    def rule_update_tick(self, max_idle_epochs: Optional[int] = None) -> int:
        """Run one Appendix-F update period: batch-install queued flows.

        Returns the number of exact-match entries installed.  In HYBRID mode
        the enclave calls this every few seconds (the paper uses 5–40 s),
        amortizing table updates; in the other modes it is a no-op.

        When ``max_idle_epochs`` is given, connections idle for more than
        that many update periods are evicted — safe because re-created
        entries hash to the identical verdict (connection preservation
        survives eviction).
        """
        installed = self.flow_table.flush_pending()
        self.flow_table.advance_epoch()
        if max_idle_epochs is not None:
            self.flow_table.evict_idle(max_idle_epochs)
        # Membership-tier upkeep rides the same periodic tick: reclaim ghost
        # Bloom bits / overgrown tables.  A rebuild fires the listener that
        # clears the decision memo.
        self.store.maintenance()
        return installed

    # -- internals ---------------------------------------------------------------

    def _decide_probabilistic(
        self, flow: FiveTuple, rule: FilterRule
    ) -> FilterDecision:
        if self.mode is ConnectionPreservingMode.HASH_BASED:
            allowed = self._hash_allows(flow, rule)
            return FilterDecision(allowed=allowed, rule=rule, used_hash=True)

        cached = self.flow_table.lookup(flow)
        if cached is not None:
            self.table_hits += 1
            return FilterDecision(
                allowed=cached is Action.ALLOW, rule=rule, used_hash=False
            )

        allowed = self._hash_allows(flow, rule)
        decision = Action.ALLOW if allowed else Action.DROP
        if self.mode is ConnectionPreservingMode.EXACT_MATCH:
            self.flow_table.install(flow, decision)
        else:  # HYBRID: queue for the next batch update
            self.flow_table.queue(flow, decision)
        return FilterDecision(allowed=allowed, rule=rule, used_hash=True)

    def _hash_allows(self, flow: FiveTuple, rule: FilterRule) -> bool:
        """The paper's H(five-tuple || secret) < 2^64 * P_ALLOW test."""
        self.hash_evaluations += 1
        assert rule.p_allow is not None
        digest = stable_hash64(flow.key(), salt=f"{self._secret}|{rule.rule_id}")
        return digest < rule.p_allow * _HASH_SPACE
