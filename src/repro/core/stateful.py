"""Stateful filtering extension — the paper's future-work direction.

The conclusion of the paper "encourages more sophisticated yet auditable
filter designs, such as stateful firewalls".  This module explores that
frontier in both directions:

* :class:`NaiveStatefulFirewall` — a textbook stateful design (SYN-gated
  admission plus a token-bucket rate limiter fed by the enclave clock).
  It is a *counter-example*: its verdicts depend on packet order and on the
  adversary-controlled clock, so the filtering network can silently steer
  outcomes without touching the enclave — exactly the manipulation the
  III-A analysis rules out.  Tests demonstrate both manipulations.

* :class:`AuditableRateLimitFilter` — a stateful-*looking* design that
  stays auditable.  Per-rule admission quotas are enforced not over time
  (no clock) but over a **deterministic hash partition of the flow space**:
  a rule "admit at most fraction q of matching connections" maps each flow
  to a point in [0,1) via ``H(5-tuple || secret)`` and admits it iff the
  point falls below q.  This is the paper's non-deterministic rule
  generalized to per-source-group budgets: verdicts remain pure functions
  of the packet (equation 2), so order/timing manipulation is impossible,
  while the victim can still express "cap every /16 of sources to its fair
  share" — the common stateful-firewall use case during volumetric floods.

The takeaway the module encodes: *state per se is not the problem — input
channels the host controls are.*  Any extension whose verdict reads only
(packet, rules, sealed secret) inherits VIF's auditability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import ConfigurationError
from repro.tee.clock import UntrustedClock
from repro.util.addrs import parse_network
from repro.util.rng import stable_hash64

_HASH_SPACE = float(2**64)


# ---------------------------------------------------------------------------
# The counter-example: classic stateful design, not auditable.
# ---------------------------------------------------------------------------


@dataclass
class _TokenBucket:
    """A clock-fed token bucket (deliberately classic, deliberately unsafe)."""

    rate_per_s: float
    burst: float
    tokens: float
    last_refill: float

    def admit(self, now: float, cost: float = 1.0) -> bool:
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)
        self.last_refill = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class NaiveStatefulFirewall:
    """SYN-gated admission + per-source token buckets.  NOT auditable.

    Two host-controlled input channels decide verdicts here:

    * **order** — a data packet is admitted only if its flow's SYN was seen
      first, so the host can deny a flow by reordering (or admit a bogus one
      by injecting a SYN);
    * **time** — the token bucket refills from the enclave clock, which the
      host feeds; slowing the clock starves every source of tokens,
      speeding it up effectively disables the limiter.

    Provided so tests (and readers) can watch both manipulations succeed;
    contrast with :class:`AuditableRateLimitFilter` below.
    """

    def __init__(
        self,
        clock: UntrustedClock,
        rate_per_s: float = 100.0,
        burst: float = 10.0,
    ) -> None:
        if rate_per_s <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self._clock = clock
        self._rate = rate_per_s
        self._burst = burst
        self._established: set = set()
        self._buckets: Dict[str, _TokenBucket] = {}

    def process(self, packet: Packet, syn: bool = False) -> bool:
        """Verdict for one packet; ``syn`` marks TCP connection setup."""
        flow = packet.five_tuple
        if flow.protocol is Protocol.TCP:
            if syn:
                self._established.add(flow)
            elif flow not in self._established:
                return False  # no handshake observed -> reject (order-dependent!)
        bucket = self._buckets.get(flow.src_ip)
        if bucket is None:
            bucket = _TokenBucket(
                rate_per_s=self._rate,
                burst=self._burst,
                tokens=self._burst,
                last_refill=self._clock.now(),
            )
            self._buckets[flow.src_ip] = bucket
        return bucket.admit(self._clock.now())


# ---------------------------------------------------------------------------
# The auditable alternative.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceGroupQuota:
    """One stateful-firewall-style policy expressed auditably.

    ``group_prefix`` names the source group (e.g. ``"10.1.0.0/16"``);
    ``admit_fraction`` is the fraction of that group's *connections* to
    admit.  The victim computes fractions from its capacity and the
    measured per-group rates, then updates them at round boundaries — the
    adaptation loop lives with the victim, outside the data path, so the
    data-path verdict stays stateless.
    """

    quota_id: int
    group_prefix: str
    admit_fraction: float

    def __post_init__(self) -> None:
        try:
            version, net_int, _prefix_len, mask = parse_network(self.group_prefix)
        except ValueError as exc:
            raise ConfigurationError(f"bad group prefix: {exc}") from exc
        if not 0.0 <= self.admit_fraction <= 1.0:
            raise ConfigurationError("admit_fraction must be in [0, 1]")
        # Compiled containment test (frozen dataclass → object.__setattr__):
        # covers() runs per flow on the data path and must not re-parse.
        object.__setattr__(self, "_group_version", version)
        object.__setattr__(self, "_group_net_int", net_int)
        object.__setattr__(self, "_group_mask", mask)

    def covers(self, flow: FiveTuple) -> bool:
        """True when ``flow``'s source falls inside this quota's group."""
        return (
            flow.src_ip_version == self._group_version
            and (flow.src_ip_int & self._group_mask) == self._group_net_int
        )


class AuditableRateLimitFilter:
    """Per-source-group admission quotas with stateless verdicts.

    For a flow in group ``g`` under quota ``q``: admit iff
    ``H(5T || secret || quota_id) < q * 2^64``.  Connection-preserving by
    construction (all packets of a flow hash identically) and auditable by
    construction (no clocks, no history).  The *fraction admitted within
    each group* concentrates around ``q`` — the property tests quantify it —
    which is what a token bucket delivers on average, without giving the
    host a steering channel.
    """

    def __init__(self, secret: str) -> None:
        if not secret:
            raise ConfigurationError("need a non-empty enclave secret")
        self._secret = secret
        self._quotas: Dict[int, SourceGroupQuota] = {}

    def install_quota(self, quota: SourceGroupQuota) -> None:
        if quota.quota_id in self._quotas:
            raise ConfigurationError(f"duplicate quota id {quota.quota_id}")
        self._quotas[quota.quota_id] = quota

    def remove_quota(self, quota_id: int) -> None:
        self._quotas.pop(quota_id, None)

    def update_quota(self, quota: SourceGroupQuota) -> None:
        """Round-boundary adaptation: replace a quota's fraction."""
        self._quotas[quota.quota_id] = quota

    def admit(self, packet: Packet) -> bool:
        """True when every installed quota admits the packet's flow."""
        return self.admit_flow(packet.five_tuple)

    def admit_flow(self, flow: FiveTuple) -> bool:
        """Every quota whose group covers the flow must admit it; flows in
        no quota's group pass freely (the default-allow of III-A)."""
        for quota in self._quotas.values():
            if not quota.covers(flow):
                continue
            point = stable_hash64(
                flow.key(), salt=f"{self._secret}|quota-{quota.quota_id}"
            )
            if point >= quota.admit_fraction * _HASH_SPACE:
                return False
        return True

    @property
    def num_quotas(self) -> int:
        return len(self._quotas)

    def describe(self) -> str:
        parts = [
            f"quota {q.quota_id}: admit {q.admit_fraction:.0%} of {q.group_prefix}"
            for q in self._quotas.values()
        ]
        return "; ".join(parts) or "no quotas installed"


def fair_share_quotas(
    group_rates_bps: Dict[str, float],
    capacity_bps: float,
    start_id: int = 1,
) -> Dict[str, SourceGroupQuota]:
    """Victim-side helper: derive per-group admit fractions from rates.

    ``group_rates_bps`` maps source-group prefixes (e.g. ``"10.1.0.0/16"``)
    to their measured inbound rate.  Implements max-min fair sharing:
    groups under their fair share are fully admitted; the remaining
    capacity is split evenly across the heavy groups.  Returns
    ``{group_prefix: quota}`` ready to install.
    """
    if capacity_bps <= 0:
        raise ConfigurationError("capacity must be positive")
    if not group_rates_bps:
        return {}
    remaining = capacity_bps
    pending = dict(group_rates_bps)
    shares: Dict[str, float] = {}
    # Classic water-filling.
    while pending:
        fair = remaining / len(pending)
        satisfied = {g: r for g, r in pending.items() if r <= fair}
        if not satisfied:
            for group in pending:
                shares[group] = fair
            break
        for group, rate in satisfied.items():
            shares[group] = rate
            remaining -= rate
            del pending[group]
    quotas: Dict[str, SourceGroupQuota] = {}
    for index, (group, rate) in enumerate(sorted(group_rates_bps.items())):
        fraction = 1.0 if rate <= 0 else min(1.0, shares[group] / rate)
        quotas[group] = SourceGroupQuota(
            quota_id=start_id + index,
            group_prefix=group,
            admit_fraction=fraction,
        )
    return quotas
