"""Neighbor-AS verification sessions (paper Fig 1, III-B).

The direct upstream neighbors of the filtering network independently verify
that their packets reach the VIF filters: each neighbor attests the
enclaves (same IAS flow as the victim), opens its own secure channel into
each one, logs what it hands the filtering network, and periodically
compares its local sketch with the enclaves' authenticated incoming logs.
A neighbor that finds drop-before-filtering evidence "can choose another
downstream network".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.bypass import BypassEvidence, NeighborAuditor, merge_enclave_logs
from repro.core.controller import IXPController
from repro.core.enclave_filter import EnclaveFilter
from repro.dataplane.packet import Packet
from repro.errors import SessionError
from repro.sketch.countmin import CountMinSketch
from repro.tee.attestation import IASService, RemoteAttestationVerifier
from repro.tee.secure_channel import ChannelEndpoint, SecureChannel


@dataclass
class NeighborSession:
    """One upstream AS's verification relationship with a VIF deployment."""

    asn: int
    controller: IXPController
    ias: IASService

    def __post_init__(self) -> None:
        self.auditor = NeighborAuditor(self.asn)
        self.verifier = RemoteAttestationVerifier(
            self.ias,
            expected_measurement=EnclaveFilter.measurement(),
            verifier_id=f"AS{self.asn}",
        )
        self._channels: Dict[int, SecureChannel] = {}
        self.attested_count = 0
        self.audit_log: List[BypassEvidence] = []

    # -- setup ---------------------------------------------------------------

    def attest_filters(self) -> int:
        """Attest every not-yet-attested enclave and open channels."""
        attested = 0
        for index, enclave in enumerate(self.controller.enclaves):
            if index in self._channels and not enclave.destroyed:
                continue
            enclave_public: bytes = enclave.ecall("channel_public")
            self.verifier.attest(enclave, report_data=enclave_public)
            endpoint = ChannelEndpoint.create(
                f"neighbor-{self.asn}-{index}",
                f"AS{self.asn}/{enclave.enclave_id}",
            )
            enclave.ecall("open_neighbor_channel", self.asn, endpoint.public)
            self._channels[index] = SecureChannel.establish(
                endpoint, int.from_bytes(enclave_public, "big"), role="client"
            )
            attested += 1
        self.attested_count += attested
        return attested

    # -- traffic accounting ---------------------------------------------------

    def observe_handoff(self, packet: Packet) -> None:
        """Record one packet this AS handed to the filtering network."""
        self.auditor.observe(packet)

    def observe_handoffs(self, packets) -> None:
        self.auditor.observe_many(packets)

    # -- verification ------------------------------------------------------------

    def fetch_incoming_log(self, enclave_index: int) -> CountMinSketch:
        """One enclave's authenticated incoming sketch over this AS's channel."""
        channel = self._channels.get(enclave_index)
        if channel is None:
            raise SessionError(
                f"AS{self.asn} has no channel to enclave {enclave_index} "
                "(attest first)"
            )
        sealed = self.controller.enclaves[enclave_index].ecall(
            "export_incoming_log_to_neighbor",
            self.asn,
            channel.seal(b"incoming"),
        )
        return CountMinSketch.deserialize(channel.open(sealed))

    def audit_round(self, tolerance: int = 0) -> BypassEvidence:
        """Fetch every enclave's incoming log, merge, and compare."""
        sketches = [
            self.fetch_incoming_log(index)
            for index in range(len(self.controller.enclaves))
        ]
        merged = merge_enclave_logs(sketches)
        if merged is None:
            raise SessionError("no enclaves to audit")
        evidence = self.auditor.audit(merged, tolerance=tolerance)
        self.audit_log.append(evidence)
        return evidence
