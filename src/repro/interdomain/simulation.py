"""The Fig 11 coverage simulation.

For each victim AS, compute the policy-routing tree toward it, trace every
attack source's AS path, and measure the fraction of attack *sources*
(weighted by per-AS source count) whose path crosses at least one of the
selected VIF IXPs.  The paper reports the distribution over 1,000 random
victims as box plots for Top-1 … Top-5 IXPs per region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.errors import ConfigurationError
from repro.interdomain.ixp import IXP, membership_index, top_ixps_by_region, transited_ixps
from repro.interdomain.routing import as_path, route_tree
from repro.interdomain.topology import ASGraph, Tier
from repro.util.rng import deterministic_rng
from repro.util.stats import BoxplotSummary, boxplot_summary


@dataclass
class CoverageResult:
    """Per-Top-n coverage ratios across victims (the Fig 11 data)."""

    #: top-n -> one coverage ratio per victim.
    ratios_by_level: Dict[int, List[float]] = field(default_factory=dict)

    def summary(self, level: int) -> BoxplotSummary:
        """The box-plot five-number summary for Top-``level`` IXPs."""
        return boxplot_summary(self.ratios_by_level[level])

    def median(self, level: int) -> float:
        return self.summary(level).median


def choose_victims(
    graph: ASGraph, count: int, seed: int = 17
) -> List[int]:
    """Random stub ("Tier-3") victims, the paper's victim model."""
    rng = deterministic_rng(f"victims:{seed}")
    stubs = graph.ases_by_tier(Tier.STUB)
    if count > len(stubs):
        raise ConfigurationError(
            f"asked for {count} victims but only {len(stubs)} stubs exist"
        )
    return sorted(rng.sample(stubs, count))


def ixp_coverage(
    graph: ASGraph,
    ixps: Sequence[IXP],
    victims: Sequence[int],
    sources: Dict[int, int],
    top_levels: Sequence[int] = (1, 2, 3, 4, 5),
) -> CoverageResult:
    """Run the coverage experiment.

    ``sources`` maps source AS -> number of attack sources inside it (from
    :mod:`repro.interdomain.attack_sources`).  A source is *handled* when
    its path to the victim transits any IXP in the Top-n selection (the
    paper's consecutive-members test).
    """
    if not victims:
        raise ConfigurationError("need at least one victim")
    if not sources:
        raise ConfigurationError("need at least one attack source")

    # Top-n ID sets, nested by construction.
    level_sets: Dict[int, Set[str]] = {}
    for level in top_levels:
        level_sets[level] = {
            ixp.ixp_id for ixp in top_ixps_by_region(ixps, level)
        }
    member_idx = membership_index(ixps)

    result = CoverageResult(
        ratios_by_level={level: [] for level in top_levels}
    )
    for victim in victims:
        routes = route_tree(graph, victim)
        handled = {level: 0 for level in top_levels}
        total = 0
        for src_as, count in sources.items():
            if src_as == victim:
                continue
            path = as_path(routes, src_as)
            if path is None:
                continue  # unreachable source contributes no attack traffic
            total += count
            crossed = transited_ixps(path, member_idx)
            if not crossed:
                continue
            for level in top_levels:
                if crossed & level_sets[level]:
                    handled[level] += count
        if total == 0:
            continue
        for level in top_levels:
            result.ratios_by_level[level].append(handled[level] / total)
    return result


def coverage_rows(result: CoverageResult) -> List[List[object]]:
    """Fig 11 as printable rows: level, p5, p25, median, p75, p95."""
    rows: List[List[object]] = []
    for level in sorted(result.ratios_by_level):
        s = result.summary(level)
        rows.append(
            [
                f"Top-{level} IXPs",
                round(s.p5, 3),
                round(s.p25, 3),
                round(s.median, 3),
                round(s.p75, 3),
                round(s.p95, 3),
            ]
        )
    return rows
