"""IXPs: membership, regional ranking, and path-transit tests (paper VI).

The paper counts a flow as *handled* by a VIF IXP when its AS path contains
two consecutive ASes that are both members of that IXP (section VI-C).
:func:`path_transits_ixp` implements exactly that test; a stricter variant
additionally requires the hop to be a peering established at that IXP
(useful as an ablation — private interconnects between co-located members
would not traverse the IXP fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.interdomain.topology import ASGraph


@dataclass
class IXP:
    """One Internet exchange point."""

    ixp_id: str
    name: str
    region: str
    members: Set[int] = field(default_factory=set)

    @property
    def member_count(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        return f"{self.name} ({self.region}, {self.member_count} members)"


def top_ixps_by_region(
    ixps: Sequence[IXP], top_n: int
) -> List[IXP]:
    """The ``top_n`` largest IXPs (by member count) in *each* region.

    This is the paper's selection: "Top-n IXPs denote the n largest IXPs in
    each of the five regions", so top-1 over five regions selects five IXPs.
    """
    if top_n <= 0:
        raise ValueError("top_n must be positive")
    by_region: Dict[str, List[IXP]] = {}
    for ixp in ixps:
        by_region.setdefault(ixp.region, []).append(ixp)
    selected: List[IXP] = []
    for region in sorted(by_region):
        ranked = sorted(
            by_region[region], key=lambda x: (-x.member_count, x.ixp_id)
        )
        selected.extend(ranked[:top_n])
    return selected


def path_transits_ixp(
    path: Sequence[int],
    ixp: IXP,
    graph: ASGraph = None,
    require_peering_at_ixp: bool = False,
) -> bool:
    """True when the AS path crosses ``ixp``.

    Default (paper definition): some consecutive pair of path ASes are both
    members.  With ``require_peering_at_ixp`` the pair's peering must also
    be registered at this IXP in the topology.
    """
    for a, b in zip(path, path[1:]):
        if a in ixp.members and b in ixp.members:
            if not require_peering_at_ixp:
                return True
            if graph is None:
                raise ValueError(
                    "require_peering_at_ixp needs the graph to check edges"
                )
            if ixp.ixp_id in graph.edge_ixps(a, b):
                return True
    return False


def transited_ixps(
    path: Sequence[int],
    membership: Dict[int, Set[str]],
) -> Set[str]:
    """All IXP ids crossed by ``path``, given an AS->IXP-ids membership map.

    The bulk form used by the coverage simulation: one pass over the path,
    set intersections per hop.
    """
    crossed: Set[str] = set()
    for a, b in zip(path, path[1:]):
        ixps_a = membership.get(a)
        if not ixps_a:
            continue
        ixps_b = membership.get(b)
        if not ixps_b:
            continue
        crossed |= ixps_a & ixps_b
    return crossed


def membership_index(ixps: Iterable[IXP]) -> Dict[int, Set[str]]:
    """Invert IXP member lists into an AS -> {ixp_id} map."""
    index: Dict[int, Set[str]] = {}
    for ixp in ixps:
        for asn in ixp.members:
            index.setdefault(asn, set()).add(ixp.ixp_id)
    return index
