"""Deployment-point baselines: VIF-at-IXPs vs filtering at transit ISPs.

The paper positions IXPs as the ideal early adopters (§VI-A) and contrasts
with SENSS (§VIII-A), which installs victim-requested filters at a few
major transit ISPs.  This module makes the comparison quantitative on the
synthetic Internet:

* an **ISP deployment** handles a flow when the deployed AS itself appears
  on the flow's path (it forwards — and can filter — the traffic);
* an **IXP deployment** handles a flow when the path crosses the IXP
  (consecutive co-members, the paper's VI-C test).

Both coverage curves are computed with the same victims/sources so the
benches can ask the §VIII question directly: how many deployment points of
each kind buy how much coverage?
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set

from repro.errors import ConfigurationError
from repro.interdomain.routing import as_path, route_tree
from repro.interdomain.simulation import CoverageResult
from repro.interdomain.topology import ASGraph, Tier


def customer_cone_sizes(graph: ASGraph) -> Dict[int, int]:
    """Number of ASes in each AS's customer cone (itself included).

    The standard "how big a transit provider is" metric — SENSS-style
    deployments pick the ASes with the largest cones.
    """
    sizes: Dict[int, int] = {}

    def cone_of(asn: int) -> Set[int]:
        seen = {asn}
        queue = deque([asn])
        while queue:
            current = queue.popleft()
            for customer in graph.customers[current]:
                if customer not in seen:
                    seen.add(customer)
                    queue.append(customer)
        return seen

    for asn in graph.nodes:
        sizes[asn] = len(cone_of(asn))
    return sizes


def top_transit_ases(graph: ASGraph, count: int) -> List[int]:
    """The ``count`` largest transit ASes by customer-cone size."""
    if count <= 0:
        raise ConfigurationError("count must be positive")
    sizes = customer_cone_sizes(graph)
    transit = [
        asn for asn in graph.nodes if graph.nodes[asn].tier is not Tier.STUB
    ]
    ranked = sorted(transit, key=lambda a: (-sizes[a], a))
    return ranked[:count]


def isp_deployment_coverage(
    graph: ASGraph,
    deployed_ases: Sequence[int],
    victims: Sequence[int],
    sources: Dict[int, int],
    cumulative_levels: Sequence[int] = (1, 2, 3, 4, 5),
) -> CoverageResult:
    """Coverage when filters sit *inside* transit ASes (SENSS-style).

    ``deployed_ases`` is an ordered list (best first); level ``n`` uses its
    first ``n`` entries.  A source is handled when any deployed AS lies on
    its path to the victim (endpoints excluded — the victim filters locally
    anyway, and the source AS won't filter itself).
    """
    if not victims:
        raise ConfigurationError("need at least one victim")
    if not sources:
        raise ConfigurationError("need at least one attack source")
    if not deployed_ases:
        raise ConfigurationError("need at least one deployed AS")

    level_sets = {
        level: set(deployed_ases[:level]) for level in cumulative_levels
    }
    result = CoverageResult(
        ratios_by_level={level: [] for level in cumulative_levels}
    )
    for victim in victims:
        routes = route_tree(graph, victim)
        handled = {level: 0 for level in cumulative_levels}
        total = 0
        for src_as, count in sources.items():
            if src_as == victim:
                continue
            path = as_path(routes, src_as)
            if path is None:
                continue
            total += count
            on_path = set(path[1:-1])
            for level, deployed in level_sets.items():
                if on_path & deployed:
                    handled[level] += count
        if total == 0:
            continue
        for level in cumulative_levels:
            result.ratios_by_level[level].append(handled[level] / total)
    return result
