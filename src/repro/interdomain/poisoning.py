"""BGP-poisoning fault localization (paper Appendix B).

When the victim's audit shows VIF-allowed packets going missing, the drop
may be the filtering IXP's fault *or* an intermediate AS's.  Instead of
full-path fault localization (which needs universal collaboration), the
victim reroutes its inbound traffic to *avoid one intermediate AS at a
time* (LIFEGUARD/Nyx-style BGP poisoning needs no cooperation) and watches
whether the loss follows:

* loss stops whenever AS X is avoided and resumes when X returns → X is
  the dropper; avoid it for the rest of the session;
* loss persists on every avoidance path → the filtering network itself is
  misbehaving; discontinue the VIF contract.

The simulation models a set of covert dropper ASes; probe delivery succeeds
iff no dropper sits strictly between the filtering network and the victim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.interdomain.routing import as_path, route_tree
from repro.interdomain.topology import ASGraph


class Verdict(enum.Enum):
    """Outcome of a fault-localization campaign."""

    NO_LOSS = "no-loss-observed"
    INTERMEDIATE_AS = "intermediate-as-dropping"
    FILTERING_NETWORK = "filtering-network-misbehaving"
    INCONCLUSIVE = "inconclusive"


@dataclass
class FaultLocalizationOutcome:
    """What the victim concluded and the evidence trail."""

    verdict: Verdict
    suspect_ases: List[int] = field(default_factory=list)
    tested_ases: List[int] = field(default_factory=list)
    probes_sent: int = 0


class InboundRouteTester:
    """Victim-side Appendix-B test driver.

    ``droppers`` are the covert packet-dropping ASes (ground truth, hidden
    from the algorithm); ``filtering_network_drops`` models the VIF IXP
    itself discarding allowed packets after logging them.
    """

    def __init__(
        self,
        graph: ASGraph,
        victim: int,
        filtering_as: int,
        droppers: Optional[Set[int]] = None,
        filtering_network_drops: bool = False,
    ) -> None:
        if victim not in graph or filtering_as not in graph:
            raise RoutingError("victim or filtering AS missing from the graph")
        self.graph = graph
        self.victim = victim
        self.filtering_as = filtering_as
        self.droppers = set(droppers or set())
        self.filtering_network_drops = filtering_network_drops
        self.probes_sent = 0

    # -- the mechanics the victim has access to ---------------------------------

    def current_path(self, graph: Optional[ASGraph] = None) -> Optional[Tuple[int, ...]]:
        """The AS path from the filtering network to the victim."""
        g = graph or self.graph
        if self.filtering_as not in g or self.victim not in g:
            return None
        routes = route_tree(g, self.victim)
        return as_path(routes, self.filtering_as)

    def probe(self, path: Optional[Tuple[int, ...]]) -> bool:
        """Send one probe along ``path``; True when it arrives.

        Drops happen at the filtering network itself (if misbehaving) or at
        any dropper strictly between it and the victim.
        """
        self.probes_sent += 1
        if path is None:
            return False
        if self.filtering_network_drops:
            return False
        intermediate = path[1:-1]
        return not any(asn in self.droppers for asn in intermediate)

    # -- the Appendix-B campaign ---------------------------------------------------

    def localize(self, probes_per_path: int = 3) -> FaultLocalizationOutcome:
        """Run the full avoid-one-AS-at-a-time campaign."""
        baseline_path = self.current_path()
        if baseline_path is None:
            return FaultLocalizationOutcome(verdict=Verdict.INCONCLUSIVE)

        baseline_ok = all(
            self.probe(baseline_path) for _ in range(probes_per_path)
        )
        if baseline_ok:
            return FaultLocalizationOutcome(
                verdict=Verdict.NO_LOSS, probes_sent=self.probes_sent
            )

        if not baseline_path[1:-1]:
            # Direct handoff with loss: nobody else to blame.
            return FaultLocalizationOutcome(
                verdict=Verdict.FILTERING_NETWORK, probes_sent=self.probes_sent
            )

        suspects: List[int] = []
        tested: List[int] = []
        untestable: List[int] = []
        for candidate in baseline_path[1:-1]:
            # Poison candidate: inbound routes recompute on the graph
            # without it.  No alternate path -> cannot test this AS.
            poisoned = self.graph.without_as(candidate)
            alt_path = self.current_path(poisoned)
            if alt_path is None:
                untestable.append(candidate)
                continue
            tested.append(candidate)
            alt_ok = all(self.probe(alt_path) for _ in range(probes_per_path))
            if alt_ok:
                suspects.append(candidate)

        if suspects:
            return FaultLocalizationOutcome(
                verdict=Verdict.INTERMEDIATE_AS,
                suspect_ases=suspects,
                tested_ases=tested,
                probes_sent=self.probes_sent,
            )
        if tested and not untestable:
            # Every intermediate AS could be avoided and the loss persisted
            # on every reroute: the paper's conclusion is that the VIF IXP
            # itself is misbehaving.
            return FaultLocalizationOutcome(
                verdict=Verdict.FILTERING_NETWORK,
                tested_ases=tested,
                probes_sent=self.probes_sent,
            )
        # Some AS could not be rerouted around (e.g. the victim's only
        # provider): the victim cannot distinguish that AS from the IXP.
        return FaultLocalizationOutcome(
            verdict=Verdict.INCONCLUSIVE,
            tested_ases=tested,
            probes_sent=self.probes_sent,
        )
