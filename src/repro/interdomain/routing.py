"""Gao–Rexford policy routing (paper VI-C simulation setup).

The paper's simulation applies the standard BGP policy model: (1) prefer
customer routes over peer routes over provider routes; (2) among those,
prefer the shortest AS path; (3) break remaining ties on AS number.  Export
rules make paths *valley-free*: an AS exports customer routes to everyone
but peer/provider routes only to its customers.

:func:`route_tree` computes, for one destination, every AS's best path with
the classic three-stage BFS (customer routes bubble *up* the hierarchy, then
one peer hop, then provider routes cascade *down*), which is equivalent to
a full BGP convergence under this policy.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import RoutingError
from repro.interdomain.topology import ASGraph


class RouteKind(enum.Enum):
    """How the route was learned, in preference order."""

    ORIGIN = 0
    CUSTOMER = 1  # learned from a customer (most preferred)
    PEER = 2
    PROVIDER = 3  # learned from a provider (least preferred)


@dataclass(frozen=True)
class Route:
    """One AS's best route toward the tree's destination."""

    kind: RouteKind
    length: int  # AS hops to the destination
    next_hop: Optional[int]  # None only at the origin

    def preference(self) -> Tuple[int, int]:
        """Sort key: lower is better (kind first, then length)."""
        return (self.kind.value, self.length)


def route_tree(graph: ASGraph, destination: int) -> Dict[int, Route]:
    """Best route from every AS to ``destination`` (absent = unreachable)."""
    if destination not in graph:
        raise RoutingError(f"destination AS{destination} not in graph")

    routes: Dict[int, Route] = {
        destination: Route(kind=RouteKind.ORIGIN, length=0, next_hop=None)
    }

    # Stage 1 — customer routes: an AS that hears the route from a customer
    # re-exports it to *its* providers, so the route climbs p2c edges.
    # BFS guarantees shortest; processing neighbors in sorted order plus the
    # first-writer-wins rule implements the lowest-AS tiebreak.
    queue = deque([destination])
    while queue:
        u = queue.popleft()
        for provider in sorted(graph.providers[u]):
            if provider in routes:
                continue
            routes[provider] = Route(
                kind=RouteKind.CUSTOMER,
                length=routes[u].length + 1,
                next_hop=u,
            )
            queue.append(provider)

    # Stage 2 — peer routes: one peer hop off any customer-routed AS.
    # (Peer routes are not re-exported to peers/providers, so no BFS here.)
    customer_routed = [
        asn for asn, r in routes.items()
        if r.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER)
    ]
    peer_candidates: Dict[int, Route] = {}
    for v in customer_routed:
        for u in graph.peers[v]:
            if u in routes:
                continue
            candidate = Route(
                kind=RouteKind.PEER, length=routes[v].length + 1, next_hop=v
            )
            best = peer_candidates.get(u)
            if (
                best is None
                or candidate.length < best.length
                or (candidate.length == best.length and v < best.next_hop)  # type: ignore[operator]
            ):
                peer_candidates[u] = candidate
    routes.update(peer_candidates)

    # Stage 3 — provider routes: any routed AS exports to its customers;
    # the route cascades down p2c edges.  Dijkstra-style expansion keeps the
    # shortest-path preference among provider routes.
    heap = [
        (route.length, asn) for asn, route in routes.items()
    ]
    heapq.heapify(heap)
    while heap:
        dist, v = heapq.heappop(heap)
        if routes[v].length != dist:
            continue  # stale entry
        for u in sorted(graph.customers[v]):
            if u in routes:
                continue
            routes[u] = Route(kind=RouteKind.PROVIDER, length=dist + 1, next_hop=v)
            heapq.heappush(heap, (dist + 1, u))

    return routes


def as_path(routes: Dict[int, Route], source: int) -> Optional[Tuple[int, ...]]:
    """The AS path (source ... destination) for ``source``, or None."""
    if source not in routes:
        return None
    path = [source]
    current = source
    guard = 0
    while routes[current].next_hop is not None:
        current = routes[current].next_hop  # type: ignore[assignment]
        path.append(current)
        guard += 1
        if guard > len(routes) + 1:
            raise RoutingError("next-hop chain does not terminate (cycle)")
    return tuple(path)


def is_valley_free(graph: ASGraph, path: Tuple[int, ...]) -> bool:
    """Check the valley-free property of an AS path (used by tests).

    A valid path is a sequence of customer->provider steps, at most one
    peer step, then provider->customer steps.
    """
    # 0 = climbing, 1 = after the peak / peer edge (descending only)
    phase = 0
    for a, b in zip(path, path[1:]):
        if b in graph.providers[a]:  # uphill: a's provider
            if phase == 1:
                return False
        elif b in graph.peers[a]:  # the single lateral step
            if phase == 1:
                return False
            phase = 1
        elif b in graph.customers[a]:  # downhill
            phase = 1
        else:
            return False  # not an edge at all
    return True
