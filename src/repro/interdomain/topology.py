"""AS-level topology with business relationships.

Two relationship kinds, following the standard inference model (Gao 2001):
provider-to-customer (p2c) and peer-to-peer (p2p).  Peerings may be
annotated with the IXPs at which they occur — large IXPs are precisely
where most peer edges live, which is what makes them effective VIF
deployment points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import TopologyError


class Tier(enum.Enum):
    """Coarse AS roles used by the synthetic generator and source models."""

    TIER1 = "tier1"
    TIER2 = "tier2"
    STUB = "stub"


@dataclass(frozen=True)
class ASNode:
    """One autonomous system."""

    asn: int
    region: str
    tier: Tier


class ASGraph:
    """Mutable AS graph with p2c and p2p edges."""

    def __init__(self) -> None:
        self.nodes: Dict[int, ASNode] = {}
        self.providers: Dict[int, Set[int]] = {}
        self.customers: Dict[int, Set[int]] = {}
        self.peers: Dict[int, Set[int]] = {}
        #: peering edge -> IXP ids where that peering is established.
        self.peering_ixps: Dict[FrozenSet[int], Set[str]] = {}

    # -- construction -----------------------------------------------------------

    def add_as(self, asn: int, region: str, tier: Tier) -> ASNode:
        if asn in self.nodes:
            raise TopologyError(f"AS{asn} already exists")
        node = ASNode(asn=asn, region=region, tier=tier)
        self.nodes[asn] = node
        self.providers[asn] = set()
        self.customers[asn] = set()
        self.peers[asn] = set()
        return node

    def add_p2c(self, provider: int, customer: int) -> None:
        """Add a provider->customer edge."""
        self._require(provider)
        self._require(customer)
        if provider == customer:
            raise TopologyError("an AS cannot be its own provider")
        if customer in self.peers[provider] or provider in self.peers[customer]:
            raise TopologyError(
                f"AS{provider}-AS{customer} already peer; conflicting relationship"
            )
        if provider in self.customers[customer]:
            raise TopologyError(
                f"AS{provider} is already a customer of AS{customer}"
            )
        self.customers[provider].add(customer)
        self.providers[customer].add(provider)

    def add_p2p(self, a: int, b: int, ixp_id: Optional[str] = None) -> None:
        """Add (or re-annotate) a peer edge, optionally at an IXP."""
        self._require(a)
        self._require(b)
        if a == b:
            raise TopologyError("an AS cannot peer with itself")
        if b in self.customers[a] or a in self.customers[b]:
            raise TopologyError(
                f"AS{a}-AS{b} already have a p2c relationship; cannot also peer"
            )
        self.peers[a].add(b)
        self.peers[b].add(a)
        if ixp_id is not None:
            self.peering_ixps.setdefault(frozenset((a, b)), set()).add(ixp_id)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def ases(self) -> List[int]:
        return sorted(self.nodes)

    def ases_by_tier(self, tier: Tier) -> List[int]:
        return sorted(a for a, n in self.nodes.items() if n.tier is tier)

    def ases_by_region(self, region: str) -> List[int]:
        return sorted(a for a, n in self.nodes.items() if n.region == region)

    def degree(self, asn: int) -> int:
        self._require(asn)
        return (
            len(self.providers[asn])
            + len(self.customers[asn])
            + len(self.peers[asn])
        )

    def neighbors(self, asn: int) -> Set[int]:
        self._require(asn)
        return self.providers[asn] | self.customers[asn] | self.peers[asn]

    def num_edges(self) -> int:
        p2c = sum(len(c) for c in self.customers.values())
        p2p = sum(len(p) for p in self.peers.values()) // 2
        return p2c + p2p

    def edge_ixps(self, a: int, b: int) -> Set[str]:
        """The IXPs at which AS a and AS b peer (empty for p2c/private)."""
        return set(self.peering_ixps.get(frozenset((a, b)), set()))

    def without_as(self, asn: int) -> "ASGraph":
        """A copy of the graph with ``asn`` removed (BGP-poisoning tests)."""
        self._require(asn)
        clone = ASGraph()
        for node in self.nodes.values():
            if node.asn != asn:
                clone.add_as(node.asn, node.region, node.tier)
        for provider, custs in self.customers.items():
            if provider == asn:
                continue
            for customer in custs:
                if customer != asn:
                    clone.add_p2c(provider, customer)
        done: Set[FrozenSet[int]] = set()
        for a, peer_set in self.peers.items():
            if a == asn:
                continue
            for b in peer_set:
                if b == asn:
                    continue
                key = frozenset((a, b))
                if key in done:
                    continue
                done.add(key)
                ixps = self.peering_ixps.get(key, set())
                if ixps:
                    for ixp_id in sorted(ixps):
                        clone.add_p2p(a, b, ixp_id)
                else:
                    clone.add_p2p(a, b)
        return clone

    def validate(self) -> List[str]:
        """Structural sanity checks; returns a list of problems (empty=ok)."""
        problems: List[str] = []
        for provider, custs in self.customers.items():
            for customer in custs:
                if provider not in self.providers.get(customer, set()):
                    problems.append(
                        f"p2c edge AS{provider}->AS{customer} not mirrored"
                    )
        for a, peer_set in self.peers.items():
            for b in peer_set:
                if a not in self.peers.get(b, set()):
                    problems.append(f"p2p edge AS{a}-AS{b} not mirrored")
        # Provider cycles would break the hierarchy (and stage-1 routing).
        state: Dict[int, int] = {}

        def dfs(u: int) -> bool:
            state[u] = 1
            for v in self.providers[u]:
                if state.get(v, 0) == 1:
                    return False
                if state.get(v, 0) == 0 and not dfs(v):
                    return False
            state[u] = 2
            return True

        for asn in self.nodes:
            if state.get(asn, 0) == 0 and not dfs(asn):
                problems.append("provider hierarchy contains a cycle")
                break
        return problems

    def _require(self, asn: int) -> None:
        if asn not in self.nodes:
            raise TopologyError(f"unknown AS{asn}")
