"""Inter-domain substrate: AS topology, BGP policy routing, IXPs (paper VI).

The paper's Fig 11 study uses CAIDA AS-relationship and IXP-membership data
we do not have offline; this package generates a synthetic Internet with the
same structural features the result depends on — a provider/customer
hierarchy, valley-free (Gao–Rexford) routing, and regional IXPs whose
membership sizes mirror Table III — plus synthetic stand-ins for the two
attack-source populations (3 M open DNS resolvers, 250 K Mirai bots).
"""

from repro.interdomain.topology import ASGraph, ASNode, Tier
from repro.interdomain.routing import Route, RouteKind, route_tree
from repro.interdomain.ixp import IXP, path_transits_ixp, top_ixps_by_region
from repro.interdomain.synthetic import (
    SyntheticInternetConfig,
    generate_internet,
)
from repro.interdomain.addressing import (
    asn_of_ip,
    host_ip,
    materialize_sources,
    prefix_of,
)
from repro.interdomain.attack_sources import (
    dns_resolver_population,
    mirai_bot_population,
)
from repro.interdomain.simulation import (
    CoverageResult,
    ixp_coverage,
)
from repro.interdomain.poisoning import (
    FaultLocalizationOutcome,
    InboundRouteTester,
    Verdict,
)

__all__ = [
    "ASGraph",
    "ASNode",
    "CoverageResult",
    "FaultLocalizationOutcome",
    "IXP",
    "InboundRouteTester",
    "Route",
    "RouteKind",
    "SyntheticInternetConfig",
    "Tier",
    "Verdict",
    "asn_of_ip",
    "dns_resolver_population",
    "generate_internet",
    "host_ip",
    "ixp_coverage",
    "materialize_sources",
    "mirai_bot_population",
    "path_transits_ixp",
    "prefix_of",
    "route_tree",
    "top_ixps_by_region",
]
