"""IP address ownership for synthetic ASes.

The paper's datasets are plain IP lists (3 M resolver IPs, 250 K bot IPs)
that the authors mapped onto the AS topology.  This module provides the
equivalent glue for the synthetic Internet: every AS owns a deterministic
/16 (the two leading octets encode the AS number), so

* attack-source populations can be *materialized* as concrete IPs,
* a packet's source IP maps back to its origin AS (``asn_of_ip``), and
* victim-side detectors and in-network deployments see mutually consistent
  traffic.

The encoding keeps addresses inside globally-routable-looking space
(first octet 1..223) and supports ~57 K ASes — far beyond the synthetic
topology sizes.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, TopologyError
from repro.interdomain.topology import ASGraph
from repro.util.rng import deterministic_rng

#: ASN 1 maps to 1.1.0.0/16; the offset keeps octet one in 1..223.
_ASN_OFFSET = 256

_MAX_ASN = 223 * 256 - _ASN_OFFSET  # first octet must stay <= 223


def prefix_of(asn: int) -> str:
    """The /16 owned by ``asn`` (deterministic, collision-free)."""
    if not 1 <= asn <= _MAX_ASN:
        raise ConfigurationError(
            f"AS{asn} outside the addressable range [1, {_MAX_ASN}]"
        )
    encoded = asn + _ASN_OFFSET
    return f"{encoded // 256}.{encoded % 256}.0.0/16"


def asn_of_ip(ip: str) -> Optional[int]:
    """The owning AS of ``ip``, or None when outside the encoded space."""
    address = int(ipaddress.ip_address(ip))
    encoded = address >> 16
    asn = encoded - _ASN_OFFSET
    if 1 <= asn <= _MAX_ASN:
        return asn
    return None


def host_ip(asn: int, host_index: int) -> str:
    """The ``host_index``-th host address inside AS ``asn``'s prefix."""
    if not 0 <= host_index < 65534:
        raise ConfigurationError("host_index must be in [0, 65533]")
    network = ipaddress.ip_network(prefix_of(asn))
    return str(network.network_address + 1 + host_index)


def materialize_sources(
    graph: ASGraph,
    population: Dict[int, int],
    max_per_as: int = 254,
    seed: int = 0,
) -> Dict[int, List[str]]:
    """Concrete source IPs for an attack population ``{asn: count}``.

    Hosts are drawn deterministically from each AS's prefix (capped at
    ``max_per_as`` so waves stay laptop-sized; the cap models sampling the
    dataset, not changing its AS-level shape).
    """
    rng = deterministic_rng(f"sources:{seed}")
    out: Dict[int, List[str]] = {}
    for asn, count in sorted(population.items()):
        if asn not in graph:
            raise TopologyError(f"population references unknown AS{asn}")
        take = min(count, max_per_as)
        offsets = rng.sample(range(65534), take)
        out[asn] = [host_ip(asn, offset) for offset in offsets]
    return out
