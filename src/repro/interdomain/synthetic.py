"""Synthetic Internet generation (the CAIDA-data substitute, see DESIGN.md).

The generator builds, per region (the paper's five: Europe, North America,
South America, Asia Pacific, Africa):

* a small clique of **tier-1** transit ASes, peering with each other within
  and across regions (the default-free zone);
* **tier-2** regional transit ASes, each buying transit from 1–3 tier-1s
  and peering laterally at IXPs;
* **stub** (eyeball/content/enterprise) ASes, each buying transit from 1–3
  tier-2s (occasionally a tier-1);
* a handful of **IXPs** with skewed membership sizes mirroring Table III —
  the region's top IXP gathers a large fraction of the region's ASes, the
  tail IXPs far fewer.  Peer edges are placed *at* IXPs between sampled
  member pairs (transit-heavy members peer more, like route-server
  participants), plus the tier-1 mesh.

Structural properties the Fig 11 result depends on — most peering
concentrated at a few giant IXPs, valley-free paths crossing the hierarchy
through those peering hops — emerge from this construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.interdomain.ixp import IXP
from repro.interdomain.topology import ASGraph, Tier
from repro.util.rng import deterministic_rng

#: The paper's five regions (Table III).
PAPER_REGIONS = (
    "Europe",
    "North America",
    "South America",
    "Asia Pacific",
    "Africa",
)


@dataclass(frozen=True)
class SyntheticInternetConfig:
    """Knobs for the generator; defaults give ~1,000 ASes in seconds."""

    regions: Sequence[str] = PAPER_REGIONS
    tier1_per_region: int = 2
    tier2_per_region: int = 20
    stubs_per_region: int = 180
    ixps_per_region: int = 5
    #: Fraction of the region's ASes that join the region's rank-r IXP.
    #: Calibrated (with the tier weights below) so Fig 11 reproduces the
    #: paper's bands: Top-1 median ≈0.6, Top-5 median ≈0.75, upper
    #: quartiles 0.8-0.95 for both source populations.
    ixp_member_fractions: Sequence[float] = (0.24, 0.115, 0.07, 0.045, 0.028)
    #: Fraction of a top IXP's members drawn from other regions.
    foreign_member_fraction: float = 0.12
    #: Membership weight per tier: the big fabrics attract the large transit
    #: networks; stubs join far less often.
    member_weight_tier1: float = 3.5
    member_weight_tier2: float = 4.0
    member_weight_stub: float = 1.0
    #: Average number of IXP peers for a transit member at its IXPs.
    mean_peers_per_transit_member: int = 8
    #: Average number of IXP peers for a stub member.
    mean_peers_per_stub_member: int = 2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.tier1_per_region < 1 or self.tier2_per_region < 1:
            raise ConfigurationError("need at least one tier-1 and tier-2 per region")
        if len(self.ixp_member_fractions) < self.ixps_per_region:
            raise ConfigurationError(
                "need a member fraction for every IXP rank"
            )


def generate_internet(
    config: SyntheticInternetConfig = SyntheticInternetConfig(),
) -> Tuple[ASGraph, List[IXP]]:
    """Build the synthetic topology; returns ``(graph, ixps)``."""
    rng = deterministic_rng(f"internet:{config.seed}")
    graph = ASGraph()

    tier1s: Dict[str, List[int]] = {}
    tier2s: Dict[str, List[int]] = {}
    stubs: Dict[str, List[int]] = {}
    next_asn = 1
    for region in config.regions:
        tier1s[region] = []
        tier2s[region] = []
        stubs[region] = []
        for _ in range(config.tier1_per_region):
            graph.add_as(next_asn, region, Tier.TIER1)
            tier1s[region].append(next_asn)
            next_asn += 1
        for _ in range(config.tier2_per_region):
            graph.add_as(next_asn, region, Tier.TIER2)
            tier2s[region].append(next_asn)
            next_asn += 1
        for _ in range(config.stubs_per_region):
            graph.add_as(next_asn, region, Tier.STUB)
            stubs[region].append(next_asn)
            next_asn += 1

    # Tier-1 default-free zone: full mesh (peer) across all regions.
    all_tier1 = [asn for region in config.regions for asn in tier1s[region]]
    for i, a in enumerate(all_tier1):
        for b in all_tier1[i + 1 :]:
            graph.add_p2p(a, b)

    # Tier-2 transit: 1-3 tier-1 providers, mostly same region.
    for region in config.regions:
        for asn in tier2s[region]:
            num_providers = rng.choice((1, 2, 2, 3))
            pool = list(tier1s[region])
            other = [a for a in all_tier1 if a not in pool]
            providers = set()
            while len(providers) < num_providers:
                if other and rng.random() < 0.2:
                    providers.add(rng.choice(other))
                else:
                    providers.add(rng.choice(pool))
            for provider in providers:
                graph.add_p2c(provider, asn)

    # Stubs: 1-3 tier-2 providers (same region), rarely a tier-1 upstream.
    for region in config.regions:
        for asn in stubs[region]:
            num_providers = rng.choice((1, 1, 2, 2, 3))
            providers = set()
            while len(providers) < num_providers:
                if rng.random() < 0.05:
                    providers.add(rng.choice(tier1s[region]))
                else:
                    providers.add(rng.choice(tier2s[region]))
            for provider in providers:
                graph.add_p2c(provider, asn)

    # IXPs with skewed membership; transit ASes join preferentially.
    ixps: List[IXP] = []
    for region in config.regions:
        region_ases = tier1s[region] + tier2s[region] + stubs[region]
        foreign_ases = [
            asn
            for other in config.regions
            if other != region
            for asn in tier1s[other] + tier2s[other]
        ]
        for rank in range(config.ixps_per_region):
            ixp_id = f"ixp-{region.lower().replace(' ', '-')}-{rank + 1}"
            ixp = IXP(
                ixp_id=ixp_id,
                name=f"{region} IX {rank + 1}",
                region=region,
            )
            # Jitter the target so regional tables (Table III) differ the
            # way real regions do.
            target = max(
                3,
                int(
                    config.ixp_member_fractions[rank]
                    * len(region_ases)
                    * rng.uniform(0.85, 1.2)
                ),
            )
            tier_weights = {
                Tier.TIER1: config.member_weight_tier1,
                Tier.TIER2: config.member_weight_tier2,
                Tier.STUB: config.member_weight_stub,
            }
            weights = {
                asn: tier_weights[graph.nodes[asn].tier] for asn in region_ases
            }
            members = _weighted_sample(rng, weights, target)
            # Big IXPs attract remote members (e.g. US networks at AMS-IX).
            if rank == 0 and foreign_ases:
                extra = int(target * config.foreign_member_fraction)
                members |= set(
                    rng.sample(foreign_ases, min(extra, len(foreign_ases)))
                )
            ixp.members = members
            ixps.append(ixp)

    # Peering fabric at each IXP.
    for ixp in ixps:
        members = sorted(ixp.members)
        for asn in members:
            is_stub = graph.nodes[asn].tier is Tier.STUB
            mean = (
                config.mean_peers_per_stub_member
                if is_stub
                else config.mean_peers_per_transit_member
            )
            wanted = min(
                len(members) - 1,
                max(1, int(rng.gauss(mean, mean / 3))),
            )
            partners = rng.sample(
                [m for m in members if m != asn], wanted
            )
            for partner in partners:
                if partner in graph.customers[asn] or partner in graph.providers[asn]:
                    continue  # already a transit relationship
                graph.add_p2p(asn, partner, ixp_id=ixp.ixp_id)

    return graph, ixps


def _weighted_sample(rng, weights: Dict[int, float], count: int) -> set:
    """Sample ``count`` distinct keys with probability proportional to weight."""
    chosen: set = set()
    population = list(weights)
    weight_list = [weights[a] for a in population]
    # Rejection-style sampling keeps the implementation simple; the loop
    # terminates quickly because count << len(population) in practice.
    guard = 0
    while len(chosen) < min(count, len(population)):
        chosen.add(rng.choices(population, weights=weight_list, k=1)[0])
        guard += 1
        if guard > 50 * count + 1000:
            # Fill deterministically if rejection stalls (tiny populations).
            for asn in population:
                if len(chosen) >= min(count, len(population)):
                    break
                chosen.add(asn)
    return chosen
