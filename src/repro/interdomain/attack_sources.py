"""Synthetic attack-source populations (paper VI-C).

The paper uses two real datasets we cannot ship: ~3 M vulnerable open DNS
resolvers and ~250 K Mirai bot IPs.  What the Fig 11 simulation actually
consumes is *which ASes the sources sit in and how many per AS*; the
substitutes below reproduce the structural skew those datasets have:

* **open resolvers** are spread broadly — hosting providers, enterprise
  stubs and eyeball networks alike, across every region, with a heavy tail
  (a few ASes host very many misconfigured resolvers);
* **Mirai bots** concentrate in consumer eyeball stubs, strongly skewed
  toward a subset of regions (the original botnet clustered in South
  America and Asia; see Antonakakis et al. 2017).

Counts per AS follow a Zipf-like tail in both cases.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.interdomain.topology import ASGraph, Tier
from repro.util.rng import deterministic_rng


def _zipf_counts(rng, num_ases: int, total_sources: int) -> List[int]:
    """Split ``total_sources`` across ``num_ases`` with a Zipf-like tail."""
    weights = [1.0 / (rank + 1) ** 0.9 for rank in range(num_ases)]
    rng.shuffle(weights)
    scale = total_sources / sum(weights)
    counts = [max(1, int(w * scale)) for w in weights]
    return counts


def dns_resolver_population(
    graph: ASGraph,
    total_resolvers: int = 30_000,
    participation: float = 0.6,
    seed: int = 11,
) -> Dict[int, int]:
    """Synthetic open-resolver population: ``{asn: resolver_count}``.

    ``participation`` is the fraction of stub/tier-2 ASes hosting at least
    one open resolver — resolvers are everywhere, lightly favoring
    transit/hosting-rich ASes.
    """
    if total_resolvers <= 0:
        raise ValueError("total_resolvers must be positive")
    rng = deterministic_rng(f"resolvers:{seed}")
    candidates = graph.ases_by_tier(Tier.STUB) + graph.ases_by_tier(Tier.TIER2)
    hosts = [asn for asn in candidates if rng.random() < participation]
    if not hosts:
        hosts = candidates[:1]
    counts = _zipf_counts(rng, len(hosts), total_resolvers)
    return dict(zip(hosts, counts))


def mirai_bot_population(
    graph: ASGraph,
    total_bots: int = 25_000,
    hot_regions: Sequence[str] = ("South America", "Asia Pacific"),
    hot_region_share: float = 0.65,
    participation: float = 0.35,
    seed: int = 13,
) -> Dict[int, int]:
    """Synthetic Mirai population: ``{asn: bot_count}``.

    ``hot_region_share`` of all bots land in eyeball stubs of the
    ``hot_regions``; the remainder spreads over stubs elsewhere.
    """
    if total_bots <= 0:
        raise ValueError("total_bots must be positive")
    if not 0.0 <= hot_region_share <= 1.0:
        raise ValueError("hot_region_share must be within [0, 1]")
    rng = deterministic_rng(f"mirai-bots:{seed}")
    stubs = graph.ases_by_tier(Tier.STUB)
    hot = [a for a in stubs if graph.nodes[a].region in hot_regions]
    cold = [a for a in stubs if graph.nodes[a].region not in hot_regions]

    population: Dict[int, int] = {}
    for pool, share in ((hot, hot_region_share), (cold, 1.0 - hot_region_share)):
        if not pool or share <= 0:
            continue
        hosts = [asn for asn in pool if rng.random() < participation]
        if not hosts:
            hosts = pool[:1]
        counts = _zipf_counts(rng, len(hosts), int(total_bots * share))
        for asn, count in zip(hosts, counts):
            population[asn] = population.get(asn, 0) + count
    return population
