"""Turning attack signatures into VIF filter rules.

Given an :class:`~repro.victim.detector.AttackAssessment` and the victim's
capacity budget, the synthesizer produces non-deterministic
:class:`~repro.core.rules.FilterRule` entries — one per offending
signature — whose admit fractions implement max-min fair sharing of the
budget across signatures (heavy reflectors squeezed hard, background
traffic untouched).  Every rule targets the victim's own prefix, so the
output passes RPKI validation as-is.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.rules import FilterRule, FlowPattern
from repro.errors import ConfigurationError
from repro.victim.detector import AttackAssessment, TrafficSignature


class RuleSynthesizer:
    """Builds submittable rule lists from detector output."""

    def __init__(
        self,
        victim_prefix: str,
        requested_by: str,
        min_rule_rate_bps: float = 0.0,
        min_admit_fraction: float = 0.01,
    ) -> None:
        """``min_rule_rate_bps`` skips signatures too small to matter
        (default 0: never silently skip — operators opt in);
        ``min_admit_fraction`` keeps a diagnostic trickle of even the worst
        traffic class (a fully closed class is invisible to the victim)."""
        if not victim_prefix or not requested_by:
            raise ConfigurationError("victim prefix and identity are required")
        if not 0.0 <= min_admit_fraction <= 1.0:
            raise ConfigurationError("min_admit_fraction must be in [0, 1]")
        self.victim_prefix = victim_prefix
        self.requested_by = requested_by
        self.min_rule_rate_bps = min_rule_rate_bps
        self.min_admit_fraction = min_admit_fraction

    def synthesize(
        self,
        assessment: AttackAssessment,
        budget_bps: Optional[float] = None,
        start_rule_id: int = 1,
        max_rules: int = 3000,
    ) -> List[FilterRule]:
        """Produce the rule list for one assessment.

        ``budget_bps`` defaults to the victim capacity; ``max_rules`` caps
        the output at a single enclave's worth (the paper's ~3,000) —
        smaller signatures beyond the cap are left unfiltered, consuming
        part of the budget implicitly.
        """
        if budget_bps is None:
            budget_bps = assessment.capacity_bps
        if budget_bps <= 0:
            raise ConfigurationError("budget must be positive")
        if max_rules <= 0:
            raise ConfigurationError("max_rules must be positive")
        if not assessment.is_attack:
            return []

        chosen = [
            s for s in assessment.signatures
            if s.rate_bps >= self.min_rule_rate_bps
        ][:max_rules]
        if not chosen:
            return []
        unfiltered_rate = assessment.total_rate_bps - sum(
            s.rate_bps for s in chosen
        )
        effective_budget = max(budget_bps - max(0.0, unfiltered_rate), 0.0)

        shares = self._max_min_shares(
            {i: s.rate_bps for i, s in enumerate(chosen)}, effective_budget
        )
        rules: List[FilterRule] = []
        for index, signature in enumerate(chosen):
            fraction = (
                1.0
                if signature.rate_bps <= 0
                else min(1.0, shares[index] / signature.rate_bps)
            )
            fraction = max(fraction, self.min_admit_fraction)
            rules.append(
                FilterRule(
                    rule_id=start_rule_id + index,
                    pattern=self._pattern_for(signature),
                    p_allow=fraction,
                    rate_bps=signature.rate_bps,
                    requested_by=self.requested_by,
                )
            )
        return rules

    # -- internals -----------------------------------------------------------------

    def _pattern_for(self, signature: TrafficSignature) -> FlowPattern:
        src_ports = (
            (signature.src_port, signature.src_port)
            if signature.src_port is not None
            else None
        )
        return FlowPattern(
            src_prefix=signature.src_prefix,
            dst_prefix=self.victim_prefix,
            src_ports=src_ports,
            protocol=signature.protocol,
        )

    @staticmethod
    def _max_min_shares(
        rates: Dict[int, float], budget: float
    ) -> Dict[int, float]:
        """Water-filling of ``budget`` across the rate demands."""
        shares: Dict[int, float] = {}
        pending = dict(rates)
        remaining = budget
        while pending:
            fair = remaining / len(pending)
            satisfied = {k: r for k, r in pending.items() if r <= fair}
            if not satisfied:
                for key in pending:
                    shares[key] = fair
                break
            for key, rate in satisfied.items():
                shares[key] = rate
                remaining -= rate
                del pending[key]
        return shares
