"""Victim-side tooling: detect the attack, synthesize the filter rules.

The paper assumes the DDoS victim shows up at the IXP with rules in hand.
This package builds that missing half: an :class:`AttackDetector` that
watches the victim's inbound traffic and extracts attack signatures, and a
:class:`RuleSynthesizer` that turns signatures plus a capacity budget into
RPKI-valid :class:`~repro.core.rules.FilterRule` lists (max-min fair
admit fractions per source group) ready for
:meth:`~repro.core.session.VIFSession.submit_rules`.
"""

from repro.victim.detector import (
    AttackAssessment,
    AttackDetector,
    TrafficSignature,
)
from repro.victim.synthesis import RuleSynthesizer

__all__ = [
    "AttackAssessment",
    "AttackDetector",
    "RuleSynthesizer",
    "TrafficSignature",
]
