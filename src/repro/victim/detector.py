"""Inbound-traffic attack detection at the victim network.

The detector aggregates inbound bytes per *traffic signature* — a source
prefix group plus protocol, refined with the source port when one port
dominates the group (the fingerprint of reflection attacks: UDP/53 for DNS
amplification, UDP/123 for NTP, ...).  An attack is declared when the
aggregate inbound rate exceeds the victim's capacity watermark, and the
offending signatures are ranked by rate for the synthesizer.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataplane.packet import Packet, Protocol
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrafficSignature:
    """One aggregated traffic class seen by the victim."""

    src_prefix: str
    protocol: Protocol
    src_port: Optional[int]  # set when a single port dominates the group
    rate_bps: float

    def describe(self) -> str:
        port = f" src-port {self.src_port}" if self.src_port is not None else ""
        return (
            f"{self.protocol.name}{port} from {self.src_prefix} "
            f"at {self.rate_bps / 1e9:.2f} Gb/s"
        )


@dataclass
class AttackAssessment:
    """The detector's verdict over one observation window."""

    total_rate_bps: float
    capacity_bps: float
    is_attack: bool
    signatures: List[TrafficSignature] = field(default_factory=list)

    @property
    def overload_factor(self) -> float:
        """How many times over capacity the inbound rate is."""
        if self.capacity_bps <= 0:
            return 0.0
        return self.total_rate_bps / self.capacity_bps


class AttackDetector:
    """Aggregates inbound traffic into signatures over a window."""

    def __init__(
        self,
        capacity_bps: float,
        group_prefix_len: int = 16,
        port_dominance: float = 0.7,
        attack_watermark: float = 1.0,
    ) -> None:
        """``attack_watermark`` is the multiple of capacity at which the
        inbound rate counts as an attack (1.0 = at capacity);
        ``port_dominance`` is the traffic share one source port must hold
        within a group for the signature to pin that port."""
        if capacity_bps <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0 <= group_prefix_len <= 32:
            raise ConfigurationError("group prefix length must be in [0, 32]")
        if not 0.5 <= port_dominance <= 1.0:
            raise ConfigurationError("port_dominance must be in [0.5, 1.0]")
        self.capacity_bps = capacity_bps
        self.group_prefix_len = group_prefix_len
        self.port_dominance = port_dominance
        self.attack_watermark = attack_watermark
        # (group, protocol) -> {src_port: bytes}
        self._bytes: Dict[Tuple[str, Protocol], Dict[int, int]] = {}
        self._total_bytes = 0

    # -- ingestion -------------------------------------------------------------

    def observe(self, packet: Packet) -> None:
        """Account one inbound packet."""
        group = str(
            ipaddress.ip_network(
                f"{packet.five_tuple.src_ip}/{self.group_prefix_len}",
                strict=False,
            )
        )
        key = (group, packet.five_tuple.protocol)
        ports = self._bytes.setdefault(key, {})
        ports[packet.five_tuple.src_port] = (
            ports.get(packet.five_tuple.src_port, 0) + packet.size
        )
        self._total_bytes += packet.size

    def observe_many(self, packets) -> None:
        for packet in packets:
            self.observe(packet)

    def reset(self) -> None:
        """Start a fresh observation window."""
        self._bytes.clear()
        self._total_bytes = 0

    # -- analysis ----------------------------------------------------------------

    def analyze(self, window_s: float) -> AttackAssessment:
        """Summarize the window into an assessment (does not reset)."""
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        total_rate = self._total_bytes * 8 / window_s
        signatures: List[TrafficSignature] = []
        for (group, protocol), ports in self._bytes.items():
            group_bytes = sum(ports.values())
            top_port, top_bytes = max(ports.items(), key=lambda kv: kv[1])
            pinned: Optional[int] = (
                top_port if top_bytes / group_bytes >= self.port_dominance else None
            )
            signatures.append(
                TrafficSignature(
                    src_prefix=group,
                    protocol=protocol,
                    src_port=pinned,
                    rate_bps=group_bytes * 8 / window_s,
                )
            )
        signatures.sort(key=lambda s: (-s.rate_bps, s.src_prefix))
        return AttackAssessment(
            total_rate_bps=total_rate,
            capacity_bps=self.capacity_bps,
            is_attack=total_rate > self.attack_watermark * self.capacity_bps,
            signatures=signatures,
        )
