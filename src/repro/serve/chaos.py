"""Replaying seeded fault schedules against a live serve runtime.

:class:`ServeChaosDriver` is the serve-mode counterpart of
:class:`~repro.faults.injector.FaultInjector`: it takes a
:class:`~repro.faults.schedule.FaultSchedule` whose ``round_index`` is
reinterpreted as the **ingest burst index** and fires each event exactly
once when the service reaches that burst.  It plugs into the service as
the chaos hook (an await point inside every stage), so:

* ``STAGE_HANG`` events block the targeted stage *inside* its hook —
  which is precisely what a cancellable hang looks like to the watchdog;
* ``WORKER_KILL`` events terminate a sharded-plane worker process (the
  watchdog's ``heal()`` poll must bring it back);
* ``RULE_CHURN`` events enqueue a storm of hot installs followed by their
  removals on the control queue;
* ``IAS_OUTAGE`` events arm a :class:`~repro.faults.FlakyIAS`, so the
  next re-attestation (e.g. after a churn delta) rides the retry path.

Everything is deterministic given the schedule's seed: the same seed
replays the same kills, hangs and storms at the same burst indexes.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.errors import ConfigurationError
from repro.faults.injector import FlakyIAS
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

STAGE_BY_INDEX = ("ingest", "filter", "audit")

#: Rule ids minted by churn storms start here — far above any test fixture.
CHURN_RULE_ID_BASE = 900_000


class ServeChaosDriver:
    """Fires schedule events as the service crosses their burst index."""

    def __init__(
        self,
        schedule: FaultSchedule,
        service=None,
        ias: Optional[FlakyIAS] = None,
        churn_requester: str = "victim.example",
        churn_prefix_octet: int = 240,
    ) -> None:
        self.schedule = schedule
        self.service = service
        self.ias = ias
        self.churn_requester = churn_requester
        self.churn_prefix_octet = churn_prefix_octet
        self.applied: List[FaultEvent] = []
        self._fired: set = set()
        self._next_churn_id = CHURN_RULE_ID_BASE

    def bind(self, service) -> "ServeChaosDriver":
        """Attach the service after construction (hook-before-service)."""
        self.service = service
        return self

    async def __call__(self, stage: str, burst_index: int) -> None:
        """The service's chaos hook: fire this burst's events, once each."""
        if self.service is None:
            raise ConfigurationError("chaos driver is not bound to a service")
        # Fire everything due by now (<= burst_index): stages observe the
        # ingest counter with a lag, so an exact-index match would let
        # events fall through the cracks between two hook calls.
        for event in self.schedule.events:
            if event.round_index > burst_index:
                continue
            key = (event.round_index, event.kind, event.target, event.magnitude)
            if key in self._fired:
                continue
            # Hangs block the *targeted* stage from inside its own hook;
            # every other kind can fire from whichever stage got here first.
            if (
                event.kind is FaultKind.STAGE_HANG
                and STAGE_BY_INDEX[event.target % len(STAGE_BY_INDEX)] != stage
            ):
                continue
            self._fired.add(key)
            await self._fire(event, stage)

    async def _fire(self, event: FaultEvent, stage: str) -> None:
        self.applied.append(event)
        obs.get_registry().counter(
            "vif_faults_injected_total",
            help="Fault events applied to a fleet, by kind",
            kind=event.kind.value,
        ).inc()
        journal = obs.get_journal()
        if journal.enabled:
            journal.emit(
                "fault_injected",
                kind=event.kind.value,
                target=event.target,
                magnitude=event.magnitude,
                burst=event.round_index,
                stage=stage,
            )
        if event.kind is FaultKind.WORKER_KILL:
            backend = self.service.backend
            if not hasattr(backend, "kill_worker"):
                raise ConfigurationError(
                    "WORKER_KILL needs a sharded backend (kill_worker)"
                )
            backend.kill_worker(event.target)
        elif event.kind is FaultKind.STAGE_HANG:
            import asyncio

            # Sleep past `magnitude` heartbeat deadlines; the watchdog
            # cancels this (it runs inside the stage task), which is the
            # restart we are provoking.
            deadline = self.service.config.heartbeat_deadline_s
            await asyncio.sleep(deadline * (event.magnitude + 1))
        elif event.kind is FaultKind.RULE_CHURN:
            await self._churn(event.magnitude)
        elif event.kind is FaultKind.OFFLOAD_LIE:
            from repro.dataplane.offload import LIE_MODES, OffloadLie

            backend = self.service.backend
            if not hasattr(backend, "inject_offload_lie"):
                raise ConfigurationError(
                    "OFFLOAD_LIE needs a backend with an offload tier "
                    "(inject_offload_lie)"
                )
            mode = LIE_MODES[event.target % len(LIE_MODES)]
            backend.inject_offload_lie(
                OffloadLie(
                    mode=mode,
                    fraction=max(1, event.magnitude) / 100.0,
                    seed=f"{self.schedule.seed}/offload-lie/{event.round_index}",
                )
            )
        elif event.kind is FaultKind.LATENCY_SPIKE:
            # Synthetic: recorded straight into the latency tracker (and
            # the stage-latency SLO) rather than actually sleeping, so the
            # drill is fast and the resulting slo_violation deterministic.
            self.service.inject_stage_latency(
                STAGE_BY_INDEX[event.target % len(STAGE_BY_INDEX)],
                float(event.magnitude),
                burst=event.round_index,
            )
        elif event.kind is FaultKind.IAS_OUTAGE:
            if self.ias is None:
                raise ConfigurationError(
                    "IAS_OUTAGE event needs a FlakyIAS bound to the driver"
                )
            self.ias.fail_next(event.magnitude)
        else:
            raise ConfigurationError(
                f"{event.kind.value} is a round-scoped fault; replay it "
                "through repro.faults.injector.FaultInjector"
            )

    async def _churn(self, size: int) -> None:
        """A storm of hot installs immediately followed by their removals."""
        installed: List[int] = []
        for _ in range(max(1, size)):
            rule_id = self._next_churn_id
            self._next_churn_id += 1
            octet = (rule_id - CHURN_RULE_ID_BASE) % 250
            rule = FilterRule(
                rule_id=rule_id,
                pattern=FlowPattern(
                    dst_prefix=f"203.0.{self.churn_prefix_octet}.{octet}/32"
                ),
                action=Action.DROP,
                requested_by=self.churn_requester,
            )
            await self.service.install_rule(rule)
            installed.append(rule_id)
        for rule_id in installed:
            await self.service.remove_rule(rule_id)
