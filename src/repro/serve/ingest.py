"""Ingest sources for the always-on serve runtime.

A source is anything iterable over **bursts** (lists of packets): the
service pulls one burst per loop iteration and applies backpressure by
simply not pulling the next one while the filter queue is full.  Two
concrete sources cover the operational cases:

* :class:`PktgenSource` — deterministic synthetic traffic derived from the
  installed rule set (the serve-mode analogue of
  :func:`repro.faults.harness.rule_traffic`): every burst carries packets
  into each rule's destination prefix plus background traffic on the
  default path, all seeded, so chaos runs replay bit-for-bit.
* :class:`TraceReplaySource` — replays a recorded packet list in
  fixed-size bursts (e.g. a pcap-derived trace loaded elsewhere).

Both are plain synchronous iterables; the service's ingest stage owns the
async pacing.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, Iterator, List, Optional, Protocol as TypingProtocol, Sequence

from repro.core.rules import FilterRule, RuleSet
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import ConfigurationError
from repro.util.rng import deterministic_rng


class IngestSource(TypingProtocol):
    """Anything that yields bursts of packets (duck-typed)."""

    def bursts(self) -> Iterator[List[Packet]]:  # pragma: no cover - protocol
        ...


class PktgenSource:
    """Seeded synthetic bursts exercising every installed rule.

    ``total_bursts=None`` streams forever (the always-on case); a finite
    count makes smoke tests and benchmarks terminate on their own.  The
    per-burst mix is ``packets_per_rule`` packets into each rule's
    destination prefix (varying sources, so split rules exercise several
    replicas) plus ``background_packets`` packets to ``background_dst``
    that must ride the default path.
    """

    def __init__(
        self,
        rules: Sequence[FilterRule],
        seed: str = "vif-serve",
        packets_per_rule: int = 4,
        background_packets: int = 4,
        background_dst: str = "198.18.0.0/15",
        total_bursts: Optional[int] = None,
    ) -> None:
        if packets_per_rule < 0 or background_packets < 0:
            raise ConfigurationError("packet counts must be >= 0")
        if total_bursts is not None and total_bursts < 0:
            raise ConfigurationError("total_bursts must be >= 0 (or None)")
        self.rules = list(rules)
        self.seed = seed
        self.packets_per_rule = packets_per_rule
        self.background_packets = background_packets
        self.background_dst = background_dst
        self.total_bursts = total_bursts

    @classmethod
    def from_ruleset(cls, rules: RuleSet, **kwargs) -> "PktgenSource":
        return cls(rules.rules(), **kwargs)

    @staticmethod
    def _host_in(prefix: str, offset: int) -> str:
        net = ipaddress.ip_network(prefix, strict=False)
        return str(net.network_address + (offset % max(net.num_addresses, 1)))

    def burst(self, index: int) -> List[Packet]:
        """The (deterministic) burst at position ``index``."""
        rng = deterministic_rng(f"{self.seed}/burst-{index}")
        packets: List[Packet] = []
        for rule in self.rules:
            for k in range(self.packets_per_rule):
                flow = FiveTuple(
                    src_ip=(
                        f"198.51.{rng.randrange(256)}.{rng.randrange(1, 255)}"
                    ),
                    dst_ip=self._host_in(rule.pattern.dst_prefix, k + 1),
                    src_port=rng.randrange(1024, 65535),
                    dst_port=(
                        rule.pattern.dst_ports[0]
                        if rule.pattern.dst_ports
                        else 80
                    ),
                    protocol=rule.pattern.protocol or Protocol.TCP,
                )
                packets.append(Packet(five_tuple=flow))
        for k in range(self.background_packets):
            flow = FiveTuple(
                src_ip=f"198.51.{rng.randrange(256)}.{rng.randrange(1, 255)}",
                dst_ip=self._host_in(self.background_dst, rng.randrange(512)),
                src_port=rng.randrange(1024, 65535),
                dst_port=443,
                protocol=Protocol.TCP,
            )
            packets.append(Packet(five_tuple=flow))
        return packets

    def bursts(self) -> Iterator[List[Packet]]:
        index = 0
        while self.total_bursts is None or index < self.total_bursts:
            yield self.burst(index)
            index += 1


class TraceReplaySource:
    """Replays a recorded packet sequence in fixed-size bursts."""

    def __init__(self, packets: Iterable[Packet], burst_size: int = 64) -> None:
        if burst_size < 1:
            raise ConfigurationError("burst_size must be positive")
        self.packets = list(packets)
        self.burst_size = burst_size

    def bursts(self) -> Iterator[List[Packet]]:
        for start in range(0, len(self.packets), self.burst_size):
            yield self.packets[start : start + self.burst_size]
