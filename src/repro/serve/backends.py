"""Filter backends for the serve runtime.

The service's filter stage is backend-agnostic: anything with
``process_burst(packets) -> verdicts`` and ``apply_delta(delta)`` can sit
behind it.  Three adapters cover the stack the repo already has:

* :class:`LocalBackend` — one in-process :class:`StatelessFilter` (unit
  tests, single-core deployments).
* :class:`FleetBackend` — a :class:`~repro.core.fleet.FleetManager` behind
  :class:`~repro.core.fleet.FleetBurstFilter`; hot deltas re-solve the rule
  distribution, diff-install, and re-attest the touched enclaves through
  the fleet's bounded retry/backoff machinery.
* :class:`ShardBackend` — the multiprocessing
  :class:`~repro.dataplane.shard.ShardedDataPlane` with dead-worker
  restart enabled; the watchdog polls :meth:`ShardBackend.heal`.

``fail_closed()`` is the end-of-the-line action: when the watchdog's
restart budget is exhausted, the backend must stop passing traffic rather
than pass it unfiltered (the AITF partial-filtering stance the fleet
already takes for shed rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.filter import StatelessFilter
from repro.core.fleet import FleetBurstFilter, FleetManager
from repro.core.rules import FilterRule
from repro.dataplane.offload import OffloadEngine, OffloadLie
from repro.dataplane.packet import Packet
from repro.dataplane.shard import ShardedDataPlane
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RuleDelta:
    """One hot rule-set change, queued on the serve control plane.

    A delta is either singular (``rule`` / ``rule_id``) or a batch
    (``rules`` / ``rule_ids``) — membership-tier churn installs or retracts
    thousands of ``/32`` source rules at once, and a batch delta reaches
    every backend as **one** atomic change (one acked shard broadcast, one
    version bump), applied strictly between bursts like any other delta.
    """

    action: str  # "install" | "remove"
    rule: Optional[FilterRule] = None
    rule_id: Optional[int] = None
    rules: Optional[Tuple[FilterRule, ...]] = None
    rule_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.rules is not None:
            object.__setattr__(self, "rules", tuple(self.rules))
        if self.rule_ids is not None:
            object.__setattr__(self, "rule_ids", tuple(self.rule_ids))
        if self.action == "install":
            if self.rule is None and not self.rules:
                raise ConfigurationError("install delta needs a rule (or rules)")
        elif self.action == "remove":
            if not self.target_rule_ids:
                raise ConfigurationError(
                    "remove delta needs a rule_id (or rule_ids)"
                )
        else:
            raise ConfigurationError(
                f"unknown delta action {self.action!r} "
                "(expected 'install' or 'remove')"
            )

    @property
    def target_rules(self) -> Tuple[FilterRule, ...]:
        """The rules an install delta carries (singular form included)."""
        if self.rules is not None:
            return self.rules
        return (self.rule,) if self.rule is not None else ()

    @property
    def target_rule_ids(self) -> Tuple[int, ...]:
        """Every rule id this delta touches, in delta order."""
        if self.rule_ids is not None:
            return self.rule_ids
        if self.rules is not None:
            return tuple(rule.rule_id for rule in self.rules)
        if self.rule_id is not None:
            return (self.rule_id,)
        return (self.rule.rule_id,) if self.rule is not None else ()

    @property
    def size(self) -> int:
        return len(self.target_rule_ids)

    @property
    def target_rule_id(self) -> int:
        """The (first) rule id — journal correlation key."""
        return self.target_rule_ids[0]


class _OffloadMixin:
    """Shared offload plumbing for backends carrying an :class:`OffloadEngine`.

    The engine's tier classifies every burst first; the backend's own
    enclave path only sees the survivors plus the sampled redirects.  Rule
    deltas reach the tier in the same ``apply_delta`` call that reaches the
    enclave path (generation bump per delta), and the chaos driver's
    ``OFFLOAD_LIE`` lands through :meth:`inject_offload_lie`.
    """

    offload: Optional[OffloadEngine] = None

    def _offload_delta(self, delta: RuleDelta) -> None:
        if self.offload is not None:
            self.offload.apply_delta(delta)

    def inject_offload_lie(self, lie: OffloadLie) -> None:
        if self.offload is None:
            raise ConfigurationError("backend has no offload tier to corrupt")
        self.offload.inject_lie(lie)

    def clear_offload_lie(self) -> None:
        if self.offload is not None:
            self.offload.clear_lie()

    def offload_close_round(self, round_id: int):
        """Close one offload audit round (see OffloadAuditor.close_round)."""
        if self.offload is None:
            raise ConfigurationError("backend has no offload tier to audit")
        return self.offload.close_round(round_id)


class LocalBackend(_OffloadMixin):
    """One in-process :class:`StatelessFilter` behind the backend protocol."""

    def __init__(
        self,
        filter_: StatelessFilter,
        offload: Optional[OffloadEngine] = None,
    ) -> None:
        self.filter = filter_
        # remove_rule needs the FilterRule object; keep the live set by id
        # (installed_rules spans both tiers — membership entries included).
        self._rules: Dict[int, FilterRule] = {
            rule.rule_id: rule for rule in filter_.installed_rules()
        }
        self.offload = offload
        if offload is not None:
            offload.bind(self._enclave_burst)
            offload.tier.install_rules(list(self._rules.values()))

    @property
    def ruleset_version(self) -> int:
        return self.filter.ruleset_version

    def install_rules(self, rules: Sequence[FilterRule]) -> None:
        for rule in rules:
            self.filter.install_rule(rule)
            self._rules[rule.rule_id] = rule
        if self.offload is not None:
            self.offload.tier.install_rules(list(rules))

    def _enclave_burst(self, packets: Sequence[Packet]) -> List[object]:
        return [self.filter(packet) for packet in packets]

    def process_burst(self, packets: Sequence[Packet]) -> List[object]:
        if self.offload is not None:
            return self.offload.process_burst(packets)
        return self._enclave_burst(packets)

    def apply_delta(self, delta: RuleDelta) -> None:
        if delta.action == "install":
            for rule in delta.target_rules:
                self.filter.install_rule(rule)
                self._rules[rule.rule_id] = rule
        else:
            for rule_id in delta.target_rule_ids:
                rule = self._rules.pop(rule_id, None)
                if rule is None:
                    raise ConfigurationError(
                        f"cannot remove unknown rule {rule_id}"
                    )
                self.filter.remove_rule(rule)
        self._offload_delta(delta)

    def fail_closed(self) -> None:
        # A local filter has no load balancer to blackhole at; the service
        # stops feeding it, which is the whole fail-closed story here.
        pass

    def close(self) -> None:
        pass


class FleetBackend(_OffloadMixin):
    """A deployed fleet behind the backend protocol.

    Hot deltas go through :meth:`FleetManager.install_rule` /
    :meth:`FleetManager.remove_rule`: re-solve over the live slots,
    diff-install, rebuild load-balancer routes, and re-attest every
    enclave whose rule set changed (bounded retry + backoff).  ``heal()``
    runs one probe/recover round so the watchdog also covers enclave
    deaths, not just service-stage hangs.
    """

    def __init__(
        self,
        fleet: FleetManager,
        offload: Optional[OffloadEngine] = None,
    ) -> None:
        self.fleet = fleet
        self._burst = FleetBurstFilter(fleet)
        self.offload = offload
        if offload is not None:
            offload.bind(self._burst)

    @property
    def ruleset_version(self) -> int:
        return len(self.fleet.active_rule_ids)

    def process_burst(self, packets: Sequence[Packet]) -> List[object]:
        if self.offload is not None:
            return self.offload.process_burst(packets)
        return self._burst.process_burst(packets)

    def apply_delta(self, delta: RuleDelta) -> None:
        if delta.action == "install":
            # The fleet re-solves the distribution per install; a batch
            # delta simply drives that machinery once per rule.
            for rule in delta.target_rules:
                self.fleet.install_rule(rule)
        else:
            for rule_id in delta.target_rule_ids:
                self.fleet.remove_rule(rule_id)
        self._offload_delta(delta)

    def heal(self) -> List[int]:
        """One probe round; recover any dead slots.  Returns them."""
        self.fleet.probe()
        dead = [
            j
            for j, health in enumerate(self.fleet.health)
            if health.value == "dead"
        ]
        if dead:
            self.fleet.recover()
        return dead

    def fail_closed(self) -> None:
        """Blackhole every active rule at the load balancer."""
        active = set(self.fleet.active_rule_ids)
        if active:
            self.fleet.controller.load_balancer.blackhole(active)

    def health_summary(self) -> Dict[str, object]:
        """Fleet health rollup surfaced on ``/readyz`` and ``/varz``."""
        return self.fleet.health_summary()

    def close(self) -> None:
        pass


class ShardBackend:
    """The multiprocessing sharded data plane behind the backend protocol."""

    def __init__(self, plane: ShardedDataPlane) -> None:
        if not plane.restart_dead_workers:
            raise ConfigurationError(
                "serve mode needs restart_dead_workers=True on the plane "
                "(the watchdog owns the restart budget)"
            )
        self.plane = plane
        self._result = None

    @property
    def ruleset_version(self) -> int:
        return self.plane.ruleset_version

    def start(self) -> None:
        if not self.plane._started:
            self.plane.start()

    def process_burst(self, packets: Sequence[Packet]) -> List[object]:
        return self.plane.process(packets)

    def apply_delta(self, delta: RuleDelta) -> None:
        if delta.action == "install":
            # One acked broadcast for the whole batch: 10k membership rules
            # cost one delta round-trip per worker, not 10k.
            self.plane.install_rules(delta.target_rules)
        else:
            self.plane.remove_rules(delta.target_rule_ids)

    def heal(self) -> List[int]:
        """Restart dead workers (within budget); returns restarted ids."""
        return self.plane.heal()

    def kill_worker(self, worker_id: int) -> None:
        """Chaos hook: terminate one worker process outright."""
        worker = self.plane._workers[worker_id % self.plane.num_workers]
        worker.terminate()
        worker.join(timeout=5.0)

    def inject_offload_lie(self, lie: OffloadLie) -> None:
        """Chaos hook: corrupt every worker's fast-drop tier (acked)."""
        self.plane.inject_offload_lie(lie)

    def health_summary(self) -> Dict[str, object]:
        """Worker-process liveness rollup for ``/readyz`` and ``/varz``."""
        alive = sum(
            1 for worker in self.plane._workers if worker.is_alive()
        )
        return {
            "workers": self.plane.num_workers,
            "alive": alive,
            "all_alive": alive == self.plane.num_workers,
            "restarts": list(self.plane._worker_restarts),
        }

    def fail_closed(self) -> None:
        # Tearing the plane down guarantees no further verdicts; the
        # service stops feeding it and sheds everything still queued.
        self.plane.close()

    def finish(self):
        """Merge worker sketches/metrics (once, before close)."""
        if self._result is None and not self.plane._closed:
            self._result = self.plane.finish()
        return self._result

    def close(self) -> None:
        self.plane.close()
