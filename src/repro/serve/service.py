"""The always-on serve runtime (asyncio).

Turns the batch-oriented fleet/pipeline/shard stack into an operable
long-running process with four cooperating stage tasks over **bounded**
queues:

.. code-block:: text

    ingest ──rx_q──> filter ──audit_q──> audit
       ▲                │
       │            control_q  (rule deltas, applied between bursts)
    watchdog  (heartbeats, restarts, fail-closed)

Design rules the tests enforce:

* **Backpressure, never buffering.**  Every inter-stage queue is bounded.
  When the filter stage falls behind, ``rx_q.put`` blocks and ingest
  simply stops pulling bursts; if a burst cannot be enqueued within
  ``shed_timeout_s`` it is **shed** — counted, never silently dropped —
  and the conservation invariant still balances.
* **Hot rule updates.**  ``install_rule``/``remove_rule`` enqueue deltas
  on the control queue; a dedicated task applies them through the backend
  (re-solve + diff-install + re-attest for fleets, acked broadcast for
  shards, memo invalidation everywhere) strictly *between* bursts —
  asyncio's cooperative scheduling guarantees a synchronous
  ``process_burst`` is never interleaved with a delta.
* **Supervision.**  Every stage beats a heartbeat each loop iteration;
  the watchdog cancels and restarts a stage whose heartbeat goes stale
  (capped exponential backoff) and fails closed once a stage exhausts its
  restart budget.  A restarted filter stage resumes its in-flight burst:
  the burst rides in ``self._filter_pending`` from dequeue to hand-off,
  so a restart re-processes instead of losing it.
* **Graceful drain.**  ``drain()`` stops ingest, flushes both queues
  through filter and audit, emits the final journal/metrics snapshot,
  and returns a report with **zero** unaccounted packets:
  ``ingested == allowed + dropped + unrouted + shed`` exactly.

The conservation predicate is registered as a metrics-registry invariant
(``serve_conservation/<label>``), so ``repro metrics`` audits every live
service the same way it audits pipelines and fleets.
"""

from __future__ import annotations

import asyncio
import enum
import time
from collections import deque
from dataclasses import dataclass
from typing import Awaitable, Callable, Deque, Dict, Optional, Sequence, Tuple

from repro import obs
from repro.core.rules import FilterRule
from repro.dataplane.pipeline import UNROUTED
from repro.errors import ConfigurationError
from repro.obs.slo import (
    SLO_CONSERVATION,
    SLO_OFFLOAD_AUDIT,
    SLO_SHED_RATIO,
    SLO_STAGE_LATENCY,
    SLOEngine,
)
from repro.obs.telemetry import StageLatencyTracker, TelemetryServer
from repro.serve.backends import RuleDelta

STAGES = ("ingest", "filter", "audit")

#: Chaos hook signature: ``await hook(stage_name, burst_index)``; hooks are
#: await points, so a hanging hook is cancellable by the watchdog.
ChaosHook = Callable[[str, int], Awaitable[None]]


class ServeState(enum.Enum):
    STARTING = "starting"
    SERVING = "serving"
    DRAINING = "draining"
    DRAINED = "drained"
    FAILED = "failed"


_STATE_CODES = {state: i for i, state in enumerate(ServeState)}


@dataclass
class ServeConfig:
    """Knobs for the serve runtime (see docs/OPERATIONS.md)."""

    #: Bursts each bounded inter-stage queue holds before backpressure.
    queue_depth: int = 8
    #: How long ingest waits on a full filter queue before shedding the
    #: burst.  Backpressure below this bound is free; beyond it, shedding
    #: keeps memory bounded and the books honest.
    shed_timeout_s: float = 0.25
    #: A stage whose heartbeat is older than this is presumed hung.
    heartbeat_deadline_s: float = 2.0
    #: Watchdog poll interval.
    watchdog_interval_s: float = 0.05
    #: Stage restarts before the watchdog fails closed.
    max_stage_restarts: int = 3
    #: Capped exponential backoff between restarts of the same stage.
    restart_backoff_base_s: float = 0.05
    restart_backoff_factor: float = 2.0
    restart_backoff_cap_s: float = 1.0
    #: Drain gives in-flight bursts this long to flush before giving up.
    drain_timeout_s: float = 30.0
    #: Pause between ingest bursts (0 = as fast as backpressure allows).
    ingest_interval_s: float = 0.0
    #: When the backend carries an offload tier, the audit stage closes one
    #: offload audit round (sampled re-verdicts scored against the enclave,
    #: ``offload_bypass`` alerting) every this many audited bursts.
    offload_audit_every_bursts: int = 8
    #: Track per-stage / end-to-end latency into streaming quantile
    #: sketches (published as ``vif_serve_stage_latency_seconds`` on
    #: scrape).  Off = the telemetry-off baseline the overhead benchmark
    #: compares against.
    track_latency: bool = True
    #: A stage iteration slower than this marks its burst bad for the
    #: ``stage-latency`` SLO.  Deliberately huge by default: only injected
    #: LATENCY_SPIKE chaos (or a true outage) crosses it, so same-seed
    #: journals stay byte-identical under real measured jitter.
    slo_latency_threshold_s: float = 30.0
    #: Bind the telemetry HTTP endpoint when set (0 = ephemeral port; read
    #: ``service.telemetry.port`` after start).
    telemetry_port: Optional[int] = None
    telemetry_host: str = "127.0.0.1"
    #: After any stage restart, ``/readyz`` reports not-ready for this
    #: long.  The heartbeat-staleness window alone closes within one
    #: watchdog tick of the restart, so without the hold a load balancer
    #: polling at human rates would never observe the degradation.
    readiness_hold_s: float = 1.0
    #: Metrics label; auto-assigned when empty.
    label: str = ""


@dataclass
class DrainReport:
    """What ``drain()`` returns — the lossless-shutdown receipt."""

    state: str = ServeState.DRAINED.value
    ingested: int = 0
    allowed: int = 0
    dropped: int = 0
    unrouted: int = 0
    shed: int = 0
    rule_updates: int = 0
    stage_restarts: int = 0
    unaccounted: int = 0
    drain_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "ingested": self.ingested,
            "allowed": self.allowed,
            "dropped": self.dropped,
            "unrouted": self.unrouted,
            "shed": self.shed,
            "rule_updates": self.rule_updates,
            "stage_restarts": self.stage_restarts,
            "unaccounted": self.unaccounted,
            "drain_seconds": self.drain_seconds,
        }


class ServeService:
    """The supervisor object owning the stage tasks and the books.

    Usage (all inside one event loop)::

        service = ServeService(source, backend)
        await service.start()
        await service.install_rule(rule)      # hot, between bursts
        ...
        report = await service.drain()        # lossless shutdown
    """

    def __init__(
        self,
        source,
        backend,
        config: Optional[ServeConfig] = None,
        chaos: Optional[ChaosHook] = None,
        slo: Optional[SLOEngine] = None,
    ) -> None:
        self.source = source
        self.backend = backend
        self.config = config or ServeConfig()
        self.chaos = chaos
        self.slo = slo
        self.state = ServeState.STARTING
        cfg = self.config
        if cfg.queue_depth < 1:
            raise ConfigurationError("queue_depth must be positive")
        if cfg.max_stage_restarts < 0:
            raise ConfigurationError("max_stage_restarts must be >= 0")
        if cfg.heartbeat_deadline_s <= cfg.shed_timeout_s:
            # Ingest legitimately blocks up to shed_timeout_s per burst on
            # a full queue; a deadline inside that window turns ordinary
            # backpressure into false hang verdicts.
            raise ConfigurationError(
                "heartbeat_deadline_s must exceed shed_timeout_s "
                "(backpressure waits would read as hangs)"
            )
        self.label = cfg.label or obs.next_instance_label("serve")

        registry = obs.get_registry()
        self._counters: Dict[str, obs.Counter] = {
            name: registry.counter(
                f"vif_serve_{name}_total", help=help_, serve=self.label
            )
            for name, help_ in (
                ("ingested", "Packets pulled from the ingest source"),
                ("allowed", "Packets the filter approved"),
                ("dropped", "Packets the filter rejected"),
                ("unrouted", "Packets forwarded on the default path"),
                ("shed", "Packets shed under backpressure or fail-closed"),
                ("audited", "Packets the audit stage accounted"),
                ("rule_updates", "Hot rule deltas applied while serving"),
                ("bursts", "Ingest bursts pulled from the source"),
            )
        }
        self._restart_counters: Dict[str, obs.Counter] = {
            stage: registry.counter(
                "vif_serve_stage_restarts_total",
                help="Watchdog-initiated stage restarts",
                serve=self.label,
                stage=stage,
            )
            for stage in STAGES
        }
        self._state_gauge = registry.gauge(
            "vif_serve_state",
            help="Serve lifecycle state (0=starting..4=failed)",
            serve=self.label,
        )
        self._state_gauge.set(_STATE_CODES[self.state])
        registry.register_invariant(
            f"serve_conservation/{self.label}", self._conservation_violation
        )

        self._rx_q: Optional[asyncio.Queue] = None
        self._audit_q: Optional[asyncio.Queue] = None
        self._control_q: Optional[asyncio.Queue] = None
        self._tasks: Dict[str, asyncio.Task] = {}
        self._control_task: Optional[asyncio.Task] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._heartbeats: Dict[str, float] = {}
        self._restarts: Dict[str, int] = {stage: 0 for stage in STAGES}
        #: Packets accepted onto rx_q but not yet booked by the filter
        #: stage (the conservation invariant's in-flight term).
        self._inflight = 0
        #: The ingest stage's resume cell: the pulled-but-unqueued burst.
        self._ingest_pending: Optional[list] = None
        #: The filter stage's resume cell: [burst, verdicts-or-None].
        self._filter_pending: Optional[list] = None
        #: The audit stage's resume cell: (burst, verdicts).
        self._audit_pending: Optional[tuple] = None
        self._burst_index = 0
        self._audited_bursts = 0
        self._offload_rounds = 0
        self._source_exhausted = False
        self._started_at = 0.0
        #: Per-stage / e2e streaming latency quantiles (published on scrape).
        self.latency = StageLatencyTracker()
        self._track_latency = cfg.track_latency
        #: FIFO of (burst_index, enqueue_perf_counter) for bursts accepted
        #: onto rx_q — popped when that burst finishes audit (e2e latency,
        #: SLO burst close).  Shed bursts never enter; fail-closed clears it.
        self._burst_marks: Deque[Tuple[int, float]] = deque()
        self.telemetry: Optional[TelemetryServer] = None
        self._watchdog_beat = 0.0
        #: ``/readyz`` reports not-ready until this loop-time (set by stage
        #: restarts; see ``ServeConfig.readiness_hold_s``).
        self._degraded_until = 0.0
        #: Last offload audit round's verdict (readyz + offload-audit SLO).
        self._offload_suspicious = False
        #: Set once fail-closed shedding finished; drain() awaits it so a
        #: report taken on the failure path never snapshots mid-shed books.
        self._fail_closed_complete: Optional[asyncio.Event] = None

    # -- accounting -------------------------------------------------------------

    def _conservation_violation(self) -> Optional[str]:
        c = self._counters
        accounted = (
            c["allowed"].value
            + c["dropped"].value
            + c["unrouted"].value
            + c["shed"].value
        )
        # A pulled burst is counted ``ingested`` immediately but only
        # joins ``_inflight`` once the queue put lands; the audit stage
        # (conservation SLO) can observe that await window, so the burst
        # riding in ``_ingest_pending`` must count toward the balance.
        pending = (
            len(self._ingest_pending) if self._ingest_pending is not None else 0
        )
        if c["ingested"].value == accounted + self._inflight + pending:
            return None
        return (
            f"serve lost packets untracked: ingested={c['ingested'].value}, "
            f"allowed={c['allowed'].value}, dropped={c['dropped'].value}, "
            f"unrouted={c['unrouted'].value}, shed={c['shed'].value}, "
            f"in_flight={self._inflight}, pending={pending}"
        )

    def check_conservation(self) -> None:
        violation = self._conservation_violation()
        if violation is not None:
            raise RuntimeError(violation)

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    # -- lifecycle --------------------------------------------------------------

    def _set_state(self, state: ServeState, **payload) -> None:
        previous, self.state = self.state, state
        self._state_gauge.set(_STATE_CODES[state])
        journal = obs.get_journal()
        if journal.enabled:
            journal.emit(
                "serve_state",
                serve=self.label,
                state=state.value,
                previous=previous.value,
                **payload,
            )

    async def start(self) -> "ServeService":
        if self._tasks:
            raise ConfigurationError("service already started")
        cfg = self.config
        self._rx_q = asyncio.Queue(maxsize=cfg.queue_depth)
        self._audit_q = asyncio.Queue(maxsize=cfg.queue_depth)
        self._control_q = asyncio.Queue()
        self._source_iter = iter(self.source.bursts())
        self._started_at = time.perf_counter()
        if hasattr(self.backend, "start"):
            self.backend.start()
        loop = asyncio.get_running_loop()
        now = loop.time()
        for stage in STAGES:
            self._heartbeats[stage] = now
            self._tasks[stage] = asyncio.create_task(
                self._run_stage(stage), name=f"serve-{self.label}-{stage}"
            )
        self._control_task = asyncio.create_task(
            self._control_stage(), name=f"serve-{self.label}-control"
        )
        self._watchdog_task = asyncio.create_task(
            self._watchdog(), name=f"serve-{self.label}-watchdog"
        )
        self._watchdog_beat = now
        if cfg.telemetry_port is not None:
            self.telemetry = TelemetryServer(
                host=cfg.telemetry_host,
                port=cfg.telemetry_port,
                health=self._health_status,
                ready=self._ready_status,
                varz=self._varz_view,
                refresh=self._publish_latency,
            )
            await self.telemetry.start()
        self._set_state(ServeState.SERVING)
        return self

    def _beat(self, stage: str) -> None:
        self._heartbeats[stage] = asyncio.get_running_loop().time()

    async def _maybe_chaos(self, stage: str) -> None:
        if self.chaos is not None:
            await self.chaos(stage, self._burst_index)

    # -- stages -----------------------------------------------------------------

    def _stage_body(self, stage: str):
        return {
            "ingest": self._ingest_once,
            "filter": self._filter_once,
            "audit": self._audit_once,
        }[stage]

    async def _run_stage(self, stage: str) -> None:
        body = self._stage_body(stage)
        while True:
            self._beat(stage)
            if self._track_latency:
                t0 = time.perf_counter()
                idle = await body()
                if not idle:
                    elapsed = time.perf_counter() - t0
                    self.latency.observe(stage, elapsed)
                    if elapsed > self.config.slo_latency_threshold_s:
                        self._slo_observe(
                            SLO_STAGE_LATENCY,
                            self._burst_index,
                            bad=True,
                            worst=self.latency.sketch(stage).bucket_bound(elapsed),
                        )
            else:
                idle = await body()
            if idle:
                await asyncio.sleep(0.005)

    async def _ingest_once(self) -> bool:
        """Pull one burst and enqueue it (or shed under backpressure).

        The pulled burst rides in ``self._ingest_pending`` until it is
        either queued (counted in-flight) or shed, so a cancellation at
        any await point — chaos hook, queue put — can never leak an
        ingested-but-unaccounted burst: a restarted stage resumes it, and
        drain/fail-closed sheds it explicitly.
        """
        if self.state is not ServeState.SERVING or self._source_exhausted:
            return True
        if self._ingest_pending is None:
            try:
                burst = next(self._source_iter)
            except StopIteration:
                self._source_exhausted = True
                return True
            self._ingest_pending = burst
            self._burst_index += 1
            self._counters["bursts"].inc()
            self._counters["ingested"].inc(len(burst))
        burst = self._ingest_pending
        await self._maybe_chaos("ingest")
        try:
            await asyncio.wait_for(
                self._rx_q.put(burst), timeout=self.config.shed_timeout_s
            )
            self._inflight += len(burst)
            self._burst_marks.append((self._burst_index, time.perf_counter()))
        except asyncio.TimeoutError:
            # The filter queue stayed full past the bound: shed the burst
            # (counted, conservation-visible) instead of buffering it.
            self._counters["shed"].inc(len(burst))
            # A shed burst never reaches audit, so its SLO window closes
            # here: one bad shed-ratio sample.
            self._slo_observe(SLO_SHED_RATIO, self._burst_index, bad=True)
            self._slo_close(self._burst_index)
        self._ingest_pending = None
        if self.config.ingest_interval_s:
            await asyncio.sleep(self.config.ingest_interval_s)
        return False

    async def _filter_once(self) -> bool:
        """Adjudicate one burst; resumes the in-flight burst after restart."""
        if self._filter_pending is None:
            try:
                burst = await asyncio.wait_for(
                    self._rx_q.get(), timeout=0.05
                )
            except asyncio.TimeoutError:
                return True
            self._filter_pending = [burst, None]
        burst, verdicts = self._filter_pending
        await self._maybe_chaos("filter")
        if verdicts is None:
            # Synchronous adjudication: no await between the verdict and
            # the booking, so a cancellation can never half-book a burst.
            verdicts = self.backend.process_burst(burst)
            self._filter_pending[1] = verdicts
            allowed = dropped = unrouted = 0
            for verdict in verdicts:
                if verdict is UNROUTED:
                    unrouted += 1
                elif verdict:
                    allowed += 1
                else:
                    dropped += 1
            self._counters["allowed"].inc(allowed)
            self._counters["dropped"].inc(dropped)
            self._counters["unrouted"].inc(unrouted)
            self._inflight -= len(burst)
        await self._audit_q.put((burst, verdicts))
        self._filter_pending = None
        return False

    async def _audit_once(self) -> bool:
        """Account one adjudicated burst (and feed the flight recorder)."""
        if self._audit_pending is None:
            try:
                self._audit_pending = await asyncio.wait_for(
                    self._audit_q.get(), timeout=0.05
                )
            except asyncio.TimeoutError:
                return True
        burst, verdicts = self._audit_pending
        await self._maybe_chaos("audit")
        recorder = obs.get_flight_recorder()
        if recorder.enabled:
            recorder.record_batch(
                (
                    packet.five_tuple.key().decode(),
                    None,
                    UNROUTED
                    if verdict is UNROUTED
                    else ("allowed" if verdict else "dropped"),
                    None,
                )
                for packet, verdict in zip(burst, verdicts)
            )
        self._counters["audited"].inc(len(burst))
        self._audit_pending = None
        self._audited_bursts += 1
        if self._burst_marks:
            mark_index, mark_t = self._burst_marks.popleft()
        else:
            mark_index, mark_t = self._burst_index, 0.0
        if self._track_latency and mark_t:
            self.latency.observe("e2e", time.perf_counter() - mark_t)
        every = self.config.offload_audit_every_bursts
        if (
            every > 0
            and self._audited_bursts % every == 0
            and getattr(self.backend, "offload", None) is not None
        ):
            # Synchronous (no awaits): a watchdog cancellation can never
            # split a round between scoring and reset.
            self._offload_rounds += 1
            report = self.backend.offload_close_round(self._offload_rounds)
            self._offload_suspicious = bool(
                getattr(report, "suspicious", False)
            )
            self._slo_observe(
                SLO_OFFLOAD_AUDIT, mark_index, bad=self._offload_suspicious
            )
        self._slo_observe(
            SLO_CONSERVATION,
            mark_index,
            bad=self._conservation_violation() is not None,
        )
        self._slo_close(mark_index)
        return False

    async def _control_stage(self) -> None:
        """Apply queued rule deltas between bursts, journaling each one."""
        while True:
            delta, done = await self._control_q.get()
            apply_started = time.perf_counter() if self._track_latency else 0.0
            try:
                self.backend.apply_delta(delta)
            except Exception as exc:  # surface to the caller, keep serving
                if done is not None and not done.done():
                    done.set_exception(exc)
                continue
            if self._track_latency:
                self.latency.observe(
                    "control", time.perf_counter() - apply_started
                )
            self._counters["rule_updates"].inc()
            journal = obs.get_journal()
            if journal.enabled and not hasattr(self.backend, "fleet"):
                # FleetBackend journals rule_update itself (with slots);
                # journal here for the backends that don't.
                journal.emit(
                    "rule_update",
                    serve=self.label,
                    action=delta.action,
                    rule_id=delta.target_rule_id,
                    ruleset_version=getattr(
                        self.backend, "ruleset_version", None
                    ),
                )
            if done is not None and not done.done():
                done.set_result(None)

    # -- control-plane API -------------------------------------------------------

    async def apply_delta(self, delta: RuleDelta) -> None:
        """Queue one rule delta and wait until the backend applied it."""
        if self.state not in (ServeState.SERVING, ServeState.STARTING):
            raise ConfigurationError(
                f"cannot apply rule deltas while {self.state.value}"
            )
        done: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._control_q.put((delta, done))
        await done

    async def install_rule(self, rule: FilterRule) -> None:
        await self.apply_delta(RuleDelta(action="install", rule=rule))

    async def remove_rule(self, rule_id: int) -> None:
        await self.apply_delta(RuleDelta(action="remove", rule_id=rule_id))

    async def install_rules(self, rules) -> None:
        """Install a batch of rules as **one** delta (one acked shard
        broadcast) — the membership-tier churn path."""
        await self.apply_delta(RuleDelta(action="install", rules=tuple(rules)))

    async def remove_rules(self, rule_ids) -> None:
        """Remove a batch of rules as one delta."""
        await self.apply_delta(RuleDelta(action="remove", rule_ids=tuple(rule_ids)))

    # -- watchdog ----------------------------------------------------------------

    async def _watchdog(self) -> None:
        """Supervision loop; any unexpected error here fails closed —
        a silently dead watchdog would leave hangs unsupervised."""
        try:
            await self._watchdog_loop()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if self.state not in (ServeState.DRAINED, ServeState.FAILED):
                await self._fail_closed(f"watchdog crashed: {exc!r}")

    async def _watchdog_loop(self) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        last_poll = loop.time()
        while True:
            await asyncio.sleep(cfg.watchdog_interval_s)
            self._watchdog_beat = loop.time()
            if self.state in (ServeState.DRAINED, ServeState.FAILED):
                return
            now = loop.time()
            starved = now - last_poll > cfg.watchdog_interval_s * 4
            last_poll = now
            if starved:
                # The event loop itself was blocked (a synchronous burst —
                # e.g. sharded-plane recovery — ran long), so *every*
                # heartbeat looks stale.  That is busyness, not a hang:
                # re-beat and re-arm instead of mass-restarting healthy
                # stages.  A genuinely hung stage trips the deadline again
                # on a later (unstarved) poll.
                for stage in STAGES:
                    self._beat(stage)
                continue
            # Backend self-heal (sharded planes restart dead workers here).
            if hasattr(self.backend, "heal"):
                try:
                    healed = self.backend.heal()
                except RuntimeError as exc:
                    await self._fail_closed(f"backend heal failed: {exc}")
                    return
                if healed:
                    self._journal_restart("worker", healed)
            now = loop.time()
            if now - last_poll > cfg.watchdog_interval_s * 4:
                # heal() itself ran long (worker respawn + re-dispatch);
                # same starvation story as above.
                last_poll = now
                for stage in STAGES:
                    self._beat(stage)
                continue
            last_poll = now
            for stage in STAGES:
                task = self._tasks.get(stage)
                if task is None:
                    continue
                stale = (
                    now - self._heartbeats[stage] > cfg.heartbeat_deadline_s
                )
                died = task.done()
                if not (stale or died):
                    continue
                if self._restarts[stage] >= cfg.max_stage_restarts:
                    await self._fail_closed(
                        f"stage {stage!r} exhausted its restart budget "
                        f"({cfg.max_stage_restarts})"
                    )
                    return
                await self._restart_stage(stage, hung=stale and not died)

    async def _restart_stage(self, stage: str, hung: bool) -> None:
        cfg = self.config
        self._degraded_until = max(
            self._degraded_until,
            asyncio.get_running_loop().time() + cfg.readiness_hold_s,
        )
        task = self._tasks[stage]
        if not task.done():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        else:
            # Surface (and swallow) the stage's exception so it is not an
            # un-retrieved task error; the restart is the handling.
            exc = task.exception() if not task.cancelled() else None
            if exc is not None:
                self._journal_restart(stage, error=repr(exc))
        self._restarts[stage] += 1
        self._restart_counters[stage].inc()
        delay = min(
            cfg.restart_backoff_base_s
            * (cfg.restart_backoff_factor ** (self._restarts[stage] - 1)),
            cfg.restart_backoff_cap_s,
        )
        await asyncio.sleep(delay)
        self._beat(stage)
        self._tasks[stage] = asyncio.create_task(
            self._run_stage(stage), name=f"serve-{self.label}-{stage}"
        )
        self._journal_restart(
            stage, hung=hung, attempt=self._restarts[stage], backoff_s=delay
        )

    def _journal_restart(self, stage, healed_workers=None, **payload) -> None:
        journal = obs.get_journal()
        if journal.enabled:
            body = {"serve": self.label, "stage": str(stage)}
            if healed_workers is not None:
                body["workers"] = list(healed_workers)
            body.update(payload)
            journal.emit("stage_restart", **body)

    async def _fail_closed(self, reason: str) -> None:
        """Restart budget exhausted: stop serving, shed, blackhole."""
        if self._fail_closed_complete is None:
            self._fail_closed_complete = asyncio.Event()
        self._set_state(ServeState.FAILED, reason=reason)
        # Stop every stage; book everything still queued as shed so the
        # conservation invariant balances on the way down.
        await self._cancel_stages()
        shed = 0
        inflight_shed = 0
        if self._ingest_pending is not None:
            # Pulled but never queued: counted ingested, not yet in-flight.
            shed += len(self._ingest_pending)
            self._ingest_pending = None
        if self._filter_pending is not None and self._filter_pending[1] is None:
            shed += len(self._filter_pending[0])
            inflight_shed += len(self._filter_pending[0])
            self._filter_pending = None
        while self._rx_q is not None and not self._rx_q.empty():
            burst = self._rx_q.get_nowait()
            shed += len(burst)
            inflight_shed += len(burst)
        if shed:
            self._counters["shed"].inc(shed)
            self._inflight -= inflight_shed
        self._burst_marks.clear()
        if hasattr(self.backend, "fail_closed"):
            self.backend.fail_closed()
        self.check_conservation()
        self._fail_closed_complete.set()

    async def _cancel_stages(self, include_control: bool = True) -> None:
        tasks = [t for t in self._tasks.values() if not t.done()]
        if include_control and self._control_task is not None:
            if not self._control_task.done():
                tasks.append(self._control_task)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        # Retrieve exceptions from already-done tasks too.
        for task in list(self._tasks.values()):
            if task.done() and not task.cancelled():
                task.exception()

    # -- drain -------------------------------------------------------------------

    async def drain(self) -> DrainReport:
        """Graceful shutdown: stop ingest, flush everything, settle books."""
        if self.state is ServeState.FAILED:
            if self._fail_closed_complete is not None:
                await self._fail_closed_complete.wait()
            return await self._finish_drain(time.perf_counter())
        started = time.perf_counter()
        self._set_state(ServeState.DRAINING)
        # 1. Stop ingest (state gate makes _ingest_once a no-op; cancel the
        #    task so a burst stuck in a shed-wait is re-shed deterministically).
        ingest = self._tasks.pop("ingest", None)
        if ingest is not None and not ingest.done():
            ingest.cancel()
            try:
                await ingest
            except (asyncio.CancelledError, Exception):
                pass
        if self._ingest_pending is not None:
            # A burst caught between pull and enqueue at shutdown is shed
            # (counted), never silently lost.
            self._counters["shed"].inc(len(self._ingest_pending))
            self._ingest_pending = None
        # 2. Flush: wait for both queues and both resume cells to empty.
        deadline = started + self.config.drain_timeout_s
        while (
            not self._rx_q.empty()
            or self._filter_pending is not None
            or not self._audit_q.empty()
            or self._audit_pending is not None
        ):
            if time.perf_counter() > deadline:
                await self._fail_closed("drain timed out with bursts in flight")
                return await self._finish_drain(started)
            if self.state is ServeState.FAILED:
                if self._fail_closed_complete is not None:
                    await self._fail_closed_complete.wait()
                return await self._finish_drain(started)
            await asyncio.sleep(0.01)
        # 3. Stop the remaining stages and the watchdog.
        if self._watchdog_task is not None and not self._watchdog_task.done():
            self._watchdog_task.cancel()
            try:
                await self._watchdog_task
            except (asyncio.CancelledError, Exception):
                pass
        await self._cancel_stages()
        if getattr(self.backend, "offload", None) is not None:
            # Score whatever the last partial round accumulated; a lying
            # tier must not escape by the run ending mid-round.
            self._offload_rounds += 1
            self.backend.offload_close_round(self._offload_rounds)
        self._set_state(ServeState.DRAINED)
        self.check_conservation()
        if hasattr(self.backend, "finish"):
            try:
                self.backend.finish()
            except Exception:
                pass
        self.backend.close()
        return await self._finish_drain(started)

    async def _finish_drain(self, drain_started: float) -> DrainReport:
        report = self._final_report(drain_started)
        if self.telemetry is not None:
            await self.telemetry.stop()
        return report

    def _final_report(self, drain_started: float) -> DrainReport:
        c = self.counters()
        report = DrainReport(
            state=self.state.value,
            ingested=c["ingested"],
            allowed=c["allowed"],
            dropped=c["dropped"],
            unrouted=c["unrouted"],
            shed=c["shed"],
            rule_updates=c["rule_updates"],
            stage_restarts=sum(self._restarts.values()),
            unaccounted=(
                c["ingested"]
                - c["allowed"]
                - c["dropped"]
                - c["unrouted"]
                - c["shed"]
            ),
            drain_seconds=time.perf_counter() - drain_started,
        )
        if self._track_latency:
            self.latency.observe("drain", report.drain_seconds)
            self._publish_latency()
        journal = obs.get_journal()
        if journal.enabled:
            # drain_seconds is wall-clock and would make otherwise
            # identical same-seed journals diverge byte-wise; the caller's
            # DrainReport still carries it, the journal omits it.
            journaled = report.as_dict()
            journaled.pop("drain_seconds", None)
            journal.emit(
                "serve_state",
                serve=self.label,
                state=self.state.value,
                previous=self.state.value,
                **{"report": journaled},
            )
        if journal.sink is not None:
            journal.sink.flush()
        return report

    @property
    def stage_restarts(self) -> Dict[str, int]:
        return dict(self._restarts)

    # -- telemetry & SLO ---------------------------------------------------------

    def _publish_latency(self) -> None:
        """Refresh latency-quantile gauges (runs before every scrape)."""
        if self._track_latency:
            self.latency.publish()

    def _slo_observe(
        self, name: str, burst: int, bad: bool, worst: float = 0.0
    ) -> None:
        if self.slo is not None and self.slo.has(name):
            self.slo.observe(name, burst, bad, worst)

    def _slo_close(self, burst: int) -> None:
        if self.slo is not None:
            self.slo.close_burst(burst)

    def inject_stage_latency(
        self, stage: str, seconds: float, burst: Optional[int] = None
    ) -> None:
        """Chaos entry point (LATENCY_SPIKE): record a synthetic latency.

        Feeds the quantile tracker and — when the spike crosses the SLO
        threshold — marks the burst bad with a *bucket-quantized* worst
        value, so the resulting ``slo_violation`` payload is deterministic.
        The violation fires when this burst closes in the audit stage,
        i.e. in the same round the spike was injected.
        """
        burst_index = self._burst_index if burst is None else burst
        self.latency.observe(stage, seconds)
        self._slo_observe(
            SLO_STAGE_LATENCY,
            burst_index,
            bad=seconds > self.config.slo_latency_threshold_s,
            worst=self.latency.sketch(stage).bucket_bound(seconds),
        )

    def _health_status(self) -> Tuple[bool, Dict[str, object]]:
        """Liveness: the event loop turns and the watchdog itself is fresh.

        Deliberately stays true through a STAGE_HANG — the watchdog is
        alive and will restart the stage; killing the process would lose
        the drain.
        """
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:
            return False, {"state": self.state.value, "reason": "no event loop"}
        task = self._watchdog_task
        alive = task is not None and not task.done()
        # The watchdog beats every watchdog_interval_s; allow generous slack
        # for loop starvation before declaring the supervisor itself dead.
        deadline = max(self.config.watchdog_interval_s * 20, 2.0)
        age = now - self._watchdog_beat if self._watchdog_beat else 0.0
        ok = alive and age <= deadline
        return ok, {
            "state": self.state.value,
            "watchdog_alive": alive,
            "watchdog_beat_age_s": round(age, 3),
        }

    def _ready_status(self) -> Tuple[bool, Dict[str, object]]:
        """Readiness: serving, every stage running with a fresh heartbeat,
        no post-restart degraded hold, offload auditor within bounds."""
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:
            return False, {"state": self.state.value, "reason": "no event loop"}
        stages: Dict[str, object] = {}
        stages_ok = True
        for stage in STAGES:
            task = self._tasks.get(stage)
            alive = task is not None and not task.done()
            age = now - self._heartbeats.get(stage, 0.0)
            fresh = age <= self.config.heartbeat_deadline_s
            stages[stage] = {
                "alive": alive,
                "beat_age_s": round(age, 3),
                "fresh": fresh,
            }
            stages_ok = stages_ok and alive and fresh
        backend_health = None
        if hasattr(self.backend, "health_summary"):
            try:
                backend_health = self.backend.health_summary()
            except Exception as exc:
                backend_health = {"error": repr(exc)}
        degraded = now < self._degraded_until
        ok = (
            self.state is ServeState.SERVING
            and stages_ok
            and not degraded
            and not self._offload_suspicious
        )
        detail: Dict[str, object] = {
            "state": self.state.value,
            "stages": stages,
            "degraded": degraded,
            "offload_suspicious": self._offload_suspicious,
        }
        if backend_health is not None:
            detail["backend"] = backend_health
        return ok, detail

    def _varz_view(self) -> Dict[str, object]:
        """The service-state block of ``/varz``."""
        view: Dict[str, object] = {
            "label": self.label,
            "state": self.state.value,
            "counters": self.counters(),
            "stage_restarts": dict(self._restarts),
            "bursts": self._burst_index,
            "stage_latency": self.latency.snapshot(),
        }
        if self.slo is not None:
            view["slo"] = self.slo.status()
        if hasattr(self.backend, "health_summary"):
            try:
                view["backend"] = self.backend.health_summary()
            except Exception as exc:
                view["backend"] = {"error": repr(exc)}
        return view


async def serve_bounded(
    source,
    backend,
    config: Optional[ServeConfig] = None,
    chaos: Optional[ChaosHook] = None,
    deltas: Optional[Sequence[RuleDelta]] = None,
    delta_every_bursts: int = 0,
    slo: Optional[SLOEngine] = None,
) -> DrainReport:
    """Run a finite source to exhaustion, then drain (smoke/bench helper).

    ``deltas`` are applied round-robin every ``delta_every_bursts`` ingest
    bursts — the simplest way to exercise rule churn under load.
    """
    service = ServeService(source, backend, config=config, chaos=chaos, slo=slo)
    await service.start()
    pending = list(deltas or [])
    applied_at = 0
    while not service._source_exhausted:
        if service.state is ServeState.FAILED:
            break
        if (
            pending
            and delta_every_bursts
            and service._burst_index >= applied_at + delta_every_bursts
        ):
            applied_at = service._burst_index
            await service.apply_delta(pending.pop(0))
        await asyncio.sleep(0.005)
    return await service.drain()
