"""``repro.serve`` — the always-on service runtime (PR 7).

Turns the batch-oriented fleet/pipeline/shard stack into an operable
long-running process: continuous ingest through bounded queues with
explicit backpressure and shed accounting, hot rule install/remove
without restart, a watchdog supervisor with capped-backoff restarts that
fails closed when the budget is exhausted, and a graceful drain that
exits with zero unaccounted packets.  See ``docs/OPERATIONS.md`` for the
runbook.
"""

from repro.serve.backends import (
    FleetBackend,
    LocalBackend,
    RuleDelta,
    ShardBackend,
)
from repro.serve.chaos import ServeChaosDriver
from repro.serve.ingest import IngestSource, PktgenSource, TraceReplaySource
from repro.serve.service import (
    DrainReport,
    ServeConfig,
    ServeService,
    ServeState,
    serve_bounded,
)

__all__ = [
    "DrainReport",
    "FleetBackend",
    "IngestSource",
    "LocalBackend",
    "PktgenSource",
    "RuleDelta",
    "ServeChaosDriver",
    "ServeConfig",
    "ServeService",
    "ServeState",
    "ShardBackend",
    "TraceReplaySource",
    "serve_bounded",
]
