"""Unit conversions used throughout the data-plane and optimizer code.

Bandwidths are stored internally in **bits per second** and memory in
**bytes**; the constants below make call sites read like the paper
(``10 * GBPS``, ``92 * MB``).  Packet-per-second math accounts for Ethernet
framing overhead the same way a 10 GbE NIC does, so ``line_rate_pps(64)``
gives the familiar 14.88 Mpps.
"""

from __future__ import annotations

#: One gigabit per second, in bits per second.
GBPS = 1_000_000_000

#: One million packets per second.
MPPS = 1_000_000

#: Binary kilobyte / megabyte, in bytes.
KB = 1024
MB = 1024 * 1024

#: Preamble (7 B) + SFD (1 B) + inter-frame gap (12 B) per Ethernet frame.
#: The 4-byte FCS is part of the frame and assumed included in packet size,
#: matching how pktgen-dpdk reports sizes.
_WIRE_OVERHEAD_BYTES = 20


def ethernet_frame_overhead_bytes() -> int:
    """Return the per-frame wire overhead (preamble + SFD + IFG) in bytes."""
    return _WIRE_OVERHEAD_BYTES


def line_rate_pps(packet_size_bytes: int, link_bps: float = 10 * GBPS) -> float:
    """Maximum packets/second a link can carry at the given packet size.

    >>> round(line_rate_pps(64) / 1e6, 2)
    14.88
    """
    if packet_size_bytes <= 0:
        raise ValueError("packet size must be positive")
    wire_bits = (packet_size_bytes + _WIRE_OVERHEAD_BYTES) * 8
    return link_bps / wire_bits


def pps_to_gbps(pps: float, packet_size_bytes: int) -> float:
    """Convert a packet rate to goodput in Gb/s (payload bits only)."""
    return pps * packet_size_bytes * 8 / GBPS


def gbps_to_pps(gbps: float, packet_size_bytes: int) -> float:
    """Convert a goodput in Gb/s to a packet rate for the given size."""
    if packet_size_bytes <= 0:
        raise ValueError("packet size must be positive")
    return gbps * GBPS / (packet_size_bytes * 8)


def bits_to_gbps(bits_per_second: float) -> float:
    """Convert a rate in bits/s to Gb/s."""
    return bits_per_second / GBPS
