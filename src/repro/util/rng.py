"""Deterministic randomness helpers.

Every stochastic component in the library takes an explicit seed and derives
its generator through :func:`deterministic_rng`, so whole experiments replay
bit-for-bit.  :func:`stable_hash64` is a process-independent 64-bit hash
(Python's builtin ``hash`` is salted per process) used for sketch hashing and
hash-based filtering decisions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

from repro.obs import LazyCounter

Seedable = Union[int, str, bytes]

#: Every SHA-256 digest computed on the data path (sketch hashing, hash-based
#: filtering decisions) counts here; the micro-benchmark gate bounds the
#: per-packet delta.
SHA_DIGESTS = LazyCounter(
    "vif_fastpath_sha256_digests_total",
    help="SHA-256 digests computed by data-path hashing",
)


def deterministic_rng(seed: Seedable) -> random.Random:
    """Return a ``random.Random`` seeded deterministically from ``seed``."""
    if isinstance(seed, int):
        return random.Random(seed)
    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    digest = hashlib.sha256(seed).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def stable_hash64(data: Union[str, bytes], salt: Union[str, bytes] = b"") -> int:
    """A stable (cross-process) 64-bit hash of ``data`` under ``salt``.

    Built from SHA-256 so different salts give effectively independent hash
    functions — the property the count-min sketch analysis needs.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    if isinstance(salt, str):
        salt = salt.encode("utf-8")
    SHA_DIGESTS.inc()
    digest = hashlib.sha256(salt + b"\x00" + data).digest()
    return int.from_bytes(digest[:8], "big")
