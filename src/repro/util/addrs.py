"""Compiled IP address handling for the per-packet hot path.

The data plane must never pay an :mod:`ipaddress` object construction per
packet: a single ``ip_network``/``ip_address`` call costs more than the whole
integer comparison it feeds.  This module parses addresses and prefixes
*once* — at :class:`~repro.dataplane.packet.FiveTuple` / rule construction —
into plain integers, so every subsequent match is a shift-and-mask.

Dotted-quad IPv4 (the reproduction's traffic) is parsed with pure string and
integer operations; anything else falls back to :mod:`ipaddress` (still only
at construction time).  Every fallback or prefix parse that constructs an
``ipaddress`` object increments ``vif_fastpath_ipaddress_parses_total``, which
is what the benchmark op-count gate asserts stays flat across the
steady-state packet path.
"""

from __future__ import annotations

import ipaddress
from typing import Optional, Tuple

from repro.obs import LazyCounter

#: Constructions of ``ipaddress`` objects performed by the compiled helpers.
#: The micro-benchmark gate asserts a *zero delta* of this counter across the
#: steady-state packet path.
IP_PARSES = LazyCounter(
    "vif_fastpath_ipaddress_parses_total",
    help="ipaddress object constructions (construction-time only on the fast path)",
)

_V4_MAX = 0xFFFFFFFF


def ipv4_to_int(text: str) -> Optional[int]:
    """Parse dotted-quad IPv4 without :mod:`ipaddress`; None when not one.

    Accepts exactly what ``ipaddress.IPv4Address`` accepts for dotted quads
    (four decimal octets, 0-255, no leading zeros) so the fast path and the
    fallback agree on validity.
    """
    parts = text.split(".")
    if len(parts) != 4:
        return None
    value = 0
    for part in parts:
        length = len(part)
        if not 1 <= length <= 3 or not part.isdigit():
            return None
        if length > 1 and part[0] == "0":
            return None  # ipaddress rejects ambiguous leading zeros
        octet = int(part)
        if octet > 255:
            return None
        value = (value << 8) | octet
    return value


def parse_ip(text: str) -> Tuple[int, int]:
    """``(version, integer_value)`` of an address string.

    IPv4 dotted quads never touch :mod:`ipaddress`; other syntaxes (IPv6,
    or garbage, which raises ``ValueError``) take the counted fallback.
    """
    value = ipv4_to_int(text)
    if value is not None:
        return 4, value
    IP_PARSES.inc()
    parsed = ipaddress.ip_address(text)
    return parsed.version, int(parsed)


def parse_network(prefix: str) -> Tuple[int, int, int, int]:
    """``(version, network_int, prefix_len, netmask_int)`` of a CIDR string.

    Normalizes with ``strict=False`` exactly like the interpreted rule code
    did (host bits are masked off).  Always uses :mod:`ipaddress` — prefixes
    are parsed once per rule, never per packet — and counts the parse.
    """
    IP_PARSES.inc()
    net = ipaddress.ip_network(prefix, strict=False)
    return (
        net.version,
        int(net.network_address),
        net.prefixlen,
        int(net.netmask),
    )


def int_to_ipv4(value: int) -> str:
    """Dotted-quad form of a 32-bit address integer."""
    if not 0 <= value <= _V4_MAX:
        raise ValueError(f"{value} is not a 32-bit address")
    return (
        f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}."
        f"{(value >> 8) & 0xFF}.{value & 0xFF}"
    )
