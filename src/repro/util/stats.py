"""Small statistics helpers: percentiles, box-plot summaries, workloads.

The paper reports Fig 11 as box-and-whisker plots (5th/25th/50th/75th/95th
percentiles) and draws its optimizer workloads from a lognormal bandwidth
distribution (section V-C); both helpers live here so benchmarks and tests
share one definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.util.rng import deterministic_rng


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; zero for singleton input."""
    if not values:
        raise ValueError("stdev of empty sequence")
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    # lo + (hi - lo) * frac is exact when both neighbors are equal, keeping
    # the result inside [min, max] under floating point.
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary matching the paper's Fig 11 whisker convention."""

    p5: float
    p25: float
    median: float
    p75: float
    p95: float

    def as_row(self) -> List[float]:
        """Return the summary as a list ordered p5..p95."""
        return [self.p5, self.p25, self.median, self.p75, self.p95]


def boxplot_summary(values: Iterable[float]) -> BoxplotSummary:
    """Compute the 5/25/50/75/95 percentile summary of ``values``."""
    data = list(values)
    return BoxplotSummary(
        p5=percentile(data, 5),
        p25=percentile(data, 25),
        median=percentile(data, 50),
        p75=percentile(data, 75),
        p95=percentile(data, 95),
    )


def lognormal_bandwidths(
    num_rules: int,
    total_bps: float,
    sigma: float = 1.0,
    seed: int = 0,
) -> List[float]:
    """Per-rule bandwidths following a lognormal distribution (paper V-C).

    Draws ``num_rules`` lognormal samples and rescales them so they sum to
    ``total_bps`` exactly, mirroring the paper's "incoming traffic
    distribution across the filter rules follows a lognormal distribution"
    with a fixed total (100 or 500 Gb/s in the evaluation).
    """
    if num_rules <= 0:
        raise ValueError("num_rules must be positive")
    if total_bps <= 0:
        raise ValueError("total_bps must be positive")
    rng = deterministic_rng(seed)
    raw = [rng.lognormvariate(0.0, sigma) for _ in range(num_rules)]
    scale = total_bps / sum(raw)
    return [r * scale for r in raw]
