"""Shared plumbing: units, statistics helpers, deterministic RNG, tables."""

from repro.util.units import (
    GBPS,
    KB,
    MB,
    MPPS,
    bits_to_gbps,
    ethernet_frame_overhead_bytes,
    gbps_to_pps,
    line_rate_pps,
    pps_to_gbps,
)
from repro.util.stats import (
    BoxplotSummary,
    boxplot_summary,
    lognormal_bandwidths,
    mean,
    percentile,
    stdev,
)
from repro.util.addrs import int_to_ipv4, ipv4_to_int, parse_ip, parse_network
from repro.util.rng import deterministic_rng, stable_hash64
from repro.util.tables import format_table

__all__ = [
    "GBPS",
    "KB",
    "MB",
    "MPPS",
    "BoxplotSummary",
    "bits_to_gbps",
    "boxplot_summary",
    "deterministic_rng",
    "ethernet_frame_overhead_bytes",
    "format_table",
    "gbps_to_pps",
    "int_to_ipv4",
    "ipv4_to_int",
    "line_rate_pps",
    "lognormal_bandwidths",
    "mean",
    "parse_ip",
    "parse_network",
    "percentile",
    "pps_to_gbps",
    "stable_hash64",
    "stdev",
]
