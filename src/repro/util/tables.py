"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness prints the same rows the paper's tables/figures report;
this keeps the formatting in one place so EXPERIMENTS.md and the bench output
look identical.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
