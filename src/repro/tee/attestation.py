"""Remote attestation with a simulated Intel Attestation Service (paper II-C).

Protocol, mirroring the EPID flow the paper describes:

1. the verifier (DDoS victim) issues a challenge nonce;
2. the enclave produces a :class:`Quote` binding its measurement, the nonce
   and caller-chosen ``report_data`` (VIF binds the enclave's key-exchange
   public value here, so the secure channel terminates *inside* the attested
   enclave), signed with the platform attestation key;
3. the verifier submits the quote to the :class:`IASService`, which checks
   the platform signature and returns a signed :class:`AttestationReport`;
4. the verifier validates the IAS signature with the (public) IAS report key
   and compares the measurement against the expected VIF filter code.

An :class:`AttestationTimingModel` reproduces Appendix G: ~28.8 ms of
platform work plus WAN round trips to the IAS give an end-to-end latency of
about 3.04 s.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AttestationError
from repro.tee.enclave import Enclave, Platform


@dataclass(frozen=True)
class Quote:
    """A platform-signed statement of what code an enclave runs."""

    platform_id: str
    enclave_id: str
    measurement: str
    nonce: bytes
    report_data: bytes
    signature: bytes

    def signed_payload(self) -> bytes:
        return b"|".join(
            [
                self.platform_id.encode(),
                self.enclave_id.encode(),
                self.measurement.encode(),
                self.nonce,
                self.report_data,
            ]
        )


@dataclass(frozen=True)
class AttestationReport:
    """IAS verdict over a quote, signed with the IAS report key."""

    quote: Quote
    verdict: str  # "OK" or a rejection reason
    signature: bytes

    def signed_payload(self) -> bytes:
        return self.quote.signed_payload() + b"|" + self.verdict.encode()

    @property
    def ok(self) -> bool:
        return self.verdict == "OK"


def generate_quote(enclave: Enclave, nonce: bytes, report_data: bytes = b"") -> Quote:
    """Produce a quote for ``enclave`` (run by the platform's quoting enclave)."""
    payload = b"|".join(
        [
            enclave.platform.platform_id.encode(),
            enclave.enclave_id.encode(),
            enclave.measurement().encode(),
            nonce,
            report_data,
        ]
    )
    signature = hmac.new(
        enclave.platform.attestation_key(), payload, hashlib.sha256
    ).digest()
    return Quote(
        platform_id=enclave.platform.platform_id,
        enclave_id=enclave.enclave_id,
        measurement=enclave.measurement(),
        nonce=nonce,
        report_data=report_data,
        signature=signature,
    )


class IASService:
    """The (simulated) globally distributed Intel Attestation Service.

    Platforms are provisioned at "manufacturing" via :meth:`provision`; the
    service verifies quote signatures against the provisioned keys and signs
    reports with its report key.  Verifiers hold the corresponding
    verification key (:meth:`report_verification_key`), standing in for the
    Intel-issued certificate chain.
    """

    def __init__(self, service_name: str = "ias") -> None:
        self._platform_keys: Dict[str, bytes] = {}
        self._report_key = hashlib.sha256(
            f"ias-report-key:{service_name}".encode()
        ).digest()

    def provision(self, platform: Platform) -> None:
        """Register a platform's attestation key (out-of-band provisioning)."""
        self._platform_keys[platform.platform_id] = platform.attestation_key()

    def verify_quote(self, quote: Quote) -> AttestationReport:
        """Check the platform signature and return a signed report."""
        key = self._platform_keys.get(quote.platform_id)
        if key is None:
            verdict = f"UNKNOWN_PLATFORM:{quote.platform_id}"
        else:
            expected = hmac.new(key, quote.signed_payload(), hashlib.sha256).digest()
            verdict = "OK" if hmac.compare_digest(expected, quote.signature) else "BAD_SIGNATURE"
        payload = quote.signed_payload() + b"|" + verdict.encode()
        signature = hmac.new(self._report_key, payload, hashlib.sha256).digest()
        return AttestationReport(quote=quote, verdict=verdict, signature=signature)

    def report_verification_key(self) -> bytes:
        """Key verifiers use to authenticate IAS reports.

        A real deployment distributes an X.509 certificate; HMAC keeps the
        simulation honest (reports not produced by this IAS fail to verify)
        without pulling in an asymmetric-crypto dependency.
        """
        return self._report_key


class RemoteAttestationVerifier:
    """Victim-side attestation logic."""

    def __init__(
        self,
        ias: IASService,
        expected_measurement: str,
        verifier_id: str = "victim",
    ) -> None:
        self._ias = ias
        self._ias_key = ias.report_verification_key()
        self.expected_measurement = expected_measurement
        self.verifier_id = verifier_id
        self._nonce_counter = 0

    def challenge(self) -> bytes:
        """A fresh attestation nonce (prevents quote replay)."""
        self._nonce_counter += 1
        return hashlib.sha256(
            f"{self.verifier_id}:nonce:{self._nonce_counter}".encode()
        ).digest()[:16]

    def attest(self, enclave: Enclave, report_data: bytes = b"") -> AttestationReport:
        """Run the full attestation round against ``enclave``.

        Raises :class:`AttestationError` on any failure; returns the signed
        report on success (callers keep it as evidence for the session).
        """
        nonce = self.challenge()
        quote = generate_quote(enclave, nonce, report_data)
        report = self._ias.verify_quote(quote)
        self.validate_report(report, nonce, report_data)
        return report

    def validate_report(
        self,
        report: AttestationReport,
        nonce: bytes,
        expected_report_data: Optional[bytes] = None,
    ) -> None:
        """Check IAS signature, verdict, nonce freshness and measurement."""
        expected_sig = hmac.new(
            self._ias_key, report.signed_payload(), hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected_sig, report.signature):
            raise AttestationError("IAS report signature invalid")
        if not report.ok:
            raise AttestationError(f"IAS rejected the quote: {report.verdict}")
        if report.quote.nonce != nonce:
            raise AttestationError("stale or replayed quote (nonce mismatch)")
        if report.quote.measurement != self.expected_measurement:
            raise AttestationError(
                "measurement mismatch: enclave runs "
                f"{report.quote.measurement[:16]}..., expected "
                f"{self.expected_measurement[:16]}..."
            )
        if (
            expected_report_data is not None
            and report.quote.report_data != expected_report_data
        ):
            raise AttestationError("report_data mismatch (channel binding broken)")


@dataclass(frozen=True)
class AttestationTimingModel:
    """Latency model reproducing Appendix G.

    The paper measures 28.8 ms of platform-side work (quote generation for a
    1 MB enclave binary) and ~3.04 s end to end with the verifier/enclave in
    South Asia and IAS in Ashburn, VA.  The end-to-end time decomposes into
    platform work plus several WAN round trips (challenge delivery, quote
    return, IAS query/response over TLS including handshakes).
    """

    platform_work_s: float = 0.0288
    verifier_enclave_rtt_s: float = 0.040
    ias_rtt_s: float = 0.230
    ias_tls_handshake_rtts: int = 3
    verifier_processing_s: float = 0.010

    def end_to_end_s(self) -> float:
        """Total simulated latency of one attestation round."""
        wan = (
            2 * self.verifier_enclave_rtt_s  # challenge out, quote back
            + (1 + self.ias_tls_handshake_rtts) * self.ias_rtt_s
        )
        return self.platform_work_s + wan + self.verifier_processing_s


#: Calibrated so end_to_end_s() ≈ 3.04 s as in Appendix G: the dominant cost
#: is the trans-continental IAS exchange (TLS setup + REST call), modelled as
#: 12 effective round trips of 230 ms plus platform/verifier work.
PAPER_ATTESTATION_TIMING = AttestationTimingModel(
    platform_work_s=0.0288,
    verifier_enclave_rtt_s=0.040,
    ias_rtt_s=0.2435,
    ias_tls_handshake_rtts=11,
    verifier_processing_s=0.011,
)
