"""Enclave Page Cache accounting (paper IV-A, Fig 3b).

SGX backs enclave memory with a fixed-size protected region; once the
working set exceeds the usable EPC (~92 MB on the paper's hardware), pages
are encrypted/evicted and performance collapses.  The simulator tracks
allocations explicitly so the data-plane cost model can charge a paging
penalty exactly when the real hardware would.
"""

from __future__ import annotations

from typing import Dict

from repro import obs
from repro.errors import EnclaveMemoryError
from repro.util.units import MB

#: "This result also confirms the Enclave Page Cache (EPC) limit is around
#: 92 MB, as seen in many other works."
DEFAULT_EPC_LIMIT = 92 * MB


class EPCAccounting:
    """Tracks named allocations inside one enclave.

    ``hard_limit_bytes`` is the point past which allocation *fails* (the
    machine's total paged capacity); between ``epc_limit_bytes`` and the hard
    limit, allocations succeed but :attr:`paging` turns on and the cost model
    applies the paging penalty.
    """

    def __init__(
        self,
        epc_limit_bytes: int = DEFAULT_EPC_LIMIT,
        hard_limit_bytes: int = 1024 * MB,
    ) -> None:
        if epc_limit_bytes <= 0 or hard_limit_bytes < epc_limit_bytes:
            raise ValueError("limits must satisfy 0 < epc_limit <= hard_limit")
        self.epc_limit_bytes = epc_limit_bytes
        self.hard_limit_bytes = hard_limit_bytes
        self._allocations: Dict[str, int] = {}
        self._peak = 0
        registry = obs.get_registry()
        label = obs.next_instance_label("epc")
        self._paging_events = registry.counter(
            "vif_tee_epc_paging_events_total",
            help="Transitions from in-EPC to paging (working set crossed the limit)",
            epc=label,
        )
        self._used_gauge = registry.gauge(
            "vif_tee_epc_used_bytes",
            help="Bytes currently allocated inside the enclave",
            epc=label,
        )

    @property
    def paging_events(self) -> int:
        """How many times the working set has crossed into paging territory."""
        return self._paging_events.value

    def _account(self, was_paging: bool) -> None:
        """Update the registry after an allocation change."""
        self._peak = max(self._peak, self.used)
        self._used_gauge.set(self.used)
        if self.paging and not was_paging:
            self._paging_events.inc()

    def allocate(self, label: str, num_bytes: int) -> None:
        """Charge ``num_bytes`` under ``label`` (labels accumulate)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if self.used + num_bytes > self.hard_limit_bytes:
            raise EnclaveMemoryError(
                f"allocation {label!r} of {num_bytes} B exceeds the hard limit "
                f"({self.used} B already in use, "
                f"hard limit {self.hard_limit_bytes} B)"
            )
        was_paging = self.paging
        self._allocations[label] = self._allocations.get(label, 0) + num_bytes
        self._account(was_paging)

    def resize(self, label: str, num_bytes: int) -> None:
        """Set the allocation under ``label`` to exactly ``num_bytes``."""
        current = self._allocations.get(label, 0)
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if self.used - current + num_bytes > self.hard_limit_bytes:
            raise EnclaveMemoryError(
                f"resize of {label!r} to {num_bytes} B exceeds the hard limit"
            )
        was_paging = self.paging
        self._allocations[label] = num_bytes
        self._account(was_paging)

    def free(self, label: str) -> None:
        """Release everything charged under ``label``."""
        self._allocations.pop(label, None)
        self._used_gauge.set(self.used)

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`used`."""
        return self._peak

    @property
    def paging(self) -> bool:
        """True when the working set no longer fits in EPC."""
        return self.used > self.epc_limit_bytes

    def paging_pressure(self) -> float:
        """How far past the EPC limit the working set is (0.0 when inside).

        Returned as a fraction of the EPC size; the data-plane cost model
        scales its per-packet paging penalty by this value.
        """
        overshoot = self.used - self.epc_limit_bytes
        if overshoot <= 0:
            return 0.0
        return overshoot / self.epc_limit_bytes

    def breakdown(self) -> Dict[str, int]:
        """Copy of the per-label allocation map (for reports/tests)."""
        return dict(self._allocations)
