"""Trusted-execution-environment substrate (paper II-C).

A functional stand-in for Intel SGX that enforces exactly the guarantees the
paper's security argument uses — and nothing more:

* **Isolation + integrity** — enclave state is only reachable through
  registered ECalls; the untrusted host cannot mutate it (the simulator
  gives the host no handle to the inner state object).
* **Measurement + remote attestation** — enclaves expose a code
  measurement; quotes are signed with a platform key that only the
  (simulated) Intel Attestation Service can verify, and IAS reports are
  signed with a key verifiers can check.
* **No timing/ordering guarantees** — the enclave's clock is an
  :class:`UntrustedClock` fed by the host, who may skew or stall it; packet
  order is whatever the host delivers.  This is what forces the stateless
  filter design of section III-A.
* **Bounded EPC** — an accounting object charges allocations against the
  ~92 MB usable Enclave Page Cache and reports when paging would begin.
"""

from repro.tee.epc import EPCAccounting
from repro.tee.clock import HostClock, UntrustedClock
from repro.tee.enclave import Enclave, EnclaveProgram, Platform
from repro.tee.attestation import (
    AttestationReport,
    AttestationTimingModel,
    IASService,
    Quote,
    RemoteAttestationVerifier,
)
from repro.tee.secure_channel import SecureChannel, ChannelEndpoint

__all__ = [
    "AttestationReport",
    "AttestationTimingModel",
    "ChannelEndpoint",
    "EPCAccounting",
    "Enclave",
    "EnclaveProgram",
    "HostClock",
    "IASService",
    "Platform",
    "Quote",
    "RemoteAttestationVerifier",
    "SecureChannel",
    "UntrustedClock",
]
