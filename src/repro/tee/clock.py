"""Clocks: a host-controlled simulated clock and the enclave's untrusted view.

Paper III-A: "a malicious filtering network can delay the time
query/response messages to/from the trusted clock source for the enclave,
slowing down the enclave's internal time clock."  The simulator makes this
concrete: :class:`HostClock` is the ground-truth simulation clock, advanced
by the harness, and :class:`UntrustedClock` is what the enclave sees — the
host may add skew, freeze it, or slow it down.  Tests use the pair to show
that any arrival-time-dependent filter is manipulable while the stateless
filter is not.
"""

from __future__ import annotations


class HostClock:
    """Ground-truth simulated time in seconds, advanced explicitly."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds


class UntrustedClock:
    """The enclave's view of time, derived from the host's feed.

    ``rate`` < 1 models the host slowing the enclave clock down by delaying
    time responses; ``offset`` models a constant skew; :meth:`freeze` stalls
    the clock entirely.  An honest host uses the defaults.
    """

    def __init__(
        self, host_clock: HostClock, rate: float = 1.0, offset: float = 0.0
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self._host = host_clock
        self._rate = rate
        self._offset = offset
        self._frozen_at: float = -1.0
        # Anchor so rate changes apply from "now", not retroactively.
        self._anchor_host = host_clock.now()
        self._anchor_enclave = host_clock.now() + offset

    def now(self) -> float:
        """The enclave-visible time."""
        if self._frozen_at >= 0:
            return self._frozen_at
        return self._anchor_enclave + (self._host.now() - self._anchor_host) * self._rate

    # -- adversary controls -------------------------------------------------

    def set_rate(self, rate: float) -> None:
        """Host slows down (rate < 1) or speeds up the enclave clock."""
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self._anchor_enclave = self.now()
        self._anchor_host = self._host.now()
        self._rate = rate

    def freeze(self) -> None:
        """Host stops answering time queries; the clock stalls."""
        self._frozen_at = self.now()

    def unfreeze(self) -> None:
        """Host resumes time responses from the stalled value."""
        if self._frozen_at < 0:
            return
        self._anchor_enclave = self._frozen_at
        self._anchor_host = self._host.now()
        self._frozen_at = -1.0

    @property
    def manipulated(self) -> bool:
        """True when the host has tampered with the feed in any way."""
        return self._rate != 1.0 or self._frozen_at >= 0 or self._offset != 0.0
