"""Authenticated secure channel between a victim and a VIF enclave.

The paper has the victim establish a TLS channel with each attested enclave
to submit rules and fetch sketch logs.  The simulation implements a real
(if minimal) cryptographic channel using only the standard library:

* **key agreement** — finite-field Diffie-Hellman over the RFC 3526
  2048-bit MODP group; each endpoint's public value is bound into the
  attestation ``report_data``, so the victim knows the far end of the
  channel is the attested enclave, not the untrusted host (channel binding);
* **record protection** — SHA-256 counter-mode keystream for
  confidentiality plus HMAC-SHA256 for integrity, with a sequence number in
  the additional data to stop reordering/replay by the host who carries the
  ciphertexts.

This is deliberately *not* a novel cipher design — it is the textbook
encrypt-then-MAC construction instantiated with stdlib hashes so that
tampering by the simulated adversary genuinely fails authentication.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Tuple

from repro.errors import SecureChannelError
from repro.util.rng import deterministic_rng

# RFC 3526, group 14 (2048-bit MODP).
_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_G = 2


@dataclass
class ChannelEndpoint:
    """One side of a DH key agreement."""

    name: str
    _secret: int = 0
    public: int = 0

    @classmethod
    def create(cls, name: str, seed: str) -> "ChannelEndpoint":
        """Create an endpoint with a deterministic (seeded) DH secret."""
        rng = deterministic_rng(f"dh:{seed}:{name}")
        secret = rng.getrandbits(256) | 1
        return cls(name=name, _secret=secret, public=pow(_G, secret, _P))

    def public_bytes(self) -> bytes:
        """Wire encoding of the public value (bound into report_data)."""
        return self.public.to_bytes(256, "big")

    def shared_key(self, peer_public: int) -> bytes:
        """Derive the symmetric session key from the peer's public value."""
        if not 1 < peer_public < _P - 1:
            raise SecureChannelError("peer public value out of range")
        shared = pow(peer_public, self._secret, _P)
        return hashlib.sha256(b"vif-session" + shared.to_bytes(256, "big")).digest()


class SecureChannel:
    """An established, sequence-numbered, authenticated channel."""

    def __init__(self, session_key: bytes, role: str) -> None:
        if len(session_key) != 32:
            raise SecureChannelError("session key must be 32 bytes")
        if role not in ("client", "server"):
            raise SecureChannelError("role must be 'client' or 'server'")
        self._enc_key = hashlib.sha256(session_key + b"|enc|" + role.encode()).digest()
        self._mac_key = hashlib.sha256(session_key + b"|mac|" + role.encode()).digest()
        peer = "server" if role == "client" else "client"
        self._peer_enc_key = hashlib.sha256(
            session_key + b"|enc|" + peer.encode()
        ).digest()
        self._peer_mac_key = hashlib.sha256(
            session_key + b"|mac|" + peer.encode()
        ).digest()
        self._send_seq = 0
        self._recv_seq = 0

    @classmethod
    def establish(
        cls,
        local: ChannelEndpoint,
        peer_public: int,
        role: str,
    ) -> "SecureChannel":
        """Complete the handshake given the peer's DH public value."""
        return cls(local.shared_key(peer_public), role)

    # -- records ----------------------------------------------------------------

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt-then-MAC one record; the host may carry but not alter it."""
        seq = self._send_seq
        self._send_seq += 1
        ciphertext = self._xor_keystream(self._enc_key, seq, plaintext)
        header = seq.to_bytes(8, "big") + len(ciphertext).to_bytes(4, "big")
        tag = hmac.new(self._mac_key, header + ciphertext, hashlib.sha256).digest()
        return header + ciphertext + tag

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt a record from the peer; raises on any tampering."""
        if len(record) < 12 + 32:
            raise SecureChannelError("record too short")
        header, rest = record[:12], record[12:]
        seq = int.from_bytes(header[:8], "big")
        length = int.from_bytes(header[8:12], "big")
        if len(rest) != length + 32:
            raise SecureChannelError("record length mismatch")
        ciphertext, tag = rest[:length], rest[length:]
        expected = hmac.new(
            self._peer_mac_key, header + ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, tag):
            raise SecureChannelError("record authentication failed")
        if seq != self._recv_seq:
            raise SecureChannelError(
                f"record replayed or reordered (seq {seq}, expected {self._recv_seq})"
            )
        self._recv_seq += 1
        return self._xor_keystream(self._peer_enc_key, seq, ciphertext)

    @staticmethod
    def _xor_keystream(key: bytes, seq: int, data: bytes) -> bytes:
        out = bytearray(len(data))
        block = b""
        for i in range(len(data)):
            if i % 32 == 0:
                counter = seq.to_bytes(8, "big") + (i // 32).to_bytes(8, "big")
                block = hashlib.sha256(key + counter).digest()
            out[i] = data[i] ^ block[i % 32]
        return bytes(out)


def establish_pair(
    client_seed: str, server_seed: str
) -> Tuple[SecureChannel, SecureChannel, ChannelEndpoint, ChannelEndpoint]:
    """Convenience: run the handshake and return both channel ends.

    Returns ``(client_channel, server_channel, client_ep, server_ep)`` —
    tests and examples use it; the production path in
    :mod:`repro.core.session` performs the same steps with the enclave's
    endpoint bound into attestation report data.
    """
    client_ep = ChannelEndpoint.create("client", client_seed)
    server_ep = ChannelEndpoint.create("server", server_seed)
    client = SecureChannel.establish(client_ep, server_ep.public, "client")
    server = SecureChannel.establish(server_ep, client_ep.public, "server")
    return client, server, client_ep, server_ep
