"""Enclave and platform model.

An :class:`Enclave` hosts one :class:`EnclaveProgram` (for VIF, the
:class:`~repro.core.enclave_filter.EnclaveFilter`).  The host interacts with
the program *only* through :meth:`Enclave.ecall`, which dispatches to entry
points the program registered — the simulator hands the host no reference to
the program object, which is the isolation guarantee.  Each enclave counts
its ECalls/OCalls so the data-plane cost model can charge the context-switch
overhead the paper's "reduce the number of context switches" optimization
eliminates.

A :class:`Platform` stands in for one SGX-capable server: it owns the
attestation key (shared with the simulated IAS at manufacturing time) and
can launch enclaves.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Dict, Optional

from repro import obs
from repro.errors import EnclaveError, EnclaveSealedError
from repro.tee.clock import HostClock, UntrustedClock
from repro.tee.epc import EPCAccounting


class EnclaveProgram:
    """Base class for code loaded into an enclave.

    Subclasses register ECall entry points in :meth:`on_load` via
    :meth:`register_ecall`.  ``measurement`` must be a deterministic function
    of the code identity; the default hashes the class's qualified name and
    a version tag, which is enough for attestation semantics (a *different*
    program yields a different measurement).
    """

    VERSION = "1.0"

    def __init__(self) -> None:
        self._ecalls: Dict[str, Callable[..., Any]] = {}
        self._enclave: Optional["Enclave"] = None

    # -- lifecycle ------------------------------------------------------------

    def on_load(self, enclave: "Enclave") -> None:
        """Called once when loaded; register entry points and allocate state."""
        self._enclave = enclave

    def register_ecall(self, name: str, fn: Callable[..., Any]) -> None:
        if name in self._ecalls:
            raise EnclaveError(f"duplicate ECall {name!r}")
        self._ecalls[name] = fn

    @classmethod
    def measurement(cls) -> str:
        """MRENCLAVE-like code measurement (hex SHA-256)."""
        ident = f"{cls.__module__}.{cls.__qualname__}:{cls.VERSION}"
        return hashlib.sha256(ident.encode("utf-8")).hexdigest()

    # -- conveniences for subclasses -------------------------------------------

    @property
    def enclave(self) -> "Enclave":
        if self._enclave is None:
            raise EnclaveError("program is not loaded into an enclave")
        return self._enclave

    def ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke an untrusted host function (counted by the cost model)."""
        return self.enclave._dispatch_ocall(name, *args, **kwargs)


class Enclave:
    """One launched enclave instance."""

    def __init__(
        self,
        program: EnclaveProgram,
        platform: "Platform",
        enclave_id: str,
        epc: Optional[EPCAccounting] = None,
    ) -> None:
        self._program = program
        self.platform = platform
        self.enclave_id = enclave_id
        self.epc = epc or EPCAccounting()
        self.clock = UntrustedClock(platform.host_clock)
        self._destroyed = False
        self._ocall_handlers: Dict[str, Callable[..., Any]] = {}
        #: Simulated cost of one enclave transition, charged to the host
        #: clock per ECall/OCall when non-zero.  Benchmarks set this to make
        #: context-switch comparisons deterministic instead of wall-clock.
        self.transition_cost_s: float = 0.0
        registry = obs.get_registry()
        label = obs.next_instance_label(f"enclave/{enclave_id}")
        self._ecalls_c = registry.counter(
            "vif_tee_ecalls_total",
            help="Enclave entries (EENTER/EEXIT round trips)",
            enclave=label,
        )
        self._ocalls_c = registry.counter(
            "vif_tee_ocalls_total",
            help="Untrusted host calls made from inside the enclave",
            enclave=label,
        )
        self._ecall_hists: Dict[str, obs.Histogram] = {}
        program.on_load(self)

    # -- the host-facing surface -------------------------------------------------

    @property
    def ecall_count(self) -> int:
        """Total ECalls into this enclave (stored in the metrics registry)."""
        return self._ecalls_c.value

    @ecall_count.setter
    def ecall_count(self, value: int) -> None:
        self._ecalls_c.set(value)

    @property
    def ocall_count(self) -> int:
        """Total OCalls out of this enclave (stored in the metrics registry)."""
        return self._ocalls_c.value

    @ocall_count.setter
    def ocall_count(self, value: int) -> None:
        self._ocalls_c.set(value)

    def _ecall_hist(self, name: str) -> "obs.Histogram":
        hist = self._ecall_hists.get(name)
        if hist is None:
            hist = obs.get_registry().histogram(
                "vif_tee_ecall_seconds",
                help="ECall wall-time by entry point (timing-enabled only)",
                ecall=name,
            )
            self._ecall_hists[name] = hist
        return hist

    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Enter the enclave through a registered entry point."""
        if self._destroyed:
            raise EnclaveSealedError(self._sealed_message(f"ECall {name!r}"))
        fn = self._program._ecalls.get(name)
        if fn is None:
            raise EnclaveError(f"unknown ECall {name!r}")
        self._ecalls_c.inc()
        if self.transition_cost_s:
            self.platform.host_clock.advance(self.transition_cost_s)
        if not (obs.timing_enabled() or obs.tracing_enabled()):
            return fn(*args, **kwargs)
        with obs.span(f"ecall.{name}", enclave=self.enclave_id):
            if not obs.timing_enabled():
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self._ecall_hist(name).observe(time.perf_counter() - start)

    def register_ocall_handler(self, name: str, fn: Callable[..., Any]) -> None:
        """Host registers an untrusted function the program may OCall."""
        self._ocall_handlers[name] = fn

    def destroy(self) -> None:
        """Tear the enclave down; all further ECalls fail.

        Idempotent: failover paths may race the health monitor to the same
        dead enclave, and a second ``destroy()`` must not be an error.
        Destroying (and relaunching with different code) is the *only*
        tampering available to a malicious host — and it changes the
        measurement, so attestation catches it.
        """
        if self._destroyed:
            return
        self._destroyed = True

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def measurement(self) -> str:
        """The loaded program's code measurement."""
        return type(self._program).measurement()

    # -- internal -----------------------------------------------------------------

    def _sealed_message(self, operation: str) -> str:
        """Sealed-enclave error text with enough identity for failover logs."""
        return (
            f"{operation} on destroyed enclave {self.enclave_id} "
            f"(platform {self.platform.platform_id}, "
            f"measurement {self.measurement()[:16]}...)"
        )

    def _dispatch_ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        if self._destroyed:
            raise EnclaveSealedError(self._sealed_message(f"OCall {name!r}"))
        self._ocalls_c.inc()
        if self.transition_cost_s:
            self.platform.host_clock.advance(self.transition_cost_s)
        handler = self._ocall_handlers.get(name)
        if handler is None:
            raise EnclaveError(f"no OCall handler registered for {name!r}")
        return handler(*args, **kwargs)


class Platform:
    """An SGX-capable server able to launch enclaves and sign quotes."""

    def __init__(self, platform_id: str, host_clock: Optional[HostClock] = None) -> None:
        self.platform_id = platform_id
        self.host_clock = host_clock or HostClock()
        # Per-platform attestation key, provisioned to IAS out of band
        # (stands in for the EPID group key material).
        self._attestation_key = hashlib.sha256(
            f"platform-key:{platform_id}".encode("utf-8")
        ).digest()
        self._launch_counter = 0

    def launch(
        self, program: EnclaveProgram, epc: Optional[EPCAccounting] = None
    ) -> Enclave:
        """Launch ``program`` in a fresh enclave on this platform."""
        self._launch_counter += 1
        enclave_id = f"{self.platform_id}/enclave-{self._launch_counter}"
        return Enclave(program, self, enclave_id, epc=epc)

    def attestation_key(self) -> bytes:
        """The signing key (the simulated IAS learns it at provisioning)."""
        return self._attestation_key
