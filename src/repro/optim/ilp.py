"""Exact mixed-ILP solver for the Appendix C formulation (CPLEX stand-in).

The model, after two standard transformations of the printed formulation:

* the pairwise constraints ``z ≥ α·C_p + I_q  ∀p,q`` are replaced by two
  max-variables ``z_C ≥ C_p ∀p`` and ``z_I ≥ I_q ∀q`` with objective
  ``α·z_C + z_I`` (identical optimum, n² → 2n constraints);
* the bilinear complementarity ``(1 − y_ij)·x_ij = 0`` (eq. 7) is
  linearized as ``x_ij ≤ b_i·y_ij`` — exact because ``x_ij ≤ b_i`` always.

Variables (k rules × n enclaves): ``x_ij ≥ 0`` continuous, ``y_ij ∈ {0,1}``,
plus ``z_C, z_I``.  The solver is branch & bound over the LP relaxation
(scipy ``linprog`` / HiGHS): branch on the most fractional ``y``, prune on
bound, keep a greedy-rounded incumbent.  Like the paper's CPLEX runs
(Table I), it can be configured to **stop at the first incumbent** — that is
the configuration whose running time the paper reports for k = 5,000…15,000.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.errors import InfeasibleError, SolverError
from repro.optim.problem import Allocation, RuleDistributionProblem

_INTEGRALITY_TOL = 1e-6


@dataclass
class ILPResult:
    """Outcome of a branch & bound run."""

    allocation: Allocation
    objective: float
    optimal: bool  # False when stopped early (first incumbent / limits)
    nodes_explored: int
    wall_time_s: float


class BranchAndBoundSolver:
    """Branch & bound over the HiGHS LP relaxation."""

    def __init__(
        self,
        stop_at_first_incumbent: bool = False,
        node_limit: int = 10_000,
        time_limit_s: float = 600.0,
        use_rounding_heuristic: bool = True,
    ) -> None:
        """``use_rounding_heuristic=False`` makes incumbents come only from
        integral LP solutions reached by branching — the configuration that
        mirrors the paper's "CPLEX configured to stop when found sub-optimal
        solutions" timing runs (Table I)."""
        self.stop_at_first_incumbent = stop_at_first_incumbent
        self.node_limit = node_limit
        self.time_limit_s = time_limit_s
        self.use_rounding_heuristic = use_rounding_heuristic

    # -- public API -----------------------------------------------------------

    def solve(self, problem: RuleDistributionProblem) -> ILPResult:
        """Solve the instance; raises :class:`InfeasibleError` when empty."""
        problem.check_feasible()
        started = time.perf_counter()
        model = _Model(problem)

        best_alloc: Optional[Allocation] = None
        best_obj = math.inf
        nodes = 0
        stopped_early = False

        # Depth-first stack of nodes; each node = {var_index: fixed value}.
        stack: List[Dict[int, int]] = [{}]
        while stack:
            if nodes >= self.node_limit:
                stopped_early = True
                break
            if time.perf_counter() - started > self.time_limit_s:
                stopped_early = True
                break
            fixings = stack.pop()
            nodes += 1

            lp = model.solve_relaxation(fixings)
            if lp is None:  # infeasible subproblem
                continue
            lp_obj, x_vals, y_vals = lp
            if lp_obj >= best_obj - 1e-9:
                continue  # bound prune

            frac_var = _most_fractional(y_vals)
            if frac_var is None:
                # Integral: a true incumbent.
                allocation = model.to_allocation(x_vals, y_vals)
                obj = allocation.objective()
                if obj < best_obj:
                    best_obj, best_alloc = obj, allocation
                    if self.stop_at_first_incumbent:
                        stopped_early = True
                        break
                continue

            # Try rounding for an incumbent before branching (keeps the
            # first-incumbent mode fast, like CPLEX's heuristics).
            rounded = (
                model.round_to_feasible(x_vals, y_vals)
                if self.use_rounding_heuristic
                else None
            )
            if rounded is not None:
                obj = rounded.objective()
                if obj < best_obj:
                    best_obj, best_alloc = obj, rounded
                    if self.stop_at_first_incumbent:
                        stopped_early = True
                        break

            down = dict(fixings)
            down[frac_var] = 0
            up = dict(fixings)
            up[frac_var] = 1
            # Explore the 1-branch first: installing the rule usually leads
            # to feasible completions faster.
            stack.append(down)
            stack.append(up)

        if best_alloc is None:
            if stopped_early:
                raise SolverError(
                    f"no incumbent found within limits "
                    f"(nodes={nodes}, time={time.perf_counter() - started:.1f}s)"
                )
            raise InfeasibleError("branch & bound proved the instance infeasible")

        return ILPResult(
            allocation=best_alloc,
            objective=best_obj,
            optimal=not stopped_early and not stack,
            nodes_explored=nodes,
            wall_time_s=time.perf_counter() - started,
        )


class _Model:
    """LP matrices for one instance, shared across all B&B nodes."""

    def __init__(self, problem: RuleDistributionProblem) -> None:
        self.problem = problem
        k = problem.num_rules
        n = problem.num_enclaves
        self.k, self.n = k, n
        # Variable layout: [x_00..x_{k-1,n-1} | y_00..y_{k-1,n-1} | z_C | z_I]
        self.num_x = k * n
        self.num_y = k * n
        self.idx_zc = self.num_x + self.num_y
        self.idx_zi = self.idx_zc + 1
        self.num_vars = self.idx_zi + 1
        self._build()

    def _xi(self, i: int, j: int) -> int:
        return i * self.n + j

    def _yi(self, i: int, j: int) -> int:
        return self.num_x + i * self.n + j

    def _build(self) -> None:
        p = self.problem
        k, n = self.k, self.n
        rows_ub: List[Tuple[List[int], List[float], float]] = []

        # Memory: u·Σ_i y_ij + v ≤ M, and z_C ≥ u·Σ_i y_ij + v.
        for j in range(n):
            y_cols = [self._yi(i, j) for i in range(k)]
            rows_ub.append((y_cols, [p.bytes_per_rule] * k, p.memory_budget - p.base_bytes))
            rows_ub.append(
                (
                    y_cols + [self.idx_zc],
                    [p.bytes_per_rule] * k + [-1.0],
                    -p.base_bytes,
                )
            )
        # Bandwidth: Σ_i x_ij ≤ G, and z_I ≥ Σ_i x_ij.
        for j in range(n):
            x_cols = [self._xi(i, j) for i in range(k)]
            rows_ub.append((x_cols, [1.0] * k, p.enclave_bandwidth))
            rows_ub.append((x_cols + [self.idx_zi], [1.0] * k + [-1.0], 0.0))
        # Linking: x_ij − b_i·y_ij ≤ 0.
        for i in range(k):
            b = p.bandwidths[i]
            for j in range(n):
                rows_ub.append(
                    ([self._xi(i, j), self._yi(i, j)], [1.0, -max(b, 1e-12)], 0.0)
                )

        data, row_idx, col_idx, b_ub = [], [], [], []
        for r, (cols, coefs, rhs) in enumerate(rows_ub):
            for c, coef in zip(cols, coefs):
                row_idx.append(r)
                col_idx.append(c)
                data.append(coef)
            b_ub.append(rhs)
        self.A_ub = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows_ub), self.num_vars)
        )
        self.b_ub = np.array(b_ub)

        # Equality: Σ_j x_ij = b_i.
        data, row_idx, col_idx, b_eq = [], [], [], []
        for i in range(k):
            for j in range(n):
                row_idx.append(i)
                col_idx.append(self._xi(i, j))
                data.append(1.0)
            b_eq.append(p.bandwidths[i])
        self.A_eq = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(k, self.num_vars)
        )
        self.b_eq = np.array(b_eq)

        self.c = np.zeros(self.num_vars)
        self.c[self.idx_zc] = p.alpha
        self.c[self.idx_zi] = 1.0

    def solve_relaxation(
        self, fixings: Dict[int, int]
    ) -> Optional[Tuple[float, np.ndarray, np.ndarray]]:
        """Solve the LP with y relaxed to [0,1] (plus node fixings)."""
        bounds: List[Tuple[float, Optional[float]]] = []
        for v in range(self.num_vars):
            if v < self.num_x:
                bounds.append((0.0, None))
            elif v < self.num_x + self.num_y:
                fixed = fixings.get(v)
                if fixed is None:
                    bounds.append((0.0, 1.0))
                else:
                    bounds.append((float(fixed), float(fixed)))
            else:
                bounds.append((0.0, None))
        result = linprog(
            self.c,
            A_ub=self.A_ub,
            b_ub=self.b_ub,
            A_eq=self.A_eq,
            b_eq=self.b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        x = result.x[: self.num_x]
        y = result.x[self.num_x : self.num_x + self.num_y]
        return float(result.fun), x, y

    def to_allocation(self, x_vals: np.ndarray, y_vals: np.ndarray) -> Allocation:
        """Build an :class:`Allocation` from (near-)integral LP values."""
        assignments: List[Dict[int, float]] = [dict() for _ in range(self.n)]
        for i in range(self.k):
            for j in range(self.n):
                y = y_vals[self._yi(i, j) - self.num_x]
                share = float(x_vals[self._xi(i, j)])
                if y > 0.5 and (share > 0 or self.problem.bandwidths[i] == 0):
                    assignments[j][i] = share
        # Zero-bandwidth rules may have all-zero y in the LP optimum (they
        # cost memory but no bandwidth); park them on the emptiest enclave.
        for i in range(self.k):
            if self.problem.bandwidths[i] == 0 and not any(
                i in a for a in assignments
            ):
                target = min(range(self.n), key=lambda j: len(assignments[j]))
                assignments[target][i] = 0.0
        return Allocation(problem=self.problem, assignments=assignments)

    def round_to_feasible(
        self, x_vals: np.ndarray, y_vals: np.ndarray
    ) -> Optional[Allocation]:
        """Greedy rounding of a fractional LP point into a feasible allocation.

        Rules are processed largest-bandwidth-first; each rule's bandwidth is
        poured into enclaves in decreasing order of its fractional ``y``,
        splitting when an enclave's remaining bandwidth runs out.  Returns
        None when capacity does not suffice (rare, thanks to the λ headroom).
        """
        p = self.problem
        remaining_bw = [p.enclave_bandwidth] * self.n
        remaining_rules = [p.rule_capacity_per_enclave] * self.n
        assignments: List[Dict[int, float]] = [dict() for _ in range(self.n)]

        order = sorted(range(self.k), key=lambda i: -p.bandwidths[i])
        for i in order:
            need = p.bandwidths[i]
            prefs = sorted(
                range(self.n),
                key=lambda j: -(y_vals[self._yi(i, j) - self.num_x]),
            )
            if need == 0:
                placed = False
                for j in prefs:
                    if remaining_rules[j] >= 1:
                        assignments[j][i] = 0.0
                        remaining_rules[j] -= 1
                        placed = True
                        break
                if not placed:
                    return None
                continue
            for j in prefs:
                if need <= 0:
                    break
                if remaining_rules[j] < 1 or remaining_bw[j] <= 0:
                    continue
                take = min(need, remaining_bw[j])
                assignments[j][i] = take
                remaining_bw[j] -= take
                remaining_rules[j] -= 1
                need -= take
            if need > 1e-6 * max(p.bandwidths[i], 1.0):
                return None
        return Allocation(problem=p, assignments=assignments)


def _most_fractional(y_vals: np.ndarray) -> Optional[int]:
    """Index (in full variable space offset) of the most fractional y."""
    frac = np.abs(y_vals - np.round(y_vals))
    worst = int(np.argmax(frac))
    if frac[worst] <= _INTEGRALITY_TOL:
        return None
    # Offset back into full variable index space (y block starts at k*n).
    return len(y_vals) + worst
