"""Problem and solution types for the rule-distribution optimization.

Notation follows Appendix C: ``k`` rules with bandwidths ``b_i``; ``n``
enclaves each limited to bandwidth ``G`` and memory ``M``; memory cost
``C_j = u·(#rules on j) + v``; allocated bandwidth ``I_j = Σ_i x_ij``;
objective ``min z`` with ``z ≥ α·C_p + I_q`` for every pair ``(p, q)`` —
i.e. ``z = α·max_j C_j + max_j I_j``.

The paper's Equation 4 as printed sums ``y_ij`` over *enclaves* for a fixed
rule; the prose makes clear the constraint is per-enclave, so we implement
``∀j: u·Σ_i y_ij + v ≤ M`` (erratum noted in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, InfeasibleError
from repro.lookup.memory_model import PAPER_MEMORY_MODEL
from repro.util.units import GBPS

#: Balances memory cost against bandwidth in the objective.  The paper does
#: not report its value; we scale memory (tens of MB) into the same range as
#: bandwidth (Gb/s) so neither term dominates.
PAPER_ALPHA = 100.0 / PAPER_MEMORY_MODEL.performance_budget_bytes


@dataclass(frozen=True)
class RuleDistributionProblem:
    """One instance of the Appendix C optimization."""

    bandwidths: Sequence[float]  # b_i, bits/s
    enclave_bandwidth: float = 10 * GBPS  # G
    memory_budget: int = PAPER_MEMORY_MODEL.performance_budget_bytes  # M
    bytes_per_rule: int = PAPER_MEMORY_MODEL.bytes_per_rule  # u
    base_bytes: int = PAPER_MEMORY_MODEL.base_bytes  # v
    headroom: float = 0.1  # λ
    alpha: float = PAPER_ALPHA
    #: Pin the fleet size explicitly (operators sizing to hardware on hand);
    #: overrides the λ-derived enclave count when set.
    enclaves_override: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.bandwidths:
            raise ConfigurationError("problem needs at least one rule")
        for i, b in enumerate(self.bandwidths):
            # NaN/inf must be caught here too: NaN passes every comparison
            # filter downstream, so the packing pass would silently drop the
            # rule instead of erroring.
            if not math.isfinite(b):
                raise ConfigurationError(
                    f"rule {i} has non-finite bandwidth {b!r}"
                )
            if b < 0:
                raise ConfigurationError(
                    f"rule {i} has negative bandwidth {b!r}; "
                    "bandwidths must be non-negative"
                )
        if self.enclave_bandwidth <= 0:
            raise ConfigurationError("enclave bandwidth must be positive")
        if self.memory_budget <= self.base_bytes:
            raise ConfigurationError(
                "memory budget must exceed the per-enclave base cost"
            )
        if self.headroom < 0:
            raise ConfigurationError("headroom (lambda) must be >= 0")
        if self.enclaves_override is not None and self.enclaves_override < 1:
            raise ConfigurationError("enclaves_override must be >= 1")

    @property
    def num_rules(self) -> int:
        return len(self.bandwidths)

    @property
    def total_bandwidth(self) -> float:
        return sum(self.bandwidths)

    @property
    def rule_capacity_per_enclave(self) -> int:
        """(M - v) / u, the max rules one enclave can hold."""
        return (self.memory_budget - self.base_bytes) // self.bytes_per_rule

    @property
    def min_enclaves(self) -> int:
        """n_min = ceil(max(Σb/G, k·u/(M−v)))."""
        by_bandwidth = self.total_bandwidth / self.enclave_bandwidth
        by_memory = (
            self.num_rules
            * self.bytes_per_rule
            / (self.memory_budget - self.base_bytes)
        )
        return max(1, math.ceil(max(by_bandwidth, by_memory)))

    @property
    def num_enclaves(self) -> int:
        """n = ceil(n_min_raw × (1 + λ)) — headroom for the optimizer —
        unless an explicit fleet size was pinned."""
        if self.enclaves_override is not None:
            return self.enclaves_override
        by_bandwidth = self.total_bandwidth / self.enclave_bandwidth
        by_memory = (
            self.num_rules
            * self.bytes_per_rule
            / (self.memory_budget - self.base_bytes)
        )
        raw = max(by_bandwidth, by_memory, 1.0)
        return math.ceil(raw * (1.0 + self.headroom))

    def memory_cost(self, rules_on_enclave: int) -> float:
        """C_j = u·rules + v."""
        return self.bytes_per_rule * rules_on_enclave + self.base_bytes

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleError` if any single rule cannot fit."""
        if self.rule_capacity_per_enclave < 1:
            raise InfeasibleError("memory budget cannot hold even one rule")
        # Bandwidth is splittable across enclaves, so single-rule bandwidth
        # never blocks feasibility as long as the aggregate fits in n·G.
        if self.total_bandwidth > self.num_enclaves * self.enclave_bandwidth:
            raise InfeasibleError(
                "total bandwidth exceeds the aggregate enclave capacity"
            )


@dataclass
class Allocation:
    """A solution: per-enclave rule sets and bandwidth shares.

    ``assignments[j]`` maps rule index ``i`` to the bandwidth ``x_ij``
    assigned to enclave ``j`` (``y_ij = 1`` exactly for present keys).
    """

    problem: RuleDistributionProblem
    assignments: List[Dict[int, float]] = field(default_factory=list)

    @property
    def num_enclaves_used(self) -> int:
        return sum(1 for a in self.assignments if a)

    def rules_on(self, j: int) -> List[int]:
        """Rule indexes installed on enclave ``j`` (sorted)."""
        return sorted(self.assignments[j])

    def bandwidth_on(self, j: int) -> float:
        """I_j — the bandwidth allocated to enclave ``j``."""
        return sum(self.assignments[j].values())

    def memory_on(self, j: int) -> float:
        """C_j — the memory cost of enclave ``j``."""
        return self.problem.memory_cost(len(self.assignments[j]))

    def objective(self) -> float:
        """z = α·max_j C_j + max_j I_j."""
        if not self.assignments:
            return 0.0
        max_c = max(self.memory_on(j) for j in range(len(self.assignments)))
        max_i = max(self.bandwidth_on(j) for j in range(len(self.assignments)))
        return self.problem.alpha * max_c + max_i

    def rule_replicas(self, i: int) -> List[int]:
        """Enclaves on which rule ``i`` is installed (split rules: several)."""
        return [j for j, a in enumerate(self.assignments) if i in a]
