"""Filter-rule distribution optimization (paper IV-B, Appendices C & D).

When the total attack traffic or rule count exceeds what one enclave can
handle, the master enclave must partition ``k`` rules (each with measured
inbound bandwidth ``b_i``) across ``n`` enclaves subject to a per-enclave
bandwidth cap ``G`` (10 Gb/s) and memory budget ``M``, balancing the maximum
memory cost ``C_j = u·rules_j + v`` and the maximum allocated bandwidth
``I_j``.  Rules may be *split* — installed on several enclaves with the
bandwidth divided — which is what makes the LP part continuous.

Two solvers:

* :class:`~repro.optim.ilp.BranchAndBoundSolver` — exact mixed-ILP via
  branch & bound over a scipy/HiGHS LP relaxation (the CPLEX stand-in),
  with a stop-at-first-incumbent mode matching the paper's Table I
  configuration;
* :func:`~repro.optim.greedy.greedy_solve` — Appendix D's Algorithm 1,
  three orders of magnitude faster and within a few percent of optimal.
"""

from repro.optim.problem import (
    Allocation,
    RuleDistributionProblem,
    PAPER_ALPHA,
)
from repro.optim.greedy import greedy_solve
from repro.optim.ilp import BranchAndBoundSolver, ILPResult
from repro.optim.repair import repair_allocation, shed_order
from repro.optim.validation import validate_allocation

__all__ = [
    "Allocation",
    "BranchAndBoundSolver",
    "ILPResult",
    "PAPER_ALPHA",
    "RuleDistributionProblem",
    "greedy_solve",
    "repair_allocation",
    "shed_order",
    "validate_allocation",
]
