"""Incremental allocation repair after enclave failures.

When an enclave dies and cannot be relaunched (its platform is gone or
EPC-exhausted), the rules it held are *orphaned*: their traffic blackholes at
the load balancer until they are re-homed.  Re-running the full Algorithm 1
solve perturbs every enclave's rule set — which means fleet-wide rule
churn, re-installs and route updates mid-attack.  This module instead
repairs the existing :class:`~repro.optim.problem.Allocation` by greedily
re-packing *only* the orphaned bandwidth shares onto the surviving enclaves,
preserving every survivor's current assignment.

The repair is best-effort by design (Argyraki & Cheriton's partial-filtering
argument): when the survivors cannot absorb the orphans within the
per-enclave bandwidth cap ``G`` and memory budget, it raises
:class:`~repro.errors.InfeasibleError` and the caller escalates — first to a
full re-solve over the surviving fleet, then to shedding rules (see
:func:`shed_order`, used by the fleet manager's graceful-degradation path).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError, InfeasibleError
from repro.optim.problem import Allocation

#: Bandwidth slack (absolute, bits/s) below which a remainder counts as
#: placed; keeps the packing loop finite under float round-off.
_EPSILON = 1e-6


def repair_allocation(
    allocation: Allocation, failed: Sequence[int]
) -> Allocation:
    """Re-pack the shares held by ``failed`` enclaves onto the survivors.

    Returns a new :class:`Allocation` over the *same* problem in which every
    failed slot's assignment is empty, every survivor keeps its existing
    rules, and each orphaned bandwidth share is placed (splitting across
    survivors where needed).  Placement prefers survivors that already hold
    the rule (no extra memory cost), then the survivor with the most spare
    bandwidth.

    Raises :class:`InfeasibleError` when the orphans do not fit — the
    caller's cue to fall back to a full re-solve or to shed rules.
    """
    problem = allocation.problem
    n = len(allocation.assignments)
    failed_set = set(failed)
    for j in failed_set:
        if not 0 <= j < n:
            raise ConfigurationError(f"failed index {j} outside fleet of {n}")
    survivors = [j for j in range(n) if j not in failed_set]
    if not survivors:
        raise InfeasibleError("no surviving enclaves to repair onto")

    new_assignments: List[Dict[int, float]] = [
        dict(allocation.assignments[j]) if j not in failed_set else {}
        for j in range(n)
    ]

    # Aggregate orphaned shares per rule (a split rule may have lived on
    # several failed enclaves).
    orphans: Dict[int, float] = {}
    for j in failed_set:
        for i, share in allocation.assignments[j].items():
            orphans[i] = orphans.get(i, 0.0) + share

    h_cap = problem.rule_capacity_per_enclave
    spare_bw = {
        j: problem.enclave_bandwidth - sum(new_assignments[j].values())
        for j in survivors
    }

    def can_host(j: int, i: int) -> bool:
        return i in new_assignments[j] or len(new_assignments[j]) < h_cap

    # Largest orphans first: they are the hardest to place and most likely
    # to need splitting, so give them first pick of the spare bandwidth.
    for i, share in sorted(orphans.items(), key=lambda kv: (-kv[1], kv[0])):
        remaining = share
        if remaining <= _EPSILON:
            # Zero-bandwidth rule: needs a memory slot only.
            home = next((j for j in survivors if can_host(j, i)), None)
            if home is None:
                raise InfeasibleError(
                    f"no survivor has a free rule slot for orphan rule {i}"
                )
            new_assignments[home][i] = new_assignments[home].get(i, 0.0) + share
            continue
        while remaining > _EPSILON:
            candidates = [
                j for j in survivors if can_host(j, i) and spare_bw[j] > _EPSILON
            ]
            if not candidates:
                raise InfeasibleError(
                    f"survivors cannot absorb orphan rule {i}: "
                    f"{remaining:.3e} bps unplaced"
                )
            # Prefer an existing replica (no memory cost), then most spare.
            j = max(
                candidates,
                key=lambda c: (i in new_assignments[c], spare_bw[c], -c),
            )
            take = min(spare_bw[j], remaining)
            new_assignments[j][i] = new_assignments[j].get(i, 0.0) + take
            spare_bw[j] -= take
            remaining -= take

    return Allocation(problem=problem, assignments=new_assignments)


def shed_order(
    rule_bandwidths: Iterable[Tuple[int, float]],
    priorities: Dict[int, int] = None,
) -> List[Tuple[int, float]]:
    """The order in which rules are shed under capacity loss.

    ``rule_bandwidths`` is ``(rule_id, bandwidth)`` pairs; ``priorities``
    optionally maps rule_id to an operator-assigned priority (higher keeps
    the rule longer).  Sheds lowest-priority first, then highest-bandwidth
    first within a priority class (each shed rule frees the most capacity,
    so the fewest victims lose filtering), with rule id as the deterministic
    tiebreak.
    """
    priorities = priorities or {}
    return sorted(
        rule_bandwidths,
        key=lambda rb: (priorities.get(rb[0], 0), -rb[1], rb[0]),
    )
