"""Feasibility checking for rule-distribution allocations.

Used by tests (every solver output must validate), by the redistribution
protocol before pushing a plan to enclaves, and by property-based tests
which throw random instances at both solvers.
"""

from __future__ import annotations

from typing import List

from repro.optim.problem import Allocation

#: Relative slack for floating-point bandwidth sums.
_REL_TOL = 1e-6


def validate_allocation(allocation: Allocation) -> List[str]:
    """Return a list of constraint violations (empty list == feasible).

    Checks, mirroring Appendix C:

    * every enclave respects the bandwidth cap ``G`` (eq. 5);
    * every enclave respects the memory budget ``M`` (eq. 4, per-enclave);
    * every rule's bandwidth shares sum to ``b_i`` (eq. 6);
    * shares are non-negative and only present where the rule is installed
      (eqs. 7–8 hold by construction of the assignment maps).
    """
    problem = allocation.problem
    violations: List[str] = []

    for j, share_map in enumerate(allocation.assignments):
        bandwidth = sum(share_map.values())
        if bandwidth > problem.enclave_bandwidth * (1 + _REL_TOL):
            violations.append(
                f"enclave {j}: bandwidth {bandwidth:.3e} exceeds "
                f"G={problem.enclave_bandwidth:.3e}"
            )
        memory = problem.memory_cost(len(share_map))
        if memory > problem.memory_budget * (1 + _REL_TOL):
            violations.append(
                f"enclave {j}: memory {memory:.0f} exceeds "
                f"M={problem.memory_budget}"
            )
        for i, share in share_map.items():
            if share < 0:
                violations.append(f"enclave {j}: negative share for rule {i}")
            if not 0 <= i < problem.num_rules:
                violations.append(f"enclave {j}: unknown rule index {i}")

    totals = [0.0] * problem.num_rules
    for share_map in allocation.assignments:
        for i, share in share_map.items():
            if 0 <= i < problem.num_rules:
                totals[i] += share
    for i, (assigned, wanted) in enumerate(zip(totals, problem.bandwidths)):
        tolerance = max(_REL_TOL * max(wanted, 1.0), 1e-9)
        if abs(assigned - wanted) > tolerance:
            violations.append(
                f"rule {i}: assigned bandwidth {assigned:.6e} != b_i {wanted:.6e}"
            )
    return violations
