"""Algorithm 1: the greedy rule-distribution heuristic (Appendix D).

Intuition (paper IV-B): pre-commit to two per-enclave quotas — ``h`` rules
and ``g`` bandwidth — then pack rules into enclaves smallest-first,
splitting a rule across enclaves when its bandwidth does not fit in the
current enclave's remainder.  If packing fails, relax the quotas (first
``g``, then ``h``) and retry.  Each packing pass is O(k); the quota search
adds a small constant factor, giving the near-real-time runtimes of Table I
and Fig 9.

Two places in the printed pseudocode are unexecutable as typeset and are
implemented in their evidently intended form (noted in DESIGN.md):

* line 20's guard ``j + 1 ≤ h`` compares an enclave index against a rule
  quota; the packing logic requires ``c + 1 ≤ h`` (room for one more rule
  on the current enclave);
* lines 33–35 return failure when ``B = ∅``; success is when all bandwidth
  has been assigned, so the condition is inverted here.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, InfeasibleError
from repro.optim.problem import Allocation, RuleDistributionProblem


class _BandwidthPool:
    """PopMin/PopMax over (bandwidth, rule-index) pairs.

    The initial population is sorted once and consumed from both ends via
    index pointers; the (rare — at most one per enclave) re-inserted split
    remainders live in a small auxiliary sorted list.  All operations are
    O(log k) or amortized O(1), keeping the whole pass linear.
    """

    def __init__(self, items: List[Tuple[float, int]]) -> None:
        self._main = sorted(items)
        self._lo = 0
        self._hi = len(self._main)  # exclusive
        self._extras: List[Tuple[float, int]] = []

    def __bool__(self) -> bool:
        return self._lo < self._hi or bool(self._extras)

    def __len__(self) -> int:
        return (self._hi - self._lo) + len(self._extras)

    def push(self, item: Tuple[float, int]) -> None:
        bisect.insort(self._extras, item)

    def pop_min(self) -> Tuple[float, int]:
        if self._extras and (
            self._lo >= self._hi or self._extras[0] < self._main[self._lo]
        ):
            return self._extras.pop(0)
        item = self._main[self._lo]
        self._lo += 1
        return item

    def pop_max(self) -> Tuple[float, int]:
        if self._extras and (
            self._lo >= self._hi or self._extras[-1] > self._main[self._hi - 1]
        ):
            return self._extras.pop()
        self._hi -= 1
        return self._main[self._hi]


def _assign_bandwidth(
    bandwidths: List[float],
    h: float,
    g: float,
    n: int,
) -> Optional[List[dict]]:
    """One packing pass (ASSIGNBANDWIDTH); None when the quotas don't fit.

    Rules are drawn from both ends of the sorted pool, choosing the end
    that keeps each enclave's rule-slot usage and bandwidth usage in
    proportion (the printed pseudocode's strict smallest-first order
    strands bandwidth on rule-count-bound enclaves when k/n approaches the
    per-enclave rule cap; the balanced draw packs those instances too and
    reduces to the same behavior when bandwidth is the binding quota).
    A rule that does not fit the enclave's bandwidth remainder is split:
    the remainder is assigned here and the rest returns to the pool.
    """
    pool_items: List[Tuple[float, int]] = []
    zero_rules: List[int] = []
    for i, b in enumerate(bandwidths):
        # A negative (or NaN) bandwidth passes neither the positive-pool
        # filter nor the zero list — the rule would vanish from the
        # allocation without any error.  Problem construction validates
        # too; this guards direct callers.
        if b < 0 or b != b:
            raise ConfigurationError(f"rule {i} has invalid bandwidth {b!r}")
        if b > 0:
            pool_items.append((b, i))
        else:
            zero_rules.append(i)
    pool = _BandwidthPool(pool_items)
    assignments: List[dict] = [dict() for _ in range(n)]

    for j in range(n):
        if not pool:
            break
        remaining = g
        count = 0
        while pool and count + 1 <= h and remaining > 0:
            rules_ahead = (count / h) >= ((g - remaining) / g)
            if rules_ahead:
                bandwidth, i = pool.pop_max()
            else:
                bandwidth, i = pool.pop_min()
            if bandwidth <= remaining:
                assignments[j][i] = assignments[j].get(i, 0.0) + bandwidth
                count += 1
                remaining -= bandwidth
            else:
                # Split: fill this enclave's remainder, re-pool the rest.
                assignments[j][i] = assignments[j].get(i, 0.0) + remaining
                count += 1
                pool.push((bandwidth - remaining, i))
                remaining = 0.0

    if pool:
        return None

    # Zero-bandwidth rules still need a home (they consume memory only);
    # round-robin them over enclaves with spare rule quota.
    j = 0
    for i in zero_rules:
        placed = False
        for _ in range(n):
            if len(assignments[j]) < h:
                assignments[j][i] = 0.0
                placed = True
                j = (j + 1) % n
                break
            j = (j + 1) % n
        if not placed:
            return None
    return assignments


def greedy_solve(
    problem: RuleDistributionProblem,
    bandwidth_step_fraction: float = 0.02,
    rule_step_fraction: float = 0.05,
) -> Allocation:
    """Run Algorithm 1 and return a feasible allocation.

    ``bandwidth_step_fraction`` is Δg as a fraction of G;
    ``rule_step_fraction`` is Δh as a fraction of the initial rule quota.
    Raises :class:`InfeasibleError` when no quota within (G, (M−v)/u) packs.
    """
    problem.check_feasible()
    bandwidths = list(problem.bandwidths)
    k = problem.num_rules
    n = problem.num_enclaves
    G = problem.enclave_bandwidth
    h_cap = problem.rule_capacity_per_enclave

    g0 = sum(bandwidths) / n
    g = g0
    h = max(1.0, math.ceil(k / n))
    delta_g = max(G * bandwidth_step_fraction, 1.0)
    delta_h = max(1.0, math.ceil(h * rule_step_fraction))

    candidates: List[Allocation] = []
    while g <= G and h <= h_cap:
        assignments = _assign_bandwidth(bandwidths, h, g, n)
        if assignments is not None:
            refined = _refine_bandwidth_quota(bandwidths, h, g0, g, n)
            candidates.append(
                Allocation(problem=problem, assignments=refined or assignments)
            )
            break
        g += delta_g
        if g > G:
            h += delta_h
            g = g0

    # Second candidate: relax the rule quota to the memory cap.  With
    # splitting allowed the bandwidth then packs almost perfectly balanced,
    # which usually wins whenever the objective's memory weight is small
    # relative to bandwidth (the regime of the paper's evaluation).
    if h_cap > math.ceil(k / n):
        loose = _assign_bandwidth(bandwidths, float(h_cap), min(G, g0 * 1.5), n)
        if loose is not None:
            refined = _refine_bandwidth_quota(
                bandwidths, float(h_cap), g0, min(G, g0 * 1.5), n
            )
            candidates.append(
                Allocation(problem=problem, assignments=refined or loose)
            )

    if not candidates:
        raise InfeasibleError(
            f"greedy found no packing within G={G:.3e} and h<={h_cap} "
            f"for k={k}, n={n}"
        )
    return min(candidates, key=lambda a: a.objective())


def _refine_bandwidth_quota(
    bandwidths: List[float],
    h: float,
    g_lo: float,
    g_hi: float,
    n: int,
    iterations: int = 18,
) -> Optional[List[dict]]:
    """Binary-search the smallest feasible bandwidth quota in [g_lo, g_hi].

    The coarse Δg scan overshoots by up to one step; shrinking ``g`` toward
    the per-enclave average directly lowers ``max_j I_j``, the dominant
    objective term, which is what closes most of the gap to the exact
    optimum.  Each probe is one O(k) packing pass.
    """
    best: Optional[List[dict]] = None
    lo, hi = g_lo, g_hi
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        assignments = _assign_bandwidth(bandwidths, h, mid, n)
        if assignments is not None:
            best = assignments
            hi = mid
        else:
            lo = mid
    return best
