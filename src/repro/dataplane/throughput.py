"""Throughput/latency measurement harness over the calibrated cost model.

This is the module the figure benchmarks call: each method returns exactly
the series a paper figure plots.  Numbers are *simulated* (cost model), not
wall clock — the shapes, knees and crossovers are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dataplane.cost_model import (
    CostModel,
    ImplementationVariant,
    PAPER_COST_MODEL,
)
from repro.util.units import GBPS, MPPS

#: The packet sizes every throughput figure sweeps.
PAPER_PACKET_SIZES = (64, 128, 256, 512, 1024, 1500)


@dataclass(frozen=True)
class ThroughputReport:
    """One figure-8/13-style sweep for a single implementation variant."""

    variant: ImplementationVariant
    packet_sizes: Sequence[int]
    gbps: Sequence[float]
    mpps: Sequence[float]

    def as_rows(self) -> List[List[object]]:
        return [
            [size, round(g, 2), round(m, 2)]
            for size, g, m in zip(self.packet_sizes, self.gbps, self.mpps)
        ]


@dataclass(frozen=True)
class LatencyReport:
    """The section V-B latency table."""

    packet_sizes: Sequence[int]
    latency_us: Sequence[float]


@dataclass(frozen=True)
class BatchSweepReport:
    """Throughput vs ECall batch size (the §V context-switch ablation)."""

    variant: ImplementationVariant
    batch_sizes: Sequence[int]
    mpps: Sequence[float]
    ecalls_per_packet: Sequence[float]

    def as_rows(self) -> List[List[object]]:
        return [
            [batch, round(m, 3), round(e, 4)]
            for batch, m, e in zip(
                self.batch_sizes, self.mpps, self.ecalls_per_packet
            )
        ]


class ThroughputHarness:
    """Runs the paper's data-plane sweeps against a cost model."""

    def __init__(
        self,
        cost_model: CostModel = PAPER_COST_MODEL,
        link_bps: float = 10 * GBPS,
    ) -> None:
        self.cost_model = cost_model
        self.link_bps = link_bps

    # -- Fig 8 / Fig 13 -----------------------------------------------------

    def packet_size_sweep(
        self,
        variant: ImplementationVariant,
        num_rules: int = 3000,
        packet_sizes: Sequence[int] = PAPER_PACKET_SIZES,
        batch_size: Optional[int] = None,
    ) -> ThroughputReport:
        """Throughput vs packet size for one implementation variant.

        ``batch_size`` is the ECall batch (packets per enclave transition);
        ``None`` reproduces the paper's calibrated batching.
        """
        gbps: List[float] = []
        mpps: List[float] = []
        for size in packet_sizes:
            pps = self.cost_model.achieved_pps(
                variant, size, num_rules, link_bps=self.link_bps,
                batch_size=batch_size,
            )
            gbps.append(
                self.cost_model.achieved_wire_gbps(
                    variant, size, num_rules, link_bps=self.link_bps,
                    batch_size=batch_size,
                )
            )
            mpps.append(pps / MPPS)
        return ThroughputReport(
            variant=variant,
            packet_sizes=tuple(packet_sizes),
            gbps=tuple(gbps),
            mpps=tuple(mpps),
        )

    def all_variants_sweep(
        self, num_rules: int = 3000
    ) -> Dict[ImplementationVariant, ThroughputReport]:
        """The full Fig 8/13 comparison across all three implementations."""
        return {
            variant: self.packet_size_sweep(variant, num_rules)
            for variant in ImplementationVariant
        }

    # -- §V context-switch ablation -----------------------------------------

    def batch_size_sweep(
        self,
        batch_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
        variant: ImplementationVariant = ImplementationVariant.SGX_ZERO_COPY,
        packet_size: int = 64,
        num_rules: int = 3000,
    ) -> BatchSweepReport:
        """Throughput vs ECall batch size at a fixed packet size.

        Shows what Fig 8 leaves implicit: without batching (batch 1) the
        enclave transition dominates and the SGX data path cannot come
        anywhere near line rate.
        """
        mpps = [
            self.cost_model.achieved_pps(
                variant, packet_size, num_rules, link_bps=self.link_bps,
                batch_size=batch,
            )
            / MPPS
            for batch in batch_sizes
        ]
        ecalls = [
            self.cost_model.ecalls_per_packet(variant, batch)
            for batch in batch_sizes
        ]
        return BatchSweepReport(
            variant=variant,
            batch_sizes=tuple(batch_sizes),
            mpps=tuple(mpps),
            ecalls_per_packet=tuple(ecalls),
        )

    # -- Fig 3a -------------------------------------------------------------

    def rule_count_sweep(
        self,
        rule_counts: Sequence[int],
        variant: ImplementationVariant = ImplementationVariant.NATIVE,
        packet_size: int = 64,
    ) -> List[float]:
        """Throughput (Mpps) vs number of installed rules."""
        return [
            self.cost_model.achieved_pps(
                variant, packet_size, k, link_bps=self.link_bps
            )
            / MPPS
            for k in rule_counts
        ]

    def memory_sweep(self, rule_counts: Sequence[int]) -> List[float]:
        """Enclave memory footprint (MB) vs number of rules (Fig 3b)."""
        model = self.cost_model.memory_model
        return [model.footprint_bytes(k) / (1024 * 1024) for k in rule_counts]

    # -- Fig 14 -------------------------------------------------------------

    def hash_ratio_sweep(
        self,
        hash_ratios: Sequence[float],
        packet_sizes: Sequence[int] = PAPER_PACKET_SIZES,
        num_rules: int = 3000,
    ) -> Dict[int, List[float]]:
        """Wire Gb/s per packet size as the hashed fraction varies."""
        out: Dict[int, List[float]] = {}
        for size in packet_sizes:
            out[size] = [
                self.cost_model.achieved_wire_gbps(
                    ImplementationVariant.SGX_ZERO_COPY,
                    size,
                    num_rules,
                    hash_ratio=ratio,
                    link_bps=self.link_bps,
                )
                for ratio in hash_ratios
            ]
        return out

    # -- section V-B latency --------------------------------------------------

    def latency_sweep(
        self,
        packet_sizes: Sequence[int] = (128, 256, 512, 1024, 1500),
        load_gbps: float = 8.0,
        num_rules: int = 3000,
    ) -> LatencyReport:
        """Average latency at a constant offered load (paper: 8 Gb/s)."""
        return LatencyReport(
            packet_sizes=tuple(packet_sizes),
            latency_us=tuple(
                self.cost_model.latency_us(
                    size, num_rules=num_rules, load_gbps=load_gbps
                )
                for size in packet_sizes
            ),
        )
