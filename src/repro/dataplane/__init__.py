"""Data-plane substrate: packets, rings, NIC, pipeline, traffic generation.

This package replaces the paper's DPDK + 10 GbE testbed with a functional and
timing-calibrated simulation: packets are real Python objects flowing through
RX rings, a filter stage, and TX rings, while a cycle-cost model (calibrated
against the paper's measured points) converts per-packet work into simulated
throughput and latency.
"""

from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.dataplane.rings import Ring, RingOverflow
from repro.dataplane.nic import NIC, PortStats
from repro.dataplane.pktgen import FlowSpec_, PacketGenerator, TrafficProfile
from repro.dataplane.cost_model import (
    CostModel,
    ImplementationVariant,
    PAPER_COST_MODEL,
)
from repro.dataplane.pipeline import (
    FilterPipeline,
    PipelineAccountingError,
    PipelineStats,
)
from repro.dataplane.throughput import (
    BatchSweepReport,
    LatencyReport,
    ThroughputHarness,
    ThroughputReport,
)
from repro.dataplane.trace import (
    iter_trace,
    load_trace,
    save_trace,
)

__all__ = [
    "BatchSweepReport",
    "CostModel",
    "FilterPipeline",
    "FiveTuple",
    "FlowSpec_",
    "ImplementationVariant",
    "LatencyReport",
    "NIC",
    "PAPER_COST_MODEL",
    "Packet",
    "PacketGenerator",
    "PipelineAccountingError",
    "PipelineStats",
    "PortStats",
    "Protocol",
    "Ring",
    "RingOverflow",
    "ThroughputHarness",
    "ThroughputReport",
    "TrafficProfile",
    "iter_trace",
    "load_trace",
    "save_trace",
]
