"""The multi-core sharded data plane (OctoSketch-style sketch sharding).

The compiled fast path is single-process; this module is the parallelism
layer ROADMAP item 1 calls for, modeled on the per-core-sketch-plus-merge
design of OctoSketch-style DPDK pipelines:

* **RSS-style flow-hash sharding.**  The coordinator assigns every flow to a
  worker with :meth:`~repro.core.controller.LoadBalancer.shard_for_flow`
  (``stable_hash64`` over the five-tuple, modulo worker count) — the same
  split a NIC's receive-side scaling performs across cores.  The assignment
  is deterministic across processes, and flow-granular, so per-flow state
  (connection preservation, exact-match entries) never straddles shards.

* **Per-worker filter processes.**  Each worker is a separate OS process
  running a full :class:`~repro.core.enclave_filter.EnclaveFilter` replica
  (every rule installed everywhere; the *flows* are what's partitioned).
  Work travels as pickled flow-coalesced burst batches: each batch carries
  one entry per unique flow (five-tuple fields plus the per-packet frame
  sizes), so the wire cost scales with flows, not packets, and the worker
  re-expands to packets on its side of the fork.

* **Per-worker sketches, merged centrally.**  Every worker keeps its own
  :class:`~repro.sketch.countmin.CountMinSketch` log pair and ships the
  serialized blobs back at shutdown; the coordinator folds them with the
  word-wise accounted :meth:`~repro.sketch.countmin.CountMinSketch.merge`.
  Because every packet is applied to exactly one worker sketch and counter
  addition commutes, the merged bins and totals are **bit-identical** to a
  single filter processing the whole trace — the existing audit/journal
  stack consumes merged logs unchanged.

* **Per-worker metrics, merged centrally.**  Workers run private metric
  registries under a process-qualified instance namespace (``shard-w<i>``)
  and export them via :meth:`~repro.obs.MetricsRegistry.export_state`; the
  coordinator folds them into its registry with ``merge_state`` — one
  fleet-wide view, no label collisions.

* **Per-worker offload tiers (optional).**  With ``offload_sample_rate``
  set, every worker runs an untrusted
  :class:`~repro.dataplane.offload.FastDropTier` ahead of its filter
  replica: tier drops never reach the enclave replica, the sampled slice
  is re-verdicted, and each worker's
  :class:`~repro.dataplane.offload.OffloadAuditor` closes audit rounds
  every ``offload_round_batches`` batches (plus a final partial round at
  shutdown).  Counters ride the ordinary metrics merge; rule deltas reach
  the tier inside the same acked broadcast that reaches the replica, and
  :meth:`ShardedDataPlane.inject_offload_lie` is the acked chaos hook.

* **Bounded in-flight batches.**  Worker task queues are bounded; the
  coordinator drains verdicts while it waits for queue space, so memory is
  capped by ``max_inflight`` batches per worker and the dispatch loop cannot
  deadlock against a full result queue (back-pressure, not buffering).

Throughput accounting: every worker measures its own CPU time
(``time.process_time``), immune to core-count and scheduler interference.
The headline throughput of a shard run is the *bottleneck-stage* rate
(packets / slowest worker's CPU seconds) — the standard multi-queue
projection of what the plane sustains with one core per worker — reported
alongside the honest single-machine wall rate.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.core.controller import LoadBalancer
from repro.core.enclave_filter import EnclaveFilter
from repro.core.filter import ConnectionPreservingMode
from repro.core.rules import FilterRule
from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import ConfigurationError
from repro.sketch.countmin import CountMinSketch

#: Wire form of one flow: the five-tuple fields the worker rebuilds a
#: :class:`FiveTuple` from.
FlowWire = Tuple[str, str, int, int, int]

#: Wire form of one batch: per unique flow, its five-tuple fields and the
#: frame size of each of its packets (in shard-arrival order).
BatchWire = List[Tuple[FlowWire, List[int]]]


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker needs to build its filter replica."""

    rules: Tuple[Dict[str, object], ...]  # FilterRule.to_dict() forms
    decision_secret: str
    mode: ConnectionPreservingMode
    sketch_seed: str
    burst_size: int
    #: ``(rule_id, src_int)`` membership-tier blocklist entries, seeded via
    #: the bulk path (no per-entry FilterRule on the wire — a million-entry
    #: blackhole list must not cost a million pattern parses per worker).
    blocklist: Tuple[Tuple[int, int], ...] = ()
    #: > 0 arms a per-worker untrusted fast-drop tier
    #: (:class:`~repro.dataplane.offload.FastDropTier`) ahead of the
    #: enclave replica, auditing this fraction of its drop decisions.
    offload_sample_rate: float = 0.0
    #: Sampler seed — shared by every worker so the sample predicate stays
    #: a pure function of the flow key (flows are shard-disjoint anyway).
    offload_seed: str = "vif-offload"
    #: Batches between offload audit-round closes (plus one final partial
    #: round at shutdown).
    offload_round_batches: int = 16
    #: Record per-batch trace spans in the worker (private tracer, real
    #: pid/tid) and ship the span buffer back with the summary so the
    #: coordinator's merged Chrome trace renders one lane per worker.
    trace: bool = False


def _worker_main(
    worker_id: int,
    config: ShardConfig,
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
) -> None:
    """Worker process body: serve tagged tasks until the ``None`` sentinel.

    Tasks are ``("batch", batch_id, flows)`` filter work,
    ``("install", delta_id, rule_dicts)`` / ``("remove", delta_id,
    rule_ids)`` hot rule deltas (acked back so the coordinator can order
    them against batches), ``("offload_lie", delta_id, lie_or_None)``
    chaos broadcasts for the fast-drop tier, or ``None`` to finish.  Because the task queue
    is FIFO, a rule delta takes effect after every batch dispatched before
    it and before every batch dispatched after it — exactly the
    between-bursts semantics the serve control plane needs.  Rule deltas
    go through :class:`EnclaveFilter`'s install/remove paths, which clear
    the per-flow decision memo, so no stale verdict survives a delta.

    The worker runs a *private* metrics registry under a process-qualified
    instance namespace so its series merge collision-free at the
    coordinator, and a fresh :class:`EnclaveFilter` seeded with the shared
    fleet decision secret so hash-based verdicts are identical to every
    other replica's (and to the single-process reference).
    """
    obs.set_registry(obs.MetricsRegistry())
    obs.set_instance_namespace(f"shard-w{worker_id}")
    # A private tracer either way: under fork the child inherits the
    # parent's tracer object and would otherwise record into a buffer
    # nobody ships home.
    obs.set_tracer(obs.Tracer(enabled=config.trace))
    program = EnclaveFilter(
        secret=f"{config.decision_secret}/shard-worker-{worker_id}",
        mode=config.mode,
        sketch_seed=config.sketch_seed,
        decision_secret=config.decision_secret,
    )
    program.install_rules([FilterRule.from_dict(d) for d in config.rules])
    if config.blocklist:
        program.load_blocklist(list(config.blocklist))
    busy_seconds = 0.0
    burst_size = config.burst_size

    def _enclave_chunked(chunk: Sequence[Packet]) -> List[bool]:
        out: List[bool] = []
        for start in range(0, len(chunk), burst_size):
            out.extend(program.process_burst(chunk[start : start + burst_size]))
        return out

    offload = None
    offload_round = 0
    batches_seen = 0
    if config.offload_sample_rate > 0.0:
        # The per-worker untrusted fast-drop tier: same seed everywhere
        # (flows are shard-disjoint, so the shared-seed sample predicate
        # stays globally consistent), private vif_offload_* series merged
        # at the coordinator via the worker metrics state.
        from repro.dataplane.offload import (
            FastDropTier,
            OffloadAuditor,
            OffloadEngine,
            VerifiableSampler,
        )
        from repro.lookup.membership import MembershipRule

        sampler = VerifiableSampler(
            config.offload_sample_rate, seed=config.offload_seed
        )
        tier = FastDropTier(sampler, label=f"shard-w{worker_id}")
        tier.install_rules([FilterRule.from_dict(d) for d in config.rules])
        if config.blocklist:
            tier.install_rules(
                [
                    MembershipRule(rule_id=rid, src_int=src)
                    for rid, src in config.blocklist
                ]
            )
        offload = OffloadEngine(tier, OffloadAuditor(sampler))
        offload.bind(_enclave_chunked)
    while True:
        item = task_queue.get()
        if item is None:
            break
        kind = item[0]
        if kind == "install":
            _, delta_id, rule_dicts = item
            rules = [FilterRule.from_dict(d) for d in rule_dicts]
            program.install_rules(rules)
            if offload is not None:
                offload.tier.install_rules(rules)
                offload.tier.note_delta()
            result_queue.put(("rule_ack", worker_id, delta_id, None))
            continue
        if kind == "remove":
            _, delta_id, rule_ids = item
            program.remove_rules(list(rule_ids))
            if offload is not None:
                offload.tier.remove_rules(list(rule_ids))
                offload.tier.note_delta()
            result_queue.put(("rule_ack", worker_id, delta_id, None))
            continue
        if kind == "offload_lie":
            _, delta_id, lie = item
            if offload is not None:
                if lie is None:
                    offload.clear_lie()
                else:
                    offload.inject_lie(lie)
            result_queue.put(("rule_ack", worker_id, delta_id, None))
            continue
        _, batch_id, flows = item
        started = time.process_time()
        with obs.span(
            "shard.batch", worker=worker_id, batch=batch_id, flows=len(flows)
        ):
            packets: List[Packet] = []
            first_packet_index: List[int] = []
            for (src_ip, dst_ip, src_port, dst_port, proto), sizes in flows:
                five_tuple = FiveTuple(
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=src_port,
                    dst_port=dst_port,
                    protocol=Protocol(proto),
                )
                first_packet_index.append(len(packets))
                for size in sizes:
                    packets.append(Packet(five_tuple=five_tuple, size=size))
            if offload is not None:
                verdicts = offload.process_burst(packets)
                batches_seen += 1
                if batches_seen % config.offload_round_batches == 0:
                    offload_round += 1
                    offload.close_round(offload_round)
            else:
                verdicts = _enclave_chunked(packets)
            # One verdict per *flow* goes back on the wire (f(p) is
            # stateless: every packet of the flow shares it); the
            # coordinator re-expands.
            flow_verdicts = [verdicts[i] for i in first_packet_index]
        busy_seconds += time.process_time() - started
        result_queue.put(("verdicts", worker_id, batch_id, flow_verdicts))
    if offload is not None:
        # Score whatever the last partial round accumulated before the
        # summary ships — a lying tier must not escape via shutdown.
        offload_round += 1
        offload.close_round(offload_round)
    report = program.report()
    result_queue.put(
        (
            "summary",
            worker_id,
            None,
            {
                "incoming": program._logs.incoming.sketch.serialize(),
                "outgoing": program._logs.outgoing.sketch.serialize(),
                "packets_processed": report.packets_processed,
                "packets_allowed": report.packets_allowed,
                "packets_dropped": report.packets_dropped,
                "busy_seconds": busy_seconds,
                "metrics": obs.get_registry().export_state(),
                "trace": (
                    obs.get_tracer().export_state() if config.trace else None
                ),
            },
        )
    )


@dataclass
class ShardRunResult:
    """What a finished sharded run hands back to the caller."""

    num_workers: int
    packets: int
    packets_allowed: int
    packets_dropped: int
    incoming: Optional[CountMinSketch]
    outgoing: Optional[CountMinSketch]
    worker_busy_seconds: List[float]
    worker_packets: List[int]
    coordinator_busy_seconds: float
    wall_seconds: float
    per_worker: List[Dict[str, object]] = field(default_factory=list)
    #: Per-packet verdicts in input order (filled by the reference runner;
    #: the sharded plane returns verdicts from :meth:`ShardedDataPlane.process`).
    verdicts: List[object] = field(default_factory=list)

    @property
    def bottleneck_pps(self) -> float:
        """Packets/sec of the slowest stage — the multi-core projection.

        ``packets / max(worker CPU time, coordinator CPU time)``: with one
        core per worker plus one for the coordinator, the plane sustains the
        rate of whichever stage is busiest.  CPU-time based, so the number
        is meaningful even when the benchmark host timeshares every worker
        onto one core.
        """
        bottleneck = max(
            [self.coordinator_busy_seconds] + self.worker_busy_seconds
        )
        if bottleneck <= 0:
            return 0.0
        return self.packets / bottleneck

    @property
    def wall_pps(self) -> float:
        """Packets/sec by wall clock on *this* machine (all stages timeshared)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.packets / self.wall_seconds


class ShardedDataPlane:
    """Coordinator for N filter-worker processes behind RSS flow sharding.

    Usage::

        plane = ShardedDataPlane(rules, num_workers=4)
        with plane:
            verdicts = plane.process(packets)   # repeatable
            result = plane.finish()             # merge sketches + metrics

    ``process`` returns one boolean verdict per packet in input order,
    identical to a single :class:`EnclaveFilter` over the same trace;
    ``finish`` stops the workers and returns the centrally merged sketch
    logs and accounting.  The context manager guarantees worker teardown
    even on error.
    """

    #: Default packets per pickled batch (flow-coalesced on the wire).
    DEFAULT_BATCH_SIZE = 512

    def __init__(
        self,
        rules: Sequence[FilterRule],
        num_workers: int,
        decision_secret: str = "vif-ixp/fleet",
        mode: ConnectionPreservingMode = ConnectionPreservingMode.HYBRID,
        sketch_seed: str = "vif",
        batch_size: int = DEFAULT_BATCH_SIZE,
        burst_size: int = 256,
        max_inflight: int = 8,
        shard_salt: str = "rss",
        start_method: Optional[str] = None,
        merge_worker_metrics: bool = True,
        result_timeout: float = 120.0,
        restart_dead_workers: bool = False,
        max_worker_restarts: int = 3,
        blocklist: Sequence[Tuple[int, int]] = (),
        offload_sample_rate: float = 0.0,
        offload_seed: str = "vif-offload",
        offload_round_batches: int = 16,
        trace_spans: Optional[bool] = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError("num_workers must be positive")
        if not 0.0 <= offload_sample_rate <= 1.0:
            raise ConfigurationError(
                "offload_sample_rate must be within [0, 1]"
            )
        if offload_round_batches < 1:
            raise ConfigurationError("offload_round_batches must be positive")
        if batch_size < 1 or burst_size < 1:
            raise ConfigurationError("batch_size and burst_size must be positive")
        if burst_size > EnclaveFilter.MAX_BURST:
            raise ConfigurationError(
                f"burst_size {burst_size} exceeds the enclave staging buffer "
                f"({EnclaveFilter.MAX_BURST})"
            )
        if max_inflight < 1:
            raise ConfigurationError("max_inflight must be positive")
        if max_worker_restarts < 0:
            raise ConfigurationError("max_worker_restarts must be >= 0")
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.shard_salt = shard_salt
        self.merge_worker_metrics = merge_worker_metrics
        #: None = follow the process-wide tracing toggle at construction.
        self.trace_spans = (
            obs.tracing_enabled() if trace_spans is None else bool(trace_spans)
        )
        self.result_timeout = result_timeout
        self.restart_dead_workers = restart_dead_workers
        self.max_worker_restarts = max_worker_restarts
        #: The live rule set (rule_id -> wire dict): seeds every worker at
        #: spawn *and* respawn, and is kept current by install_rule /
        #: remove_rule so a restarted worker always carries the post-churn
        #: rules.
        self._live_rules: Dict[int, Dict[str, object]] = {
            rule.rule_id: rule.to_dict() for rule in rules
        }
        #: Membership-tier seed, frozen at construction; hot blocklist churn
        #: goes through install_rule(s)/remove_rule(s) like any other delta.
        self._blocklist: Tuple[Tuple[int, int], ...] = tuple(
            (int(rule_id), int(src_int)) for rule_id, src_int in blocklist
        )
        self._base_config = ShardConfig(
            rules=(),
            decision_secret=decision_secret,
            mode=mode,
            sketch_seed=sketch_seed,
            burst_size=burst_size,
            offload_sample_rate=offload_sample_rate,
            offload_seed=offload_seed,
            offload_round_batches=offload_round_batches,
        )
        #: Bumped on every applied rule delta (mirrors the filter-side memo
        #: invalidation; lets operators correlate verdict changes).
        self.ruleset_version = 0
        if start_method is None:
            # fork keeps worker start cheap (no re-import of the scientific
            # stack); fall back to the platform default where unavailable.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._max_inflight = max_inflight
        self._workers: List[multiprocessing.Process] = []
        self._task_queues: List["multiprocessing.Queue"] = []
        self._result_queue: Optional["multiprocessing.Queue"] = None
        self._shard_cache: Dict[FiveTuple, int] = {}
        self._next_batch_id = 0
        self._next_delta_id = 0
        #: batch_id -> (verdict sink, per-flow packet indexes, worker, wire).
        #: Worker and wire are retained so a batch lost to a worker death can
        #: be re-dispatched to the replacement.
        self._pending: Dict[
            int, Tuple[List[object], List[List[int]], int, BatchWire]
        ] = {}
        self._summaries: Dict[int, Dict[str, object]] = {}
        #: delta_id -> worker ids that have acknowledged the rule delta.
        self._acked_deltas: Dict[int, Set[int]] = {}
        self._worker_restarts: List[int] = [0] * num_workers
        self._packets_dispatched = 0
        self._coordinator_busy = 0.0
        self._wall_seconds = 0.0
        self._started = False
        self._finished = False
        self._closed = False

    def _worker_config(self) -> ShardConfig:
        """The spawn config carrying the *current* rule set."""
        return ShardConfig(
            rules=tuple(
                self._live_rules[rid] for rid in sorted(self._live_rules)
            ),
            decision_secret=self._base_config.decision_secret,
            mode=self._base_config.mode,
            sketch_seed=self._base_config.sketch_seed,
            burst_size=self._base_config.burst_size,
            blocklist=self._blocklist,
            offload_sample_rate=self._base_config.offload_sample_rate,
            offload_seed=self._base_config.offload_seed,
            offload_round_batches=self._base_config.offload_round_batches,
            trace=self.trace_spans,
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardedDataPlane":
        if self._closed:
            raise ConfigurationError("sharded data plane was closed")
        if self._started:
            raise ConfigurationError("sharded data plane already started")
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.num_workers):
            task_queue = self._ctx.Queue(maxsize=self._max_inflight)
            self._task_queues.append(task_queue)
            self._workers.append(self._spawn_worker(worker_id, task_queue))
        self._started = True
        return self

    def _spawn_worker(
        self, worker_id: int, task_queue: "multiprocessing.Queue"
    ) -> "multiprocessing.Process":
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._worker_config(),
                task_queue,
                self._result_queue,
            ),
            daemon=True,
            name=f"vif-shard-w{worker_id}",
        )
        process.start()
        return process

    def __enter__(self) -> "ShardedDataPlane":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------------

    def _shard_for(self, flow: FiveTuple) -> int:
        """Memoized RSS shard lookup (one stable hash per unique flow)."""
        shard = self._shard_cache.get(flow)
        if shard is None:
            shard = LoadBalancer.shard_for_flow(
                flow, self.num_workers, salt=self.shard_salt
            )
            self._shard_cache[flow] = shard
        return shard

    def _collect_one(self, timeout: float) -> bool:
        """Pop one message off the result queue; returns False on timeout."""
        assert self._result_queue is not None
        try:
            kind, worker_id, batch_id, payload = self._result_queue.get(
                timeout=timeout
            )
        except queue_module.Empty:
            return False
        if kind == "verdicts":
            entry = self._pending.pop(batch_id, None)
            if entry is None:
                # A batch re-dispatched after a worker death can, in a
                # narrow race, be answered twice; the first answer wins.
                return True
            sink, flow_indexes, _, _ = entry
            for verdict, packet_indexes in zip(payload, flow_indexes):
                for index in packet_indexes:
                    sink[index] = verdict
        elif kind == "rule_ack":
            self._acked_deltas.setdefault(batch_id, set()).add(worker_id)
        else:  # summary
            self._summaries[worker_id] = payload
        return True

    def dead_workers(self) -> List[int]:
        """Worker ids whose processes are no longer alive."""
        return [
            worker_id
            for worker_id, process in enumerate(self._workers)
            if not process.is_alive()
        ]

    def heal(self) -> List[int]:
        """Restart every dead worker (within the restart budget).

        Returns the restarted worker ids.  Raises :class:`RuntimeError`
        when a worker has exhausted ``max_worker_restarts`` — the caller
        must then fail closed (the serve watchdog sheds and drains).
        """
        if not self._started or self._closed:
            return []
        restarted = []
        for worker_id in self.dead_workers():
            if len(self._summaries) >= self.num_workers:
                break  # normal shutdown: workers exited after summarizing
            if worker_id in self._summaries:
                continue
            if self._worker_restarts[worker_id] >= self.max_worker_restarts:
                raise RuntimeError(
                    f"shard worker {worker_id} exceeded its restart budget "
                    f"({self.max_worker_restarts})"
                )
            self.restart_worker(worker_id)
            restarted.append(worker_id)
        return restarted

    def restart_worker(self, worker_id: int) -> None:
        """Replace one worker process and re-dispatch its pending batches.

        The replacement is spawned from the *live* rule set (post-churn) on
        a fresh task queue; every batch still awaiting verdicts from the
        dead worker is re-sent, so no packet loses its verdict to a worker
        death.  The dead worker's sketch log dies with it — re-dispatched
        batches are re-counted by the replacement, and batches it had
        already answered are absent from the merged sketch, which the audit
        layer reports as divergence rather than hiding.
        """
        if not 0 <= worker_id < self.num_workers:
            raise ConfigurationError(f"no shard worker {worker_id}")
        old = self._workers[worker_id]
        if old.is_alive():
            old.terminate()
        old.join(timeout=5.0)
        old_queue = self._task_queues[worker_id]
        old_queue.cancel_join_thread()
        old_queue.close()
        task_queue = self._ctx.Queue(maxsize=self._max_inflight)
        self._task_queues[worker_id] = task_queue
        self._worker_restarts[worker_id] += 1
        self._workers[worker_id] = self._spawn_worker(worker_id, task_queue)
        # A delta broadcast the dead worker never acked is already baked
        # into the replacement's spawn config.
        for delta_id, acked in self._acked_deltas.items():
            acked.add(worker_id)
        for batch_id, (sink, flow_indexes, owner, wire) in list(
            self._pending.items()
        ):
            if owner == worker_id:
                self._enqueue_task(worker_id, ("batch", batch_id, wire))

    def _on_worker_death(self) -> None:
        """Dead-worker policy hook for the wait loops.

        A worker that already delivered its summary exited *cleanly*; only
        workers that died with work (or their summary) outstanding count.
        """
        dead = [
            worker_id
            for worker_id in self.dead_workers()
            if worker_id not in self._summaries
        ]
        if not dead:
            return
        if self._pending or len(self._summaries) < self.num_workers:
            if self.restart_dead_workers:
                self.heal()
            else:
                names = ", ".join(
                    self._workers[worker_id].name for worker_id in dead
                )
                raise RuntimeError(
                    f"sharded data plane worker(s) died: {names}"
                )

    def _enqueue_task(self, worker_id: int, item: Tuple) -> None:
        """Put one task, draining results while the task queue is full."""
        while True:
            try:
                self._task_queues[worker_id].put(item, timeout=0.05)
                return
            except queue_module.Full:
                # Back-pressure: make room by consuming finished verdicts
                # instead of buffering unboundedly (and avoid the classic
                # full-task-queue/full-result-queue deadlock).
                self._collect_one(timeout=0.05)
                self._on_worker_death()

    def _dispatch(
        self,
        worker_id: int,
        wire: BatchWire,
        sink: List[object],
        flow_indexes: List[List[int]],
    ) -> None:
        """Send one batch, draining verdicts while the task queue is full."""
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._pending[batch_id] = (sink, flow_indexes, worker_id, wire)
        self._enqueue_task(worker_id, ("batch", batch_id, wire))

    # -- hot rule updates ------------------------------------------------------

    def install_rule(self, rule: FilterRule) -> None:
        """Install one rule on every worker, between batches, without restart."""
        self.install_rules([rule])

    def install_rules(self, rules: Sequence[FilterRule]) -> None:
        """Install many rules in **one** acked broadcast (one delta, one
        version bump) — membership-tier churn arrives thousands of ``/32``
        rules at a time, and a per-rule broadcast would serialize on acks."""
        rules = list(rules)
        if not rules:
            return
        self._apply_delta("install", [rule.to_dict() for rule in rules])
        for rule in rules:
            self._live_rules[rule.rule_id] = rule.to_dict()
        self.ruleset_version += 1

    def remove_rule(self, rule_id: int) -> None:
        """Remove one rule from every worker, between batches, without restart."""
        self.remove_rules([rule_id])

    def remove_rules(self, rule_ids: Sequence[int]) -> None:
        """Remove many rules in one acked broadcast (one version bump)."""
        rule_ids = list(rule_ids)
        if not rule_ids:
            return
        self._apply_delta("remove", rule_ids)
        for rule_id in rule_ids:
            self._live_rules.pop(rule_id, None)
        self.ruleset_version += 1

    @property
    def offload_enabled(self) -> bool:
        """True when every worker runs a fast-drop tier ahead of its filter."""
        return self._base_config.offload_sample_rate > 0.0

    def inject_offload_lie(self, lie) -> None:
        """Arm one :class:`~repro.dataplane.offload.OffloadLie` on every
        worker's tier — acked like a rule delta, so on return the lie is
        live everywhere (the chaos driver needs between-bursts semantics)."""
        if not self.offload_enabled:
            raise ConfigurationError(
                "plane has no offload tier to corrupt (offload_sample_rate=0)"
            )
        self._apply_delta("offload_lie", lie)

    def clear_offload_lie(self) -> None:
        """Clear any armed lie on every worker (acked broadcast)."""
        if not self.offload_enabled:
            return
        self._apply_delta("offload_lie", None)

    def _apply_delta(self, action: str, payload: object) -> None:
        """Broadcast one rule delta and wait for every worker's ack.

        The task queues are FIFO, so the delta is ordered after every batch
        dispatched before this call and before every batch dispatched after
        it; waiting for the acks makes the call synchronous (on return, the
        delta is live on every worker) and surfaces worker deaths.
        """
        if not self._started or self._finished or self._closed:
            raise ConfigurationError("sharded data plane is not running")
        delta_id = self._next_delta_id
        self._next_delta_id += 1
        self._acked_deltas[delta_id] = set()
        for worker_id in range(self.num_workers):
            self._enqueue_task(worker_id, (action, delta_id, payload))
        waited = 0.0
        while len(self._acked_deltas[delta_id]) < self.num_workers:
            if self._collect_one(timeout=0.1):
                continue
            waited += 0.1
            self._on_worker_death()
            if waited > self.result_timeout:
                self.close()
                raise RuntimeError(
                    f"timed out waiting for rule-delta acks "
                    f"({len(self._acked_deltas[delta_id])}/{self.num_workers})"
                )
        del self._acked_deltas[delta_id]

    def process(self, packets: Iterable[Packet]) -> List[object]:
        """Shard ``packets`` across the workers; returns per-packet verdicts.

        Verdicts come back in input order and are identical to what one
        :class:`EnclaveFilter` holding the same rules would return.  Blocks
        until every packet of this call is adjudicated.
        """
        if not self._started or self._finished or self._closed:
            raise ConfigurationError("sharded data plane is not running")
        wall_started = time.perf_counter()
        cpu_started = time.process_time()
        packets = list(packets)
        sink: List[object] = [None] * len(packets)
        # Per-worker open batch: flow -> (wire row, original packet indexes).
        open_batches: List[Dict[FiveTuple, Tuple[Tuple[FlowWire, List[int]], List[int]]]] = [
            {} for _ in range(self.num_workers)
        ]
        open_counts = [0] * self.num_workers
        for index, packet in enumerate(packets):
            flow = packet.five_tuple
            worker_id = self._shard_for(flow)
            batch = open_batches[worker_id]
            entry = batch.get(flow)
            if entry is None:
                wire_row = (
                    (
                        flow.src_ip,
                        flow.dst_ip,
                        flow.src_port,
                        flow.dst_port,
                        int(flow.protocol),
                    ),
                    [],
                )
                entry = (wire_row, [])
                batch[flow] = entry
            entry[0][1].append(packet.size)
            entry[1].append(index)
            open_counts[worker_id] += 1
            if open_counts[worker_id] >= self.batch_size:
                self._flush_batch(worker_id, open_batches, open_counts, sink)
        for worker_id in range(self.num_workers):
            if open_counts[worker_id]:
                self._flush_batch(worker_id, open_batches, open_counts, sink)
        self._packets_dispatched += len(packets)
        waited = 0.0
        misses = 0
        while self._pending:
            if self._collect_one(timeout=0.1):
                misses = 0
                continue
            waited += 0.1
            misses += 1
            if misses >= 5:
                # Tolerate a few empty polls before declaring a worker dead:
                # a worker's last message can still be in the pipe when its
                # process has already exited.
                self._on_worker_death()
            if waited > self.result_timeout:
                self.close()
                raise RuntimeError(
                    f"timed out waiting for {len(self._pending)} "
                    "outstanding shard batches"
                )
        # CPU time over the whole call (sharding, coalescing, and verdict
        # scatter wherever it happened to run); time blocked on the result
        # queue burns no CPU, so this is the complete coordinator cost
        # without charging for idle waiting.
        self._coordinator_busy += time.process_time() - cpu_started
        self._wall_seconds += time.perf_counter() - wall_started
        return sink

    def _flush_batch(
        self,
        worker_id: int,
        open_batches: List[Dict[FiveTuple, Tuple[Tuple[FlowWire, List[int]], List[int]]]],
        open_counts: List[int],
        sink: List[object],
    ) -> None:
        batch = open_batches[worker_id]
        wire: BatchWire = [entry[0] for entry in batch.values()]
        flow_indexes = [entry[1] for entry in batch.values()]
        open_batches[worker_id] = {}
        open_counts[worker_id] = 0
        self._dispatch(worker_id, wire, sink, flow_indexes)

    # -- teardown / merge ------------------------------------------------------

    def finish(self) -> ShardRunResult:
        """Stop the workers and centrally merge sketches, counts and metrics.

        Every failure path (worker death, timeout, merge error) tears the
        workers down through :meth:`close` before re-raising, so a failed
        finish never leaves orphaned worker processes behind.  Calling
        ``finish`` after ``close`` (or twice) fails immediately with a
        clear error instead of hanging on dead queues.
        """
        if not self._started:
            raise ConfigurationError("sharded data plane was never started")
        if self._closed:
            raise ConfigurationError(
                "sharded data plane was closed; finish() has no workers "
                "left to merge — call finish() before close()"
            )
        if self._finished:
            raise ConfigurationError("sharded data plane already finished")
        self._finished = True
        try:
            return self._finish_inner()
        except BaseException:
            self.close()
            raise

    def _finish_inner(self) -> ShardRunResult:
        for task_queue in self._task_queues:
            task_queue.put(None)
        waited = 0.0
        misses = 0
        while self._pending or len(self._summaries) < self.num_workers:
            if self._collect_one(timeout=0.1):
                misses = 0
                continue
            waited += 0.1
            misses += 1
            if misses >= 5:
                self._on_worker_death()
            if waited > self.result_timeout:
                raise RuntimeError("timed out waiting for worker summaries")
        for process in self._workers:
            process.join(timeout=self.result_timeout)

        incoming: Optional[CountMinSketch] = None
        outgoing: Optional[CountMinSketch] = None
        allowed = dropped = 0
        busy: List[float] = []
        counts: List[int] = []
        per_worker: List[Dict[str, object]] = []
        registry = obs.get_registry()
        for worker_id in range(self.num_workers):
            summary = self._summaries[worker_id]
            worker_in = CountMinSketch.deserialize(summary["incoming"])
            worker_out = CountMinSketch.deserialize(summary["outgoing"])
            if incoming is None:
                incoming, outgoing = worker_in, worker_out
            else:
                # The hardened word-wise merge: accounted, bit-identical to
                # one sketch having seen the union stream.
                incoming.merge(worker_in)
                outgoing.merge(worker_out)  # type: ignore[union-attr]
            allowed += summary["packets_allowed"]
            dropped += summary["packets_dropped"]
            busy.append(summary["busy_seconds"])
            counts.append(summary["packets_processed"])
            per_worker.append(
                {
                    "worker": worker_id,
                    "packets": summary["packets_processed"],
                    "allowed": summary["packets_allowed"],
                    "dropped": summary["packets_dropped"],
                    "busy_seconds": summary["busy_seconds"],
                }
            )
            if self.merge_worker_metrics:
                registry.merge_state(summary["metrics"])
            trace_state = summary.get("trace")
            if trace_state:
                # Worker spans carry their own pid/tid; after the merge the
                # coordinator's Chrome trace shows one lane per worker.
                obs.get_tracer().merge_state(trace_state)
        return ShardRunResult(
            num_workers=self.num_workers,
            packets=self._packets_dispatched,
            packets_allowed=allowed,
            packets_dropped=dropped,
            incoming=incoming,
            outgoing=outgoing,
            worker_busy_seconds=busy,
            worker_packets=counts,
            coordinator_busy_seconds=self._coordinator_busy,
            wall_seconds=self._wall_seconds,
            per_worker=per_worker,
        )

    def close(self) -> None:
        """Tear the workers down unconditionally (idempotent)."""
        self._closed = True
        for process in self._workers:
            if process.is_alive():
                process.terminate()
        for process in self._workers:
            process.join(timeout=5.0)
        for q in self._task_queues + ([self._result_queue] if self._result_queue else []):
            q.cancel_join_thread()
            q.close()
        self._task_queues = []
        self._workers = []
        self._result_queue = None
        self._pending = {}
        self._acked_deltas = {}


def run_single_process_reference(
    rules: Sequence[FilterRule],
    packets: Sequence[Packet],
    decision_secret: str = "vif-ixp/fleet",
    mode: ConnectionPreservingMode = ConnectionPreservingMode.HYBRID,
    sketch_seed: str = "vif",
    burst_size: int = 256,
    blocklist: Sequence[Tuple[int, int]] = (),
) -> ShardRunResult:
    """The equivalence baseline: one in-process filter over the whole trace.

    Same burst semantics, same decision secret, same sketch families as the
    sharded workers — the sharded path must match this bit for bit (verdicts,
    merged bins, totals).  Busy time is CPU time, so ``bottleneck_pps`` is
    comparable with the sharded runs' (a 1-worker plane ≈ this, plus IPC).
    """
    program = EnclaveFilter(
        secret=f"{decision_secret}/single",
        mode=mode,
        sketch_seed=sketch_seed,
        decision_secret=decision_secret,
    )
    program.install_rules(list(rules))
    if blocklist:
        program.load_blocklist(list(blocklist))
    packets = list(packets)
    verdicts: List[object] = []
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    for start in range(0, len(packets), burst_size):
        verdicts.extend(program.process_burst(packets[start : start + burst_size]))
    busy = time.process_time() - cpu_started
    wall = time.perf_counter() - wall_started
    report = program.report()
    result = ShardRunResult(
        num_workers=1,
        packets=len(packets),
        packets_allowed=report.packets_allowed,
        packets_dropped=report.packets_dropped,
        incoming=program._logs.incoming.sketch.copy(),
        outgoing=program._logs.outgoing.sketch.copy(),
        worker_busy_seconds=[busy],
        worker_packets=[len(packets)],
        coordinator_busy_seconds=0.0,
        wall_seconds=wall,
        per_worker=[
            {
                "worker": 0,
                "packets": report.packets_processed,
                "allowed": report.packets_allowed,
                "dropped": report.packets_dropped,
                "busy_seconds": busy,
            }
        ],
        verdicts=verdicts,
    )
    return result
