"""Calibrated per-packet cycle-cost model for the VIF data plane.

The paper's throughput/latency figures come from a DPDK + SGX testbed we do
not have; per the substitution rule we reproduce them from an explicit cost
structure.  Every constant below is anchored to a measured point in the
paper (filter machine: Intel i7-6700, 3.4 GHz, one core per pipeline stage;
the Filter thread is the bottleneck stage):

* **Line rate.** 10 GbE carries ``10e9 / ((size + 20) * 8)`` packets/s
  (14.88 Mpps at 64 B).  Throughput plots report *wire* Gb/s, so a
  line-rate-limited run shows 10 Gb/s at every packet size, as in Fig 8.
* **Native filter** ≈ 216 cycles/packet at 3,000 rules (ring hops + trie
  walk) → 15.7 Mpps capacity → line-rate limited at all sizes (Fig 8/13
  "Native").
* **Near zero-copy SGX** adds the ``<5T, size, *>`` copy plus four linear
  sketch hash updates ≈ +80 cycles → ≈ 296 cycles → 11.5 Mpps, i.e. ≈
  7.7 Gb/s wire at 64 B — the paper's "8 Gb/s with 64 B packets and 3,000
  rules" — and line rate at ≥128 B.
* **ECall batching (§V "reduce the number of context switches").** An
  enclave transition (EENTER/EEXIT round trip) costs ≈ 8,000 cycles.  The
  paper's implementation amortizes it by crossing the boundary once per
  DPDK burst of 32, so 8,000/32 = 250 amortized cycles are already folded
  into the measured SGX anchors above.  ``batch_size`` models deviations
  from that calibration point: per-packet ECalls (batch 1) add the other
  31/32 of a transition ≈ +7,750 cycles per packet and collapse throughput
  to well under 1 Mpps — which is exactly why the unbatched strawman never
  appears in Fig 8.
* **Full-packet copy SGX** adds a fixed in-enclave buffer-management /
  paging cost plus a per-byte copy ≈ +330 cycles + 0.45 cycles/B → ≈
  5.3 Mpps at 64 B, matching the "capped at roughly 6 Mpps" of Fig 13 and
  full line rate only at ≥256 B (Fig 8).
* **Rule-count knee (Fig 3a).** Below ≈3,000 rules the lookup table stays
  inside the cache/EPC-friendly working set (performance budget, see
  :mod:`repro.lookup.memory_model`) and cost grows only logarithmically
  with the trie walk; past it, each additional MB of table adds a
  locality penalty (~6 cycles/packet/MB), collapsing throughput exactly
  where the paper's Fig 3a does.
* **SHA-256 hashing (Fig 14).** Hash-based connection-preserving filtering
  costs ≈ 600 cycles per hashed packet; at a 10 % hash ratio that is +60
  cycles — invisible except at 64 B where capacity is the binding
  constraint (the paper's "up to 25 % degradation only at 64 B").
* **Latency (§V-B).** The five measured points (34 µs @128 B … 107 µs
  @1500 B at 8 Gb/s load) fit ``27.2 µs + 0.0532 µs/B`` to within ~3 µs —
  a fixed pipeline traversal plus per-byte DMA/serialization — so that is
  the model.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.lookup.memory_model import EnclaveMemoryModel, PAPER_MEMORY_MODEL
from repro.util.units import MB, line_rate_pps


class ImplementationVariant(enum.Enum):
    """The three implementations benchmarked in Fig 8/13."""

    NATIVE = "native"
    SGX_FULL_COPY = "sgx-full-copy"
    SGX_ZERO_COPY = "sgx-near-zero-copy"


@dataclass(frozen=True)
class CostModel:
    """Per-packet cycle costs for one filter pipeline."""

    #: Core clock of the filter machine (i7-6700).
    clock_hz: float = 3.4e9

    #: RX poll + two ring hops + TX enqueue.
    ring_cycles: float = 80.0

    #: Trie lookup: fixed part plus per-level growth with the rule count.
    lookup_base_cycles: float = 40.0
    lookup_per_log2_rule_cycles: float = 8.0

    #: Near zero-copy: copy <5T, size, *> into the enclave.
    tuple_copy_cycles: float = 20.0

    #: Two count-min sketches x two hash rows per packet.
    sketch_cycles: float = 60.0

    #: Full-packet copy: fixed in-enclave buffer management + paging churn,
    #: plus the byte copy itself.
    full_copy_fixed_cycles: float = 330.0
    full_copy_per_byte_cycles: float = 0.45

    #: SHA-256 over the 5-tuple for hash-based filtering decisions.
    sha256_cycles: float = 600.0

    #: One enclave transition (EENTER/EEXIT round trip) — the "context
    #: switch" the paper's batching optimization amortizes.
    ecall_cycles: float = 8000.0

    #: The burst size the SGX anchors above were calibrated at: the paper's
    #: implementation crosses the enclave boundary once per DPDK burst of
    #: 32, so ``ecall_cycles / 32`` is already inside the measured numbers.
    calibrated_batch_size: int = 32

    #: Locality penalty once the lookup table exceeds the performance
    #: budget: cycles per packet per MB of overshoot.
    locality_cycles_per_mb: float = 6.0

    #: Additional penalty per MB once the footprint exceeds the *EPC* and
    #: real paging starts (full-copy runs live here permanently).
    paging_cycles_per_mb: float = 10.0

    #: Untrusted fast-drop tier lookup (repro.dataplane.offload): one hash
    #: plus Bloom bit probes and at most two cuckoo bucket reads, all in
    #: untrusted memory — comparable to an XDP map lookup.  No enclave
    #: transition, no EPC pricing, which is the whole point of the tier.
    offload_lookup_cycles: float = 50.0

    memory_model: EnclaveMemoryModel = PAPER_MEMORY_MODEL

    # -- cycle accounting ---------------------------------------------------

    def lookup_cycles(self, num_rules: int) -> float:
        """Trie walk cost including the locality/paging penalties."""
        if num_rules < 0:
            raise ValueError("num_rules must be non-negative")
        cost = self.lookup_base_cycles
        cost += self.lookup_per_log2_rule_cycles * math.log2(num_rules + 2)
        footprint = self.memory_model.footprint_bytes(num_rules)
        budget = self.memory_model.performance_budget_bytes
        if footprint > budget:
            cost += self.locality_cycles_per_mb * (footprint - budget) / MB
        epc = self.memory_model.epc_limit_bytes
        if footprint > epc:
            cost += self.paging_cycles_per_mb * (footprint - epc) / MB
        return cost

    def ecalls_per_packet(
        self, variant: ImplementationVariant, batch_size: Optional[int] = None
    ) -> float:
        """Enclave transitions per packet: 1/batch for SGX, 0 for native."""
        if variant is ImplementationVariant.NATIVE:
            return 0.0
        batch = self.calibrated_batch_size if batch_size is None else batch_size
        if batch < 1:
            raise ValueError("batch_size must be >= 1")
        return 1.0 / batch

    def transition_cycles(
        self, variant: ImplementationVariant, batch_size: Optional[int] = None
    ) -> float:
        """Amortized enclave-transition cycles *relative to calibration*.

        Zero at the calibrated batch size (those cycles are inside the
        measured anchors), positive for smaller batches — per-packet ECalls
        (batch 1) pay almost a full transition each — and slightly negative
        for larger ones.
        """
        if variant is ImplementationVariant.NATIVE:
            return 0.0
        per_packet = self.ecalls_per_packet(variant, batch_size)
        calibrated = 1.0 / self.calibrated_batch_size
        return self.ecall_cycles * (per_packet - calibrated)

    def per_packet_cycles(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        hash_ratio: float = 0.0,
        batch_size: Optional[int] = None,
    ) -> float:
        """Total Filter-thread cycles to process one packet.

        ``hash_ratio`` is the fraction of packets undergoing the SHA-256
        hash-based filtering decision (Appendix A/F, Fig 14).
        ``batch_size`` is how many packets cross the enclave boundary per
        ECall; ``None`` means the calibrated default (one DPDK burst).
        """
        if not 0.0 <= hash_ratio <= 1.0:
            raise ValueError("hash_ratio must be within [0, 1]")
        cycles = self.ring_cycles + self.lookup_cycles(num_rules)
        if variant is ImplementationVariant.SGX_ZERO_COPY:
            cycles += self.tuple_copy_cycles + self.sketch_cycles
        elif variant is ImplementationVariant.SGX_FULL_COPY:
            cycles += self.tuple_copy_cycles + self.sketch_cycles
            cycles += (
                self.full_copy_fixed_cycles
                + self.full_copy_per_byte_cycles * packet_size
            )
        cycles += self.transition_cycles(variant, batch_size)
        cycles += hash_ratio * self.sha256_cycles
        return cycles

    # -- offload tier pricing ----------------------------------------------

    @staticmethod
    def offload_enclave_fraction(drop_fraction: float, sample_rate: float) -> float:
        """Fraction of ingress still paying the enclave path with the tier.

        Every packet pays the tier lookup; only the tier's survivors — the
        non-droppable share plus the sampled slice of the droppable share —
        continue into the enclave: ``(1 - f) + f·rate``.
        """
        if not 0.0 <= drop_fraction <= 1.0:
            raise ValueError("drop_fraction must be within [0, 1]")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        return (1.0 - drop_fraction) + drop_fraction * sample_rate

    def offload_per_packet_cycles(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        drop_fraction: float,
        sample_rate: float,
        hash_ratio: float = 0.0,
        batch_size: Optional[int] = None,
    ) -> float:
        """Expected Filter-thread cycles per ingress packet with the tier.

        ``drop_fraction`` is the share of traffic the tier's rules cover
        (the droppable bulk); ``sample_rate`` the audited slice of its drop
        decisions.  The audit overhead — sampled drops re-entering the
        enclave — is priced here, not waved away.
        """
        enclave = self.per_packet_cycles(
            variant, packet_size, num_rules, hash_ratio, batch_size
        )
        fraction = self.offload_enclave_fraction(drop_fraction, sample_rate)
        return self.offload_lookup_cycles + fraction * enclave

    def offload_audit_overhead_cycles(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        drop_fraction: float,
        sample_rate: float,
        hash_ratio: float = 0.0,
        batch_size: Optional[int] = None,
    ) -> float:
        """Cycles per ingress packet spent re-verdicting sampled drops —
        the verifiability premium over a blindly trusted tier."""
        if not 0.0 <= drop_fraction <= 1.0:
            raise ValueError("drop_fraction must be within [0, 1]")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        enclave = self.per_packet_cycles(
            variant, packet_size, num_rules, hash_ratio, batch_size
        )
        return drop_fraction * sample_rate * enclave

    def offload_speedup(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        drop_fraction: float,
        sample_rate: float,
        hash_ratio: float = 0.0,
        batch_size: Optional[int] = None,
    ) -> float:
        """Modeled end-to-end pps gain of the tiered path over enclave-only."""
        enclave = self.per_packet_cycles(
            variant, packet_size, num_rules, hash_ratio, batch_size
        )
        tiered = self.offload_per_packet_cycles(
            variant,
            packet_size,
            num_rules,
            drop_fraction,
            sample_rate,
            hash_ratio,
            batch_size,
        )
        return enclave / tiered

    def offload_capacity_pps(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        drop_fraction: float,
        sample_rate: float,
        hash_ratio: float = 0.0,
        batch_size: Optional[int] = None,
    ) -> float:
        """CPU-bound ingress packet rate of the tiered filter stage."""
        return self.clock_hz / self.offload_per_packet_cycles(
            variant,
            packet_size,
            num_rules,
            drop_fraction,
            sample_rate,
            hash_ratio,
            batch_size,
        )

    # -- throughput ---------------------------------------------------------

    def capacity_pps(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        hash_ratio: float = 0.0,
        batch_size: Optional[int] = None,
    ) -> float:
        """CPU-bound packet rate of the filter stage."""
        cycles = self.per_packet_cycles(
            variant, packet_size, num_rules, hash_ratio, batch_size
        )
        return self.clock_hz / cycles

    def achieved_pps(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        hash_ratio: float = 0.0,
        link_bps: float = 10e9,
        offered_pps: float = float("inf"),
        batch_size: Optional[int] = None,
    ) -> float:
        """Delivered packet rate: min(offered, line rate, CPU capacity)."""
        return min(
            offered_pps,
            line_rate_pps(packet_size, link_bps),
            self.capacity_pps(
                variant, packet_size, num_rules, hash_ratio, batch_size
            ),
        )

    def achieved_wire_gbps(
        self,
        variant: ImplementationVariant,
        packet_size: int,
        num_rules: int,
        hash_ratio: float = 0.0,
        link_bps: float = 10e9,
        offered_pps: float = float("inf"),
        batch_size: Optional[int] = None,
    ) -> float:
        """Delivered throughput in wire Gb/s (framing included, as pktgen
        reports it — a line-rate run reads 10.0 at every packet size)."""
        pps = self.achieved_pps(
            variant,
            packet_size,
            num_rules,
            hash_ratio,
            link_bps,
            offered_pps,
            batch_size,
        )
        return pps * (packet_size + 20) * 8 / 1e9

    # -- latency ------------------------------------------------------------

    #: Fixed pipeline traversal (polling intervals, ring hops) and per-byte
    #: DMA/serialization — least-squares fit of the paper's five points.
    latency_base_us: float = 27.2
    latency_per_byte_us: float = 0.0532

    def latency_us(
        self,
        packet_size: int,
        variant: ImplementationVariant = ImplementationVariant.SGX_ZERO_COPY,
        num_rules: int = 3000,
        load_gbps: float = 8.0,
        link_bps: float = 10e9,
    ) -> float:
        """Average packet latency under a constant offered load.

        Below saturation the latency is load-independent (the paper measures
        at a fixed 8 Gb/s); at or past saturation a queueing multiplier grows
        toward infinity as offered load approaches capacity.
        """
        base = self.latency_base_us + self.latency_per_byte_us * packet_size
        offered_pps = load_gbps * 1e9 / ((packet_size + 20) * 8)
        capacity = min(
            line_rate_pps(packet_size, link_bps),
            self.capacity_pps(variant, packet_size, num_rules),
        )
        utilization = offered_pps / capacity
        if utilization >= 1.0:
            return float("inf")
        # M/D/1-flavoured waiting growth; negligible at the paper's 80% load
        # on a line-rate-limited run (the measured points already include
        # that regime), dominant as utilization -> 1.
        return base * (1.0 + 0.5 * utilization**2 / (1.0 - utilization) * 0.01)


#: The calibration used by all benchmarks.
PAPER_COST_MODEL = CostModel()
