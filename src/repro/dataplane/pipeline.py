"""The three-stage RX -> Filter -> TX pipeline (paper Fig 6).

Functionally simulates the DPDK pipeline model: the RX stage polls the NIC
RX queue in bursts onto the RX ring; the Filter stage pulls bursts off the
RX ring, asks the filter for a verdict per packet, and pushes survivors to
the TX ring (dropped packets go to the DROP ring for accounting); the TX
stage drains the TX ring to the NIC.  The filter itself is a callable so the
pipeline works with a bare function in unit tests and with an
:class:`~repro.core.enclave_filter.EnclaveFilter` ECall in the full system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.dataplane.nic import NIC
from repro.dataplane.packet import Packet
from repro.dataplane.rings import Ring

FilterFn = Callable[[Packet], bool]


@dataclass
class PipelineStats:
    """Counters across one pipeline's lifetime."""

    received: int = 0
    allowed: int = 0
    dropped: int = 0
    ring_overflow_drops: int = 0

    @property
    def processed(self) -> int:
        return self.allowed + self.dropped


class FilterPipeline:
    """One filter pipeline instance over a NIC pair.

    ``filter_fn(packet) -> bool`` returns True to forward the packet.  The
    burst size defaults to DPDK's conventional 32.
    """

    def __init__(
        self,
        filter_fn: FilterFn,
        nic_in: Optional[NIC] = None,
        nic_out: Optional[NIC] = None,
        burst_size: int = 32,
        ring_capacity: int = 4096,
    ) -> None:
        if burst_size <= 0:
            raise ValueError("burst_size must be positive")
        self.filter_fn = filter_fn
        self.nic_in = nic_in or NIC("in")
        self.nic_out = nic_out or NIC("out")
        self.burst_size = burst_size
        self.rx_ring: Ring[Packet] = Ring("rx", ring_capacity)
        self.tx_ring: Ring[Packet] = Ring("tx", ring_capacity)
        self.drop_ring: Ring[Packet] = Ring("drop", ring_capacity)
        self.stats = PipelineStats()

    # -- stages ------------------------------------------------------------

    def rx_stage(self) -> int:
        """Poll the inbound NIC onto the RX ring; returns packets moved."""
        burst = self.nic_in.rx_burst(self.burst_size)
        moved = self.rx_ring.enqueue_bulk(burst)
        self.stats.received += len(burst)
        self.stats.ring_overflow_drops += len(burst) - moved
        return moved

    def filter_stage(self) -> int:
        """Run the filter over one burst; returns packets processed."""
        burst = self.rx_ring.dequeue_burst(self.burst_size)
        for packet in burst:
            if self.filter_fn(packet):
                if self.tx_ring.enqueue(packet):
                    self.stats.allowed += 1
                else:
                    self.stats.ring_overflow_drops += 1
            else:
                self.stats.dropped += 1
                # The DROP ring recycles buffers; overflow there only loses
                # accounting fidelity, never packets, so use best-effort.
                self.drop_ring.enqueue(packet)
        return len(burst)

    def tx_stage(self) -> int:
        """Drain the TX ring to the outbound NIC; returns packets moved."""
        burst = self.tx_ring.dequeue_burst(self.burst_size)
        return self.nic_out.tx(burst)

    # -- driving -----------------------------------------------------------

    def run_once(self) -> None:
        """One polling iteration of each stage, in pipeline order."""
        self.rx_stage()
        self.filter_stage()
        self.tx_stage()

    def run_until_drained(self, max_iterations: int = 1_000_000) -> None:
        """Iterate until all queued packets have flowed through."""
        for _ in range(max_iterations):
            self.run_once()
            if (
                self.nic_in.rx_queue.empty
                and self.rx_ring.empty
                and self.tx_ring.empty
            ):
                break
        else:
            raise RuntimeError("pipeline failed to drain")

    def process(self, packets: List[Packet]) -> List[Packet]:
        """Convenience: push ``packets`` through and return the forwarded ones."""
        self.nic_in.receive_from_wire(packets)
        self.run_until_drained()
        return self.nic_out.drain_to_wire()
