"""The three-stage RX -> Filter -> TX pipeline (paper Fig 6).

Functionally simulates the DPDK pipeline model: the RX stage polls the NIC
RX queue in bursts onto the RX ring; the Filter stage pulls bursts off the
RX ring, asks the filter for a verdict per packet, and pushes survivors to
the TX ring (dropped packets go to the DROP ring for accounting); the TX
stage drains the TX ring to the NIC.

The filter may be either of:

* a bare callable ``filter_fn(packet) -> bool`` (unit tests, native
  baselines) — invoked once per packet;
* an object additionally exposing ``process_burst(packets) -> verdicts``
  (e.g. :class:`~repro.core.enclave_filter.EnclaveBurstFilter`) — invoked
  once per burst, so an enclave-backed filter pays one ECall transition per
  burst instead of one per packet (the paper's context-switch reduction).

A routed filter (one that steers packets through a load balancer, e.g.
:class:`~repro.core.fleet.FleetBurstFilter`) may return the :data:`UNROUTED`
verdict for packets matching no installed rule: they are forwarded on the
default path but counted separately from filter-approved traffic, so
load-balancer bypass is visible in the books.

An optional **offload stage** sits between the RX ring and the filter: an
untrusted :class:`~repro.dataplane.offload.FastDropTier` classifies each
burst first, dropping the obvious bulk outside the enclave at near-zero
cost.  A seeded, flow-hash-keyed fraction of its drop decisions is
diverted ("sampled") to the enclave path for re-verdict so offloaded drops
stay auditable; the remaining survivors continue as before.  The stage
keeps its own conservation law — ``offload_ingress == offload_drops +
offload_sampled + offload_passed`` — registered as a second registry
invariant.

Accounting is conservation-checked: after every drain,
``received == allowed + dropped + unrouted + offload_drops +
rx_overflow_drops + tx_overflow_drops`` holds exactly — no packet ever
disappears untracked (``dropped`` counts enclave verdicts, ``offload_drops``
the untrusted tier's).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Union

from repro import obs
from repro.dataplane.nic import NIC
from repro.dataplane.packet import Packet
from repro.dataplane.rings import Ring

#: Verdict for a packet the filter forwarded *without* adjudicating it (no
#: installed rule matched, so it takes the default path).  Truthy — the
#: packet is still forwarded — but accounted under ``stats.unrouted`` rather
#: than ``stats.allowed``.
UNROUTED = "unrouted"

Verdict = Union[bool, str]
FilterFn = Callable[[Packet], bool]
BurstFilterFn = Callable[[Sequence[Packet]], Sequence[Verdict]]


class PipelineAccountingError(RuntimeError):
    """The pipeline's packet-conservation invariant was violated."""


def _registry_backed(field: str, doc: str):
    """An int attribute whose storage is a registry :class:`~repro.obs.Counter`.

    Reads return the counter value; writes store through (tests assign
    counters directly to prove the conservation check fires).  The counter
    object itself is what ``repro metrics`` renders — same memory, one
    source of truth.
    """

    def getter(self: "PipelineStats") -> int:
        return self._counters[field].value

    def setter(self: "PipelineStats", value: int) -> None:
        self._counters[field].set(value)

    return property(getter, setter, doc=doc)


class PipelineStats:
    """Counters across one pipeline's lifetime, stored in the metrics registry.

    Every field reads and writes a ``vif_pipeline_<field>_total`` counter
    labeled with this pipeline's instance label, so the legacy attribute
    API (``stats.received``), the conservation check, and the Prometheus
    exposition all see the same numbers.
    """

    FIELDS = (
        "received",
        "allowed",
        "dropped",
        "unrouted",
        "rx_overflow_drops",
        "tx_overflow_drops",
        "offload_ingress",
        "offload_drops",
        "offload_sampled",
        "offload_passed",
    )

    _HELP = {
        "received": "Packets polled off the inbound NIC",
        "allowed": "Packets the filter approved and the TX ring accepted",
        "dropped": "Packets the filter rejected",
        "unrouted": "Packets forwarded on the default path (no rule matched)",
        "rx_overflow_drops": "Packets lost to RX-ring back-pressure",
        "tx_overflow_drops": "Packets lost to TX-ring back-pressure",
        "offload_ingress": "Packets entering the untrusted fast-drop tier",
        "offload_drops": "Packets dropped by the untrusted tier (unsampled)",
        "offload_sampled": "Tier drop decisions diverted for enclave re-verdict",
        "offload_passed": "Packets the tier passed to the enclave path",
    }

    def __init__(
        self,
        registry: Optional["obs.MetricsRegistry"] = None,
        pipeline: Optional[str] = None,
        **initial: int,
    ) -> None:
        reg = registry or obs.get_registry()
        self.pipeline_label = pipeline or obs.next_instance_label("pipeline")
        self._counters = {
            field: reg.counter(
                f"vif_pipeline_{field}_total",
                help=self._HELP[field],
                pipeline=self.pipeline_label,
            )
            for field in self.FIELDS
        }
        for field, value in initial.items():
            if field not in self._counters:
                raise TypeError(f"unknown pipeline counter {field!r}")
            self._counters[field].set(value)

    received = _registry_backed("received", _HELP["received"])
    allowed = _registry_backed("allowed", _HELP["allowed"])
    dropped = _registry_backed("dropped", _HELP["dropped"])
    unrouted = _registry_backed("unrouted", _HELP["unrouted"])
    rx_overflow_drops = _registry_backed(
        "rx_overflow_drops", _HELP["rx_overflow_drops"]
    )
    tx_overflow_drops = _registry_backed(
        "tx_overflow_drops", _HELP["tx_overflow_drops"]
    )
    offload_ingress = _registry_backed("offload_ingress", _HELP["offload_ingress"])
    offload_drops = _registry_backed("offload_drops", _HELP["offload_drops"])
    offload_sampled = _registry_backed("offload_sampled", _HELP["offload_sampled"])
    offload_passed = _registry_backed("offload_passed", _HELP["offload_passed"])

    @property
    def ring_overflow_drops(self) -> int:
        """All packets lost to ring back-pressure (RX or TX side)."""
        return self.rx_overflow_drops + self.tx_overflow_drops

    @property
    def processed(self) -> int:
        """Packets the filter stage reached a verdict for (tier included)."""
        return (
            self.allowed
            + self.dropped
            + self.unrouted
            + self.offload_drops
            + self.tx_overflow_drops
        )

    def as_dict(self) -> dict:
        return {field: self._counters[field].value for field in self.FIELDS}

    def __repr__(self) -> str:  # keeps failure output readable
        inner = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"PipelineStats({inner})"


class FilterPipeline:
    """One filter pipeline instance over a NIC pair.

    ``filter_fn(packet) -> bool`` returns True to forward the packet; when
    the filter also exposes ``process_burst``, whole bursts are handed over
    in one call.  The burst size defaults to DPDK's conventional 32.
    """

    def __init__(
        self,
        filter_fn: FilterFn,
        nic_in: Optional[NIC] = None,
        nic_out: Optional[NIC] = None,
        burst_size: int = 32,
        ring_capacity: int = 4096,
        offload=None,
        offload_auditor=None,
    ) -> None:
        if burst_size <= 0:
            raise ValueError("burst_size must be positive")
        self.filter_fn = filter_fn
        #: Optional untrusted fast-drop tier (repro.dataplane.offload) and
        #: the auditor re-verdicting its sampled drop decisions.
        self.offload = offload
        self.offload_auditor = offload_auditor
        self.burst_fn: Optional[BurstFilterFn] = getattr(
            filter_fn, "process_burst", None
        )
        # Routed filters (FleetBurstFilter) flight-record their own bursts
        # with rule ids; recording here too would double every entry.
        self._filter_records_flight = bool(
            getattr(filter_fn, "records_flight", False)
        )
        self.nic_in = nic_in or NIC("in")
        self.nic_out = nic_out or NIC("out")
        self.burst_size = burst_size
        self.rx_ring: Ring[Packet] = Ring("rx", ring_capacity)
        self.tx_ring: Ring[Packet] = Ring("tx", ring_capacity)
        self.drop_ring: Ring[Packet] = Ring("drop", ring_capacity)
        self.stats = PipelineStats()
        # The conservation check is a registry invariant: `repro metrics`
        # (and any harness) can audit every live pipeline's books without
        # holding a reference to the pipeline itself.
        registry = obs.get_registry()
        self._burst_hist = registry.histogram(
            "vif_pipeline_filter_burst_seconds",
            help="Filter-stage verdict latency per burst (timing-enabled only)",
        )
        self._invariant_name = f"pipeline_conservation/{self.stats.pipeline_label}"
        registry.register_invariant(
            self._invariant_name, self._conservation_violation
        )
        self._offload_invariant_name = (
            f"pipeline_offload_conservation/{self.stats.pipeline_label}"
        )
        registry.register_invariant(
            self._offload_invariant_name, self._offload_conservation_violation
        )

    # -- stages ------------------------------------------------------------

    def rx_stage(self) -> int:
        """Poll the inbound NIC onto the RX ring; returns packets moved."""
        burst = self.nic_in.rx_burst(self.burst_size)
        moved = self.rx_ring.enqueue_bulk(burst)
        self.stats.received += len(burst)
        self.stats.rx_overflow_drops += len(burst) - moved
        return moved

    def _offload_stage(self, burst: List[Packet]):
        """Classify one burst through the untrusted tier.

        Unsampled tier drops leave the pipeline here (DROP ring, counted
        under ``offload_drops``); survivors continue to the filter with a
        per-packet sampled flag so the auditor can re-verdict the diverted
        slice against the enclave's ground truth.
        """
        from repro.dataplane.offload import TIER_DROP, TIER_SAMPLE

        classifications = self.offload.classify_burst(burst)
        kept: List[Packet] = []
        sampled_flags: List[bool] = []
        drops: List[Packet] = []
        for packet, cls in zip(burst, classifications):
            if cls == TIER_DROP:
                drops.append(packet)
            else:
                kept.append(packet)
                sampled_flags.append(cls == TIER_SAMPLE)
        stats = self.stats
        stats.offload_ingress += len(burst)
        stats.offload_drops += len(drops)
        n_sampled = sum(sampled_flags)
        stats.offload_sampled += n_sampled
        stats.offload_passed += len(kept) - n_sampled
        if drops:
            if self.offload_auditor is not None:
                self.offload_auditor.observe_drops(
                    len(drops),
                    flow_keys=[packet.five_tuple.src_ip_int for packet in drops],
                )
            # Same recycling story as the filter's DROP ring use: overflow
            # only loses accounting fidelity, never packets.
            self.drop_ring.enqueue_bulk(drops)
            if not self._filter_records_flight:
                recorder = obs.get_flight_recorder()
                if recorder.enabled:
                    round_id = obs.get_journal().current_round
                    recorder.record_batch(
                        (
                            packet.five_tuple.key().decode(),
                            None,
                            "offload-dropped",
                            round_id,
                        )
                        for packet in drops
                    )
        return kept, sampled_flags

    def filter_stage(self) -> int:
        """Run the offload tier (if any) and the filter over one burst;
        returns packets processed."""
        burst = self.rx_ring.dequeue_burst(self.burst_size)
        if not burst:
            return 0
        processed = len(burst)
        sampled_flags: Optional[List[bool]] = None
        if self.offload is not None:
            burst, sampled_flags = self._offload_stage(burst)
            if not burst:
                return processed
        timed = obs.timing_enabled()
        start = time.perf_counter() if timed else 0.0
        if self.burst_fn is not None:
            verdicts = list(self.burst_fn(burst))
            if len(verdicts) != len(burst):
                raise PipelineAccountingError(
                    f"burst filter returned {len(verdicts)} verdicts for "
                    f"{len(burst)} packets"
                )
        else:
            verdicts = [self.filter_fn(packet) for packet in burst]
        if timed:
            self._burst_hist.observe(time.perf_counter() - start)
        if not self._filter_records_flight:
            recorder = obs.get_flight_recorder()
            if recorder.enabled:
                round_id = obs.get_journal().current_round
                recorder.record_batch(
                    (
                        packet.five_tuple.key().decode(),
                        None,
                        UNROUTED
                        if verdict is UNROUTED
                        else ("allowed" if verdict else "dropped"),
                        round_id,
                    )
                    for packet, verdict in zip(burst, verdicts)
                )
        if sampled_flags is not None and self.offload_auditor is not None:
            auditor = self.offload_auditor
            leaks = 0
            for packet, verdict, sampled in zip(burst, verdicts, sampled_flags):
                if sampled:
                    # UNROUTED is truthy (forwarded): only a falsy verdict
                    # confirms the tier's drop decision.
                    auditor.observe_sample(
                        packet.five_tuple.src_ip_int, enclave_dropped=not verdict
                    )
                elif not verdict:
                    leaks += 1
            if leaks:
                auditor.observe_leak(leaks)
        forwards: List[Packet] = []
        forward_verdicts: List[Verdict] = []
        drops: List[Packet] = []
        for packet, allowed in zip(burst, verdicts):
            if allowed:
                forwards.append(packet)
                forward_verdicts.append(allowed)
            else:
                drops.append(packet)
        stats = self.stats
        if forwards:
            # Bulk-enqueue the forwarded sub-burst: the ring is FIFO and
            # stays full once full, so exactly the first ``moved`` packets
            # were accepted; classify those by verdict and account the rest
            # as TX overflow.  The filter's verdict stands for overflowed
            # packets (the enclave already logged them as forwarded) — the
            # loss is the pipeline's, and must be visible as such or the
            # outgoing-log audit reads as a bypass.
            moved = self.tx_ring.enqueue_bulk(forwards)
            unrouted = sum(1 for v in forward_verdicts[:moved] if v is UNROUTED)
            if unrouted:
                stats.unrouted += unrouted
            stats.allowed += moved - unrouted
            if moved < len(forwards):
                stats.tx_overflow_drops += len(forwards) - moved
        if drops:
            stats.dropped += len(drops)
            # The DROP ring recycles buffers; overflow there only loses
            # accounting fidelity, never packets, so use best-effort.
            self.drop_ring.enqueue_bulk(drops)
        return processed

    def tx_stage(self) -> int:
        """Drain the TX ring to the outbound NIC; returns packets moved."""
        burst = self.tx_ring.dequeue_burst(self.burst_size)
        return self.nic_out.tx(burst)

    # -- accounting ---------------------------------------------------------

    def _conservation_violation(self) -> Optional[str]:
        """The conservation predicate, registered as a registry invariant.

        Returns ``None`` when the books balance, else the violation text.
        """
        s = self.stats
        accounted = (
            s.allowed
            + s.dropped
            + s.unrouted
            + s.offload_drops
            + s.rx_overflow_drops
            + s.tx_overflow_drops
        )
        in_flight = len(self.rx_ring)
        if s.received == accounted + in_flight:
            return None
        return (
            f"pipeline lost packets untracked: received={s.received}, "
            f"allowed={s.allowed}, dropped={s.dropped}, "
            f"unrouted={s.unrouted}, offload_drops={s.offload_drops}, "
            f"rx_overflow={s.rx_overflow_drops}, "
            f"tx_overflow={s.tx_overflow_drops}, in_flight={in_flight}"
        )

    def _offload_conservation_violation(self) -> Optional[str]:
        """The offload stage's own conservation law: every packet entering
        the tier leaves as exactly one of drop / sampled redirect / pass."""
        s = self.stats
        accounted = s.offload_drops + s.offload_sampled + s.offload_passed
        if s.offload_ingress == accounted:
            return None
        return (
            f"offload stage lost packets untracked: "
            f"ingress={s.offload_ingress}, drops={s.offload_drops}, "
            f"sampled={s.offload_sampled}, passed={s.offload_passed}"
        )

    def check_conservation(self) -> None:
        """Enforce ``received == allowed + dropped + unrouted + overflow drops``.

        Packets sitting on the RX ring are received but not yet adjudicated,
        so they count as in-flight (TX-ring occupants are already counted in
        ``allowed``/``unrouted`` at enqueue time).  Raises
        :class:`PipelineAccountingError` on violation.  The same predicate
        is registered with the metrics registry, so ``repro metrics`` audits
        it fleet-wide.
        """
        violation = (
            self._conservation_violation() or self._offload_conservation_violation()
        )
        if violation is not None:
            raise PipelineAccountingError(violation)

    # -- driving -----------------------------------------------------------

    def run_once(self) -> None:
        """One polling iteration of each stage, in pipeline order."""
        self.rx_stage()
        self.filter_stage()
        self.tx_stage()

    def run_until_drained(self, max_iterations: int = 1_000_000) -> None:
        """Iterate until all queued packets have flowed through."""
        for _ in range(max_iterations):
            self.run_once()
            if (
                self.nic_in.rx_queue.empty
                and self.rx_ring.empty
                and self.tx_ring.empty
            ):
                break
        else:
            raise RuntimeError("pipeline failed to drain")
        self.check_conservation()

    def process(self, packets: List[Packet]) -> List[Packet]:
        """Convenience: push ``packets`` through and return the forwarded ones."""
        self.nic_in.receive_from_wire(packets)
        self.run_until_drained()
        return self.nic_out.drain_to_wire()

    def drain(self, max_iterations: int = 1_000_000) -> dict:
        """Graceful drain: flush every in-flight packet and settle the books.

        Serve mode calls this on shutdown — no new intake happens here, the
        stages just iterate until the inbound NIC queue and both rings are
        empty, then the conservation invariant is enforced.  Returns a drain
        report: the final stats plus the in-flight count (always 0 on
        success), so the caller can journal a lossless-shutdown record.
        """
        self.run_until_drained(max_iterations=max_iterations)
        return {
            "in_flight": len(self.rx_ring) + len(self.tx_ring),
            "forwarded_pending": len(self.nic_out.tx_queue),
            **self.stats.as_dict(),
        }
