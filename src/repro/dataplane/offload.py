"""Untrusted fast-drop offload tier with verifiable sampled auditing.

The paper's enclave filter is verifiable but pays SGX transition and EPC
costs on every packet.  Production deployments push the obvious bulk into
an *untrusted* pre-filter (XDP, kernel, or a programmable switch) ahead of
the trusted element — ROADMAP item 4's "biggest raw-speed lever".  The
open question is keeping those offloaded drops **auditable**: an untrusted
tier could silently drop legitimate traffic (censorship) or quietly skip
the work, and the paper's sketch-based bypass detection does not cover it.

This module closes that gap with three pieces:

* :class:`FastDropTier` — the untrusted pre-filter.  Its control plane
  keeps the eligible ``/32``-source DROP slice of the rule set in a
  :class:`repro.lookup.membership.MembershipTier` (the authoritative,
  memory-bounded store), and *compiles* it — exactly the way an XDP or
  switch deployment compiles rules into a flat hash map — into a plain
  ``src_int -> verdict`` dict with the sampling decision baked in per
  source.  The data path is therefore one exact-match probe per packet:
  no per-packet ECalls, no EPC pricing, and no per-packet digests (the
  one SHA-256 the membership tier pays moves to rule-install time).  A
  generation counter bumped on every applied
  :class:`~repro.serve.backends.RuleDelta` keeps desync observable.
* :class:`VerifiableSampler` — deterministically (seeded, flow-hash-keyed)
  diverts a configurable fraction of the tier's *drop* decisions into the
  enclave for re-verdict.  The tier's drop decisions are per-source (the
  blackhole-list shape), so the flow key of a drop decision is the source
  aggregate: every packet of a blocked source is either always or never
  sampled.  Because the sample predicate is a pure function of that key
  and a seed shared with the enclave, the enclave can verify *which*
  sources must have been diverted — the tier cannot choose which drops
  get audited.
* :class:`OffloadAuditor` — logs every sampled decision into a dedicated
  offload count-min sketch pair (claimed vs enclave-confirmed), scales the
  sampled disagreement count by ``1/rate``, attaches confidence bounds
  derived from the sampling rate, and scores each round through the
  existing :class:`~repro.obs.audit.AuditTimeline` as the new
  ``offload_bypass`` alert kind.  A tier that drops legitimate traffic is
  caught by re-verdict disagreement; a tier that hides drops from the
  sampler is caught by the sampling-shortfall bound.  Either way detection
  lands within the round count :func:`rounds_to_detection` predicts.

:class:`OffloadEngine` bundles the three behind any burst filter (the
serve backends use it); :class:`~repro.dataplane.pipeline.FilterPipeline`
wires the tier as a dedicated stage with conservation accounting
(``offload_drops + sampled_redirects + passed_to_enclave == ingress``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.dataplane.packet import Packet
from repro.errors import ConfigurationError
from repro.lookup.membership import MembershipRule, MembershipTier, TieredRuleStore
from repro.sketch.countmin import CountMinSketch
from repro.util.rng import stable_hash64

#: Tier verdicts for one packet (returned by :meth:`FastDropTier.classify`).
TIER_PASS = "pass"          #: continues to the enclave on the normal path
TIER_DROP = "offload-drop"  #: dropped by the tier, unsampled
TIER_SAMPLE = "sampled"     #: tier would drop it; diverted for re-verdict

#: Lie modes for the ``OFFLOAD_LIE`` chaos kind.
LIE_DROP_LEGIT = "drop-legit"   #: also drop a slice of legitimate flows
LIE_HIDE_DROPS = "hide-drops"   #: drop matching flows but never sample them
LIE_MODES = (LIE_DROP_LEGIT, LIE_HIDE_DROPS)

_U64 = 2**64
_U32 = 2**32


def rounds_to_detection(
    misdrops_per_round: int, sample_rate: float, confidence: float = 0.99
) -> int:
    """Rounds until a lying tier is caught with probability ``confidence``.

    A tier misdropping ``m`` packets per round evades one round's audit only
    if *none* of the ``m`` flows falls in the sampled region — probability
    ``(1 - rate)^m`` under the flow-hash model.  The smallest ``r`` with
    ``1 - (1 - rate)^(r*m) >= confidence`` is the detection bound the chaos
    tests assert against.
    """
    if misdrops_per_round < 1:
        raise ValueError("misdrops_per_round must be >= 1")
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError("sample_rate must be in (0, 1]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if sample_rate == 1.0:
        return 1
    per_round_miss = (1.0 - sample_rate) ** misdrops_per_round
    return max(1, math.ceil(math.log(1.0 - confidence) / math.log(per_round_miss)))


@dataclass(frozen=True)
class SamplingEstimate:
    """The ``1/rate`` scale-up of a sampled count, with confidence bounds.

    ``observed`` sampled events estimate ``observed / rate`` true events.
    The interval treats the sampled count as Poisson: the lower bound is
    the normal approximation (clamped at zero), the upper bound the exact
    one-sided Poisson bound's quadratic form — non-zero even at
    ``observed == 0``, which is what "we audited and saw nothing" is
    actually worth (the rule-of-three: ~``z²/rate`` undetected events are
    still consistent with a clean sample).
    """

    observed: int
    rate: float
    #: Two-sided z for the interval (2.576 ≈ 99%).
    z: float = 2.576

    def __post_init__(self) -> None:
        if self.observed < 0:
            raise ValueError("observed must be non-negative")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")

    @property
    def estimate(self) -> float:
        """The unbiased ``1/rate`` scale-up of the sampled count."""
        return self.observed / self.rate

    @property
    def ci_low(self) -> float:
        return max(0.0, self.observed - self.z * math.sqrt(self.observed)) / self.rate

    @property
    def ci_high(self) -> float:
        z2 = self.z * self.z
        return (
            self.observed + z2 / 2.0 + self.z * math.sqrt(self.observed + z2 / 4.0)
        ) / self.rate

    def to_payload(self) -> Dict[str, float]:
        return {
            "observed": self.observed,
            "rate": self.rate,
            "estimate": round(self.estimate, 3),
            "ci_low": round(self.ci_low, 3),
            "ci_high": round(self.ci_high, 3),
        }


class VerifiableSampler:
    """Deterministic flow-hash-keyed sampling of tier drop decisions.

    ``samples(key)`` is a pure function of the flow key, the seed, and the
    rate: every packet of a flow is either always or never sampled, and any
    party holding the seed can recompute the predicate — the enclave can
    therefore verify the tier diverted exactly the flows it had to.  No
    ambient RNG anywhere; the same seed replays the same sample set.
    """

    def __init__(self, rate: float, seed: str) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("sample rate must be within [0, 1]")
        self.rate = rate
        self.seed = seed
        self._salt = f"{seed}/offload-sample".encode("utf-8")
        self._threshold = int(rate * _U64)

    def samples(self, flow_key: bytes) -> bool:
        """True when this flow's drop decisions must be diverted."""
        return stable_hash64(flow_key, salt=self._salt) < self._threshold

    def samples_src(self, src_int: int) -> bool:
        """The predicate over a source aggregate (the drop-rule flow key).

        Canonical encoding: 4 big-endian bytes for IPv4 source integers,
        16 for IPv6 — fixed per version, so both sides of the audit derive
        the identical sample set from the identical rule.
        """
        width = 4 if src_int < _U32 else 16
        return self.samples(src_int.to_bytes(width, "big"))


@dataclass(frozen=True)
class OffloadLie:
    """One injected tier misbehavior (the ``OFFLOAD_LIE`` chaos kind).

    ``fraction`` selects flows deterministically by hash under ``seed`` —
    the same lie replays bit-for-bit — so detection-bound tests can count
    exactly how many misdrops each round offered the sampler.
    """

    mode: str
    fraction: float = 0.1
    seed: str = "offload-lie"

    def __post_init__(self) -> None:
        if self.mode not in LIE_MODES:
            raise ConfigurationError(
                f"unknown offload lie mode {self.mode!r} (expected one of {LIE_MODES})"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError("lie fraction must be in (0, 1]")

    def affects(self, flow_key: bytes) -> bool:
        salt = f"{self.seed}/{self.mode}".encode("utf-8")
        return stable_hash64(flow_key, salt=salt) < int(self.fraction * _U64)


class FastDropTier:
    """The untrusted pre-filter: a compiled exact-match map outside the enclave.

    Holds the eligible ``/32``-source DROP slice of the rule set in a
    :class:`MembershipTier` (Bloom + cuckoo, integer keys — the
    authoritative, memory-bounded store) and compiles it into a flat
    ``src_int -> TIER_DROP|TIER_SAMPLE`` map so the per-packet path is one
    dict probe with the sampling decision precomputed — the Python analog
    of a control plane loading rules into an XDP hash map.  The hash work
    (one SHA-256 per source for the membership structures, one for the
    sample predicate) is paid once per rule delta, never per packet.

    ``generation`` counts applied rule deltas; the enclave compares it
    against its own ruleset version to notice a tier that stopped taking
    updates (the auditor catches the verdict skew either way).
    """

    def __init__(
        self,
        sampler: VerifiableSampler,
        initial_capacity: int = 1024,
        label: str = "",
    ) -> None:
        self.sampler = sampler
        self.membership = MembershipTier(initial_capacity=initial_capacity)
        #: The compiled data path: blocked source -> precomputed verdict.
        self._compiled: Dict[int, str] = {}
        self.generation = 0
        self.label = label or obs.next_instance_label("offload")
        self._lie: Optional[OffloadLie] = None
        registry = obs.get_registry()
        self._rules_gauge = registry.gauge(
            "vif_offload_tier_rules",
            help="Rules currently held by the untrusted fast-drop tier",
            tier=self.label,
        )
        self._generation_gauge = registry.gauge(
            "vif_offload_tier_generation",
            help="Rule deltas applied to the fast-drop tier since start",
            tier=self.label,
        )

    # -- rule management ----------------------------------------------------

    @staticmethod
    def eligible(rule) -> bool:
        """True for rules the tier can evaluate (the blocklist shape)."""
        if isinstance(rule, MembershipRule):
            return True
        return TieredRuleStore.routes_to_membership(rule)

    def install_rules(self, rules: Sequence) -> int:
        """Install the eligible subset of ``rules``; returns how many."""
        applied = 0
        for rule in rules:
            if not self.eligible(rule):
                continue
            if rule.rule_id in self.membership:
                continue
            compact = (
                rule
                if isinstance(rule, MembershipRule)
                else MembershipRule.from_rule(rule)
            )
            self.membership.insert(compact)
            src = compact.src_int
            if src not in self._compiled:
                # Compile-time sampling: the predicate is a pure function
                # of (source, seed), so the verdict can be baked into the
                # map — the data path never hashes.
                self._compiled[src] = (
                    TIER_SAMPLE
                    if self.sampler.samples_src(src)
                    else TIER_DROP
                )
            applied += 1
        if applied:
            self._rules_gauge.set(self.membership.stats().entries)
        return applied

    def remove_rules(self, rule_ids: Sequence[int]) -> int:
        """Remove any of ``rule_ids`` the tier holds; returns how many."""
        applied = 0
        for rule_id in rule_ids:
            if rule_id in self.membership:
                rule = self.membership.get_rule(rule_id)
                self.membership.remove(rule_id)
                # Several rules may block the same source; only decompile
                # the map entry once the last of them is gone.
                if rule is not None and self.membership.query(rule.src_int) is None:
                    self._compiled.pop(rule.src_int, None)
                applied += 1
        if applied:
            self._rules_gauge.set(self.membership.stats().entries)
        return applied

    def apply_delta(self, delta) -> int:
        """Apply one :class:`RuleDelta`; bumps the generation regardless.

        The generation counts *deltas seen*, not rules changed: a delta
        whose rules are all trie-shaped still proves the tier's control
        channel is live, which is what the desync check cares about.
        """
        if delta.action == "install":
            applied = self.install_rules(delta.target_rules)
        else:
            applied = self.remove_rules(delta.target_rule_ids)
        self.note_delta()
        return applied

    def note_delta(self) -> None:
        """Record one applied delta (generation bump; gauge export)."""
        self.generation += 1
        self._generation_gauge.set(self.generation)

    @property
    def rule_count(self) -> int:
        return self.membership.stats().entries

    # -- chaos --------------------------------------------------------------

    def inject_lie(self, lie: OffloadLie) -> None:
        """Arm one misbehavior mode (chaos only); cleared with :meth:`clear_lie`."""
        self._lie = lie

    def clear_lie(self) -> None:
        self._lie = None

    @property
    def lying(self) -> bool:
        return self._lie is not None

    # -- classification -----------------------------------------------------

    def classify(self, packet: Packet) -> str:
        """One packet's tier verdict: :data:`TIER_PASS` / ``DROP`` / ``SAMPLE``."""
        five = packet.five_tuple
        verdict = (
            self._compiled.get(five.src_ip_int)
            if five.src_ip_version == 4
            else None
        )
        lie = self._lie
        if lie is None:
            return TIER_PASS if verdict is None else verdict
        if verdict is None:
            if lie.mode == LIE_DROP_LEGIT and lie.affects(five.key()):
                # The censoring tier: drop a deterministic slice of
                # legitimate flows while claiming they matched.  Sampling
                # still runs over the claimed drop's source aggregate.
                return (
                    TIER_SAMPLE
                    if self.sampler.samples_src(five.src_ip_int)
                    else TIER_DROP
                )
            return TIER_PASS
        if lie.mode == LIE_HIDE_DROPS:
            # The audit-evading tier: drop, but never divert the sampled
            # share — caught by the sampling-shortfall bound.
            return TIER_DROP
        return verdict

    def classify_burst(self, packets: Sequence[Packet]) -> List[str]:
        if self._lie is not None:
            return [self.classify(packet) for packet in packets]
        # Hot path: one dict probe per packet, locals hoisted.
        get = self._compiled.get
        out: List[str] = []
        append = out.append
        for packet in packets:
            five = packet.five_tuple
            verdict = get(five.src_ip_int) if five.src_ip_version == 4 else None
            append(TIER_PASS if verdict is None else verdict)
        return out


@dataclass(frozen=True)
class OffloadRoundReport:
    """One audited round of offload activity, ready for the timeline."""

    round_id: int
    drops: int          #: unsampled tier drops (the tier's claimed bulk)
    sampled: int        #: drop decisions diverted for re-verdict
    confirmed: int      #: sampled drops the enclave agreed with
    disagreed: int      #: sampled drops the enclave REFUSED to confirm
    leaked: int         #: enclave drops among tier-passed packets
    shortfall: bool     #: sampled *flows* fell below the binomial bound
    drop_flows: int     #: distinct flows behind the unsampled drops
    sampled_flows: int  #: distinct flows behind the sampled redirects
    expected_sampled: float  #: rate x distinct drop-decision flows
    misdrop_estimate: SamplingEstimate
    tier_generation: int

    @property
    def suspicious(self) -> bool:
        """True when this round is evidence of tier misbehavior."""
        return self.disagreed > 0 or self.shortfall

    @property
    def detail(self) -> str:
        est = self.misdrop_estimate
        return (
            f"disagreed={self.disagreed}/{self.sampled} sampled, "
            f"est_misdrops={est.estimate:.1f} "
            f"[{est.ci_low:.1f}, {est.ci_high:.1f}] @rate={est.rate}, "
            f"shortfall={self.shortfall}"
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "drops": self.drops,
            "sampled": self.sampled,
            "confirmed": self.confirmed,
            "disagreed": self.disagreed,
            "leaked": self.leaked,
            "shortfall": self.shortfall,
            "drop_flows": self.drop_flows,
            "sampled_flows": self.sampled_flows,
            "expected_sampled": round(self.expected_sampled, 3),
            "misdrop_estimate": self.misdrop_estimate.to_payload(),
            "tier_generation": self.tier_generation,
        }


class OffloadAuditor:
    """Re-verdicts the sampled slice and scores it against the enclave.

    Per round it keeps two count-min sketches over the sampled flows —
    what the tier *claimed* (every sampled drop) and what the enclave
    *confirmed* — plus exact counters.  ``close_round`` reduces them to an
    :class:`OffloadRoundReport`, feeds the
    :class:`~repro.obs.audit.AuditTimeline` (``offload_bypass`` alert
    kind), and resets for the next round.
    """

    def __init__(
        self,
        sampler: VerifiableSampler,
        timeline=None,
        sketch_depth: int = 2,
        sketch_width: int = 2048,
        family_seed: str = "vif-offload-audit",
        shortfall_z: float = 2.576,
        shortfall_min_expected: float = 8.0,
    ) -> None:
        self.sampler = sampler
        self.timeline = timeline
        self.shortfall_z = shortfall_z
        #: Below this many expected samples per round the shortfall test is
        #: statistically meaningless and stays quiet (small rounds would
        #: false-alert on ordinary variance).
        self.shortfall_min_expected = shortfall_min_expected
        self._sketch_args = (sketch_depth, sketch_width, family_seed)
        self.claimed_sketch = CountMinSketch(*self._sketch_args)
        self.confirmed_sketch = CountMinSketch(*self._sketch_args)
        self.reports: List[OffloadRoundReport] = []
        self._drops = 0
        self._sampled = 0
        self._confirmed = 0
        self._disagreed = 0
        self._leaked = 0
        self._drop_flows: set = set()
        self._sampled_flows: set = set()
        registry = obs.get_registry()
        self._rounds_c = registry.counter(
            "vif_offload_audit_rounds_total",
            help="Offload audit rounds closed",
        )
        self._disagreed_c = registry.counter(
            "vif_offload_disagreements_total",
            help="Sampled tier drops the enclave refused to confirm",
        )
        self._leaked_c = registry.counter(
            "vif_offload_leaked_drops_total",
            help="Enclave drops among packets the tier passed (tier misses)",
        )
        self._shortfall_c = registry.counter(
            "vif_offload_sample_shortfall_rounds_total",
            help="Rounds whose sampled count fell below the binomial bound",
        )
        self._estimate_g = registry.gauge(
            "vif_offload_estimated_misdrops",
            help="Last round's 1/rate-scaled estimate of tier misdrops",
        )

    # -- per-packet observations --------------------------------------------

    def observe_drops(
        self, count: int = 1, flow_keys: Sequence = ()
    ) -> None:
        """Unsampled tier drops (the claimed bulk), counted exactly.

        ``flow_keys`` (source integers — the drop-rule flow aggregate)
        feeds the per-round distinct-flow set the shortfall bound runs
        over: sampling is flow-hash-keyed, so each *distinct* flow is one
        Bernoulli(rate) trial — a packet-level binomial would overstate
        the confidence whenever flows repeat within a round.
        """
        self._drops += count
        self._drop_flows.update(flow_keys)

    def observe_sample(self, flow_key, enclave_dropped: bool) -> None:
        """One sampled drop decision, re-verdicted by the enclave.

        ``flow_key`` is the source integer (matching
        :meth:`observe_drops`); the sketches get its canonical byte
        encoding — the same one :meth:`VerifiableSampler.samples_src`
        hashes.
        """
        self._sampled += 1
        self._sampled_flows.add(flow_key)
        if isinstance(flow_key, int):
            key_bytes = flow_key.to_bytes(4 if flow_key < _U32 else 16, "big")
        else:
            key_bytes = flow_key
        self.claimed_sketch.update(key_bytes)
        if enclave_dropped:
            self._confirmed += 1
            self.confirmed_sketch.update(key_bytes)
        else:
            self._disagreed += 1
            self._disagreed_c.inc()

    def observe_leak(self, count: int = 1) -> None:
        """Enclave drops among tier-passed packets (informational: the
        attack still died in the enclave, but the tier missed it)."""
        self._leaked += count
        self._leaked_c.inc(count)

    # -- round closing ------------------------------------------------------

    def close_round(
        self, round_id: int, tier_generation: int = 0
    ) -> Tuple[OffloadRoundReport, List]:
        """Score the round, feed the timeline, reset.  Returns the report
        and any :class:`~repro.obs.audit.AuditAlert` objects fired."""
        rate = self.sampler.rate
        # Binomial lower bound over *distinct flows*: sampling is a pure
        # function of the flow key, so each distinct drop-decision flow is
        # one independent Bernoulli(rate) trial — a tier hiding drops from
        # the sampler delivers far fewer sampled flows than its claimed
        # drop-flow population demands.  (Packet counts would overstate
        # the confidence whenever flows repeat within a round.)
        trials = len(self._drop_flows | self._sampled_flows)
        expected = rate * trials
        shortfall = False
        if expected >= self.shortfall_min_expected:
            bound = expected - self.shortfall_z * math.sqrt(
                trials * rate * max(0.0, 1.0 - rate)
            )
            shortfall = len(self._sampled_flows) < bound
        estimate = SamplingEstimate(
            observed=self._disagreed, rate=max(rate, 1e-12)
        )
        report = OffloadRoundReport(
            round_id=round_id,
            drops=self._drops,
            sampled=self._sampled,
            confirmed=self._confirmed,
            disagreed=self._disagreed,
            leaked=self._leaked,
            shortfall=shortfall,
            drop_flows=len(self._drop_flows),
            sampled_flows=len(self._sampled_flows),
            expected_sampled=expected,
            misdrop_estimate=estimate,
            tier_generation=tier_generation,
        )
        self.reports.append(report)
        self._rounds_c.inc()
        self._estimate_g.set(estimate.estimate)
        if shortfall:
            self._shortfall_c.inc()
        alerts: List = []
        if self.timeline is not None:
            alerts = self.timeline.record_offload(round_id, report)
        self._reset_round()
        return report, alerts

    def _reset_round(self) -> None:
        self._drops = 0
        self._sampled = 0
        self._confirmed = 0
        self._disagreed = 0
        self._leaked = 0
        self._drop_flows = set()
        self._sampled_flows = set()
        self.claimed_sketch = CountMinSketch(*self._sketch_args)
        self.confirmed_sketch = CountMinSketch(*self._sketch_args)


class OffloadEngine:
    """Tier + sampler + auditor behind any burst filter (serve backends).

    Bound to the inner (enclave-path) burst callable with :meth:`bind`;
    ``process_burst`` then classifies through the tier, short-circuits the
    unsampled drops, re-verdicts the sampled slice through the inner
    filter, and keeps the ``vif_offload_*`` books.  Verdict alignment is
    positional, so the caller sees exactly one verdict per packet.
    """

    def __init__(self, tier: FastDropTier, auditor: OffloadAuditor) -> None:
        self.tier = tier
        self.auditor = auditor
        self._inner = None
        self._inner_burst = None
        registry = obs.get_registry()
        label = tier.label
        self._ingress_c = registry.counter(
            "vif_offload_ingress_total",
            help="Packets entering the fast-drop tier",
            tier=label,
        )
        self._drops_c = registry.counter(
            "vif_offload_drops_total",
            help="Packets dropped by the untrusted tier (unsampled)",
            tier=label,
        )
        self._sampled_c = registry.counter(
            "vif_offload_sampled_total",
            help="Tier drop decisions diverted to the enclave for re-verdict",
            tier=label,
        )
        self._passed_c = registry.counter(
            "vif_offload_passed_total",
            help="Packets the tier passed to the enclave path",
            tier=label,
        )

    def bind(self, inner) -> "OffloadEngine":
        """Attach the enclave path: an object exposing ``process_burst`` or
        a callable taking a packet sequence and returning verdicts."""
        self._inner = inner
        burst = getattr(inner, "process_burst", None)
        self._inner_burst = burst if burst is not None else inner
        return self

    @property
    def records_flight(self) -> bool:
        return bool(getattr(self._inner, "records_flight", False))

    def process_burst(self, packets: Sequence[Packet]) -> List[object]:
        if self._inner is None:
            raise ConfigurationError("offload engine is not bound to a filter")
        classifications = self.tier.classify_burst(packets)
        verdicts: List[object] = [False] * len(packets)
        to_enclave: List[Packet] = []
        positions: List[int] = []
        sampled_flags: List[bool] = []
        drop_keys: List[int] = []
        drop_append = drop_keys.append
        pass_append = to_enclave.append
        pos_append = positions.append
        flag_append = sampled_flags.append
        sampled = 0
        for i, (packet, cls) in enumerate(zip(packets, classifications)):
            if cls == TIER_DROP:
                drop_append(packet.five_tuple.src_ip_int)
            else:
                if cls == TIER_SAMPLE:
                    sampled += 1
                    flag_append(True)
                else:
                    flag_append(False)
                pass_append(packet)
                pos_append(i)
        drops = len(drop_keys)
        self._ingress_c.inc(len(packets))
        self._drops_c.inc(drops)
        self._sampled_c.inc(sampled)
        self._passed_c.inc(len(to_enclave) - sampled)
        if drops:
            self.auditor.observe_drops(drops, flow_keys=drop_keys)
        if to_enclave:
            inner_verdicts = list(self._inner_burst(to_enclave))
            if len(inner_verdicts) != len(to_enclave):
                raise RuntimeError(
                    f"inner filter returned {len(inner_verdicts)} verdicts "
                    f"for {len(to_enclave)} packets"
                )
            leaks = 0
            for pos, flagged, packet, verdict in zip(
                positions, sampled_flags, to_enclave, inner_verdicts
            ):
                verdicts[pos] = verdict
                if flagged:
                    # UNROUTED is truthy (forwarded) — only a falsy verdict
                    # is an enclave drop, i.e. a confirmation.
                    self.auditor.observe_sample(
                        packet.five_tuple.src_ip_int, enclave_dropped=not verdict
                    )
                elif not verdict:
                    leaks += 1
            if leaks:
                self.auditor.observe_leak(leaks)
        return verdicts

    # -- control plane ------------------------------------------------------

    def apply_delta(self, delta) -> int:
        return self.tier.apply_delta(delta)

    def inject_lie(self, lie: OffloadLie) -> None:
        self.tier.inject_lie(lie)

    def clear_lie(self) -> None:
        self.tier.clear_lie()

    def close_round(self, round_id: int) -> Tuple[OffloadRoundReport, List]:
        return self.auditor.close_round(
            round_id, tier_generation=self.tier.generation
        )
