"""Bounded single-producer/single-consumer rings (DPDK lockless rings).

The paper's pipeline passes packets between the RX, Filter and TX threads
through lockless rings (RX ring, DROP ring, TX ring).  The simulation is
single-threaded, so a ring is a bounded deque with DPDK-style bulk
enqueue/dequeue and drop-on-overflow accounting — overflowing a ring is how
back-pressure shows up in pipeline statistics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, TypeVar

from repro import obs
from repro.errors import ConfigurationError

T = TypeVar("T")


class RingOverflow(Exception):
    """Raised by :meth:`Ring.enqueue_strict` when the ring is full."""


class Ring(Generic[T]):
    """A bounded FIFO with bulk operations and overflow accounting."""

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ConfigurationError("ring capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.enqueued = 0
        self.dequeued = 0
        # Overflow drops are how back-pressure becomes visible, so they go
        # straight into the registry (labeled per ring instance).
        self._dropped = obs.get_registry().counter(
            "vif_ring_overflow_drops_total",
            help="Items dropped on a full ring (back-pressure)",
            ring=obs.next_instance_label(f"ring/{name}"),
        )

    @property
    def dropped(self) -> int:
        """Items lost to overflow (stored in the metrics registry)."""
        return self._dropped.value

    @dropped.setter
    def dropped(self, value: int) -> None:
        self._dropped.set(value)

    def enqueue(self, item: T) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if len(self._items) >= self.capacity:
            self._dropped.inc()
            return False
        self._items.append(item)
        self.enqueued += 1
        return True

    def enqueue_strict(self, item: T) -> None:
        """Enqueue or raise :class:`RingOverflow` (for control messages)."""
        if not self.enqueue(item):
            raise RingOverflow(f"ring {self.name!r} full at {self.capacity}")

    def enqueue_bulk(self, items: Iterable[T]) -> int:
        """Enqueue many; returns how many were accepted.

        Accepts up to the free capacity, then stops: once the ring is full
        every remaining item is dropped in one batched counter increment
        instead of paying a per-item :meth:`enqueue` call plus a per-item
        drop increment.  ``dropped`` totals are identical to the per-item
        path — only the call count changes.
        """
        if not isinstance(items, (list, tuple)):
            items = list(items)
        free = self.capacity - len(self._items)
        if free >= len(items):
            self._items.extend(items)
            accepted = len(items)
        else:
            accepted = max(free, 0)
            if accepted:
                self._items.extend(items[:accepted])
            self._dropped.inc(len(items) - accepted)
        self.enqueued += accepted
        return accepted

    def dequeue_burst(self, max_items: int = 32) -> List[T]:
        """Dequeue up to ``max_items`` (the DPDK burst pattern)."""
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        burst: List[T] = []
        while self._items and len(burst) < max_items:
            burst.append(self._items.popleft())
        self.dequeued += len(burst)
        return burst

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items
