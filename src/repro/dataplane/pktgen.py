"""Traffic generation (stand-in for pktgen-dpdk).

Generates reproducible packet streams from flow specifications: fixed-size
line-rate sweeps for the throughput figures, mixed attack/legitimate traffic
for the end-to-end examples, and lognormal per-rule rate profiles for the
optimizer workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.util.rng import deterministic_rng


@dataclass(frozen=True)
class FlowSpec_(object):
    """A generator-side flow: a five-tuple plus its share of the traffic.

    Named with a trailing underscore to avoid colliding with the *rule*
    pattern type :class:`repro.core.rules.FlowPattern`.
    """

    five_tuple: FiveTuple
    weight: float = 1.0
    packet_size: int = 64
    ingress_as: Optional[int] = None

    def make_packet(self) -> Packet:
        return Packet(
            five_tuple=self.five_tuple,
            size=self.packet_size,
            ingress_as=self.ingress_as,
        )


@dataclass
class TrafficProfile:
    """A weighted mixture of flows drawn deterministically."""

    flows: List[FlowSpec_] = field(default_factory=list)
    seed: int = 0

    def add_flow(self, flow: FlowSpec_) -> None:
        if flow.weight <= 0:
            raise ValueError("flow weight must be positive")
        self.flows.append(flow)

    def packets(self, count: int) -> Iterator[Packet]:
        """Yield ``count`` packets, flows sampled by weight."""
        if not self.flows:
            raise ValueError("traffic profile has no flows")
        rng = deterministic_rng(self.seed)
        weights = [f.weight for f in self.flows]
        for _ in range(count):
            flow = rng.choices(self.flows, weights=weights, k=1)[0]
            yield flow.make_packet()


class PacketGenerator:
    """Convenience builders for the traffic shapes the paper uses."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = deterministic_rng(seed)

    def uniform_flows(
        self,
        num_flows: int,
        dst_ip: str = "203.0.113.10",
        dst_port: int = 80,
        protocol: Protocol = Protocol.TCP,
        packet_size: int = 64,
        src_subnet_octets: Sequence[int] = (10, 0),
        ingress_ases: Sequence[int] = (),
    ) -> List[FlowSpec_]:
        """``num_flows`` distinct source hosts hitting one destination.

        Sources walk a /16 (then roll into the next /16) so flows are
        distinct; ingress ASes round-robin over ``ingress_ases`` when given.
        """
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        flows: List[FlowSpec_] = []
        a, b = src_subnet_octets
        for i in range(num_flows):
            hi, lo = divmod(i, 254)
            hi2, hi = divmod(hi, 254)
            src_ip = f"{a}.{(b + hi2) % 256}.{hi % 254 + 1}.{lo + 1}"
            five_tuple = FiveTuple(
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=1024 + (i % 60000),
                dst_port=dst_port,
                protocol=protocol,
            )
            ingress = ingress_ases[i % len(ingress_ases)] if ingress_ases else None
            flows.append(
                FlowSpec_(
                    five_tuple=five_tuple,
                    packet_size=packet_size,
                    ingress_as=ingress,
                )
            )
        return flows

    def constant_stream(
        self, flow: FlowSpec_, count: int
    ) -> List[Packet]:
        """``count`` identical-flow packets (single-flow line-rate test)."""
        return [flow.make_packet() for _ in range(count)]

    def mixed_profile(
        self,
        attack_flows: Sequence[FlowSpec_],
        legit_flows: Sequence[FlowSpec_],
        attack_fraction: float = 0.9,
    ) -> TrafficProfile:
        """A profile where ``attack_fraction`` of packets come from attackers."""
        if not 0.0 < attack_fraction < 1.0:
            raise ValueError("attack_fraction must be in (0, 1)")
        if not attack_flows or not legit_flows:
            raise ValueError("need at least one attack and one legit flow")
        profile = TrafficProfile(seed=self.seed)
        for flow in attack_flows:
            profile.add_flow(
                FlowSpec_(
                    five_tuple=flow.five_tuple,
                    weight=attack_fraction / len(attack_flows),
                    packet_size=flow.packet_size,
                    ingress_as=flow.ingress_as,
                )
            )
        for flow in legit_flows:
            profile.add_flow(
                FlowSpec_(
                    five_tuple=flow.five_tuple,
                    weight=(1.0 - attack_fraction) / len(legit_flows),
                    packet_size=flow.packet_size,
                    ingress_as=flow.ingress_as,
                )
            )
        return profile
