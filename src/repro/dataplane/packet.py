"""Packets and five-tuples.

VIF's auditable filter is deliberately stateless: the decision for a packet
depends only on the packet itself (paper equation 2), in practice on its
five-tuple ``(srcIP, dstIP, srcPort, dstPort, protocol)``.  The near
zero-copy optimization copies exactly ``<5T, size>`` plus a memory reference
into the enclave; :class:`Packet` mirrors that split — the five-tuple and
size are the "copied" part, the payload stays outside.

The five-tuple is the unit of all per-packet work (trie walk, sketch hash,
flow-table probe), so everything derivable from it is computed exactly once
at construction: the integer address values the compiled rule matcher
compares against, the canonical byte encodings the sketches hash, and the
tuple hash the flow table buckets by.  No per-packet code path re-parses an
address string.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.util.addrs import parse_ip


class Protocol(enum.IntEnum):
    """IP protocol numbers used by the reproduction."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass(frozen=True, order=True)
class FiveTuple:
    """An immutable flow identifier (the ``5T`` of the paper's Fig 7).

    Beyond the five declared fields, construction caches (as non-field
    attributes, invisible to equality/ordering):

    * ``src_ip_int`` / ``dst_ip_int`` — integer address values;
    * ``src_ip_version`` / ``dst_ip_version`` — IP version numbers;
    * the canonical :meth:`key` / :meth:`src_ip_key` byte encodings;
    * the tuple hash (:meth:`__hash__` is O(1) after construction).
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: Protocol

    def __post_init__(self) -> None:
        # Validate addresses eagerly so malformed tuples fail at creation,
        # not deep inside a sketch update.  parse_ip never constructs an
        # ipaddress object for dotted-quad IPv4.
        src_version, src_int = parse_ip(self.src_ip)
        dst_version, dst_int = parse_ip(self.dst_ip)
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port {port} out of range")
        set_ = object.__setattr__  # frozen dataclass: bypass the guard
        set_(self, "src_ip_version", src_version)
        set_(self, "src_ip_int", src_int)
        set_(self, "dst_ip_version", dst_version)
        set_(self, "dst_ip_int", dst_int)
        set_(
            self,
            "_key",
            (
                f"{self.src_ip}|{self.dst_ip}|{self.src_port}|"
                f"{self.dst_port}|{int(self.protocol)}"
            ).encode("ascii"),
        )
        set_(self, "_src_key", self.src_ip.encode("ascii"))
        set_(
            self,
            "_hash",
            hash(
                (
                    self.src_ip,
                    self.dst_ip,
                    self.src_port,
                    self.dst_port,
                    self.protocol,
                )
            ),
        )

    # Explicit __hash__ (the dataclass machinery keeps a user-defined one):
    # serves the precomputed field-tuple hash, so dict-heavy paths (flow
    # table, decision cache, burst coalescing) never re-hash two strings.
    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def key(self) -> bytes:
        """Canonical byte encoding used for hashing (sketches, hash filters)."""
        return self._key  # type: ignore[attr-defined]

    def reversed(self) -> "FiveTuple":
        """The reverse direction of this flow (used by tests/examples)."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def src_ip_key(self) -> bytes:
        """Key for the per-source-IP incoming log."""
        return self._src_key  # type: ignore[attr-defined]

    def __str__(self) -> str:
        cached = self.__dict__.get("_str")
        if cached is None:
            cached = (
                f"{self.protocol.name} {self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port}"
            )
            object.__setattr__(self, "_str", cached)
        return cached


_packet_ids = count()


@dataclass
class Packet:
    """A simulated packet.

    ``size`` is the full frame size in bytes (what pktgen reports and what
    the throughput math uses).  ``payload`` stands in for the bytes that stay
    in the untrusted memory pool under the near zero-copy design; the filter
    never reads it.  ``ingress_as`` records which neighbor AS handed the
    packet to the filtering network — the neighbor-side bypass detection
    groups packets by it.
    """

    five_tuple: FiveTuple
    size: int = 64
    payload: bytes = b""
    ingress_as: Optional[int] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size < 64 or self.size > 9216:
            raise ValueError(f"frame size {self.size} outside [64, 9216]")

    @property
    def src_ip(self) -> str:
        return self.five_tuple.src_ip

    @property
    def dst_ip(self) -> str:
        return self.five_tuple.dst_ip

    def clone(self) -> "Packet":
        """A copy with a fresh packet id (used by injection attacks)."""
        return Packet(
            five_tuple=self.five_tuple,
            size=self.size,
            payload=self.payload,
            ingress_as=self.ingress_as,
        )
