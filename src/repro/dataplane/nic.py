"""A simulated NIC port with RX/TX queues and counters.

Stands in for the 10 GbE Intel X540 cards of the paper's testbed.  The NIC
does no policy — it moves packets between "the wire" (lists handed in/out by
the harness) and its queues, and keeps the counters (received, transmitted,
dropped-on-full) that the throughput harness and bypass audits read.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro import obs
from repro.dataplane.packet import Packet
from repro.dataplane.rings import Ring
from repro.util.units import GBPS


def _port_counter(field: str, doc: str):
    def getter(self: "PortStats") -> int:
        return self._counters[field].value

    def setter(self: "PortStats", value: int) -> None:
        self._counters[field].set(value)

    return property(getter, setter, doc=doc)


class PortStats:
    """Per-port counters, stored in the metrics registry.

    Series are named ``vif_nic_<field>_total`` and labeled by port, so the
    victim-side bypass audits (NIC RX vs enclave logs vs NIC TX) read off
    the same exposition as everything else.
    """

    FIELDS = ("rx_packets", "rx_bytes", "rx_dropped", "tx_packets", "tx_bytes")

    _HELP = {
        "rx_packets": "Packets arriving from the wire",
        "rx_bytes": "Bytes arriving from the wire",
        "rx_dropped": "Packets dropped on a full RX queue",
        "tx_packets": "Packets transmitted to the wire",
        "tx_bytes": "Bytes transmitted to the wire",
    }

    def __init__(self, port: Optional[str] = None) -> None:
        label = obs.next_instance_label(f"nic/{port or 'port'}")
        registry = obs.get_registry()
        self._counters = {
            field: registry.counter(
                f"vif_nic_{field}_total", help=self._HELP[field], port=label
            )
            for field in self.FIELDS
        }

    rx_packets = _port_counter("rx_packets", _HELP["rx_packets"])
    rx_bytes = _port_counter("rx_bytes", _HELP["rx_bytes"])
    rx_dropped = _port_counter("rx_dropped", _HELP["rx_dropped"])
    tx_packets = _port_counter("tx_packets", _HELP["tx_packets"])
    tx_bytes = _port_counter("tx_bytes", _HELP["tx_bytes"])

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"PortStats({inner})"


class NIC:
    """One port: an RX queue filled from the wire, a TX queue drained to it."""

    def __init__(
        self,
        name: str,
        link_bps: float = 10 * GBPS,
        rx_queue_size: int = 4096,
        tx_queue_size: int = 4096,
    ) -> None:
        self.name = name
        self.link_bps = link_bps
        self.rx_queue: Ring[Packet] = Ring(f"{name}/rx", rx_queue_size)
        self.tx_queue: Ring[Packet] = Ring(f"{name}/tx", tx_queue_size)
        self.stats = PortStats(port=name)

    def receive_from_wire(self, packets: Iterable[Packet]) -> int:
        """DMA packets from the wire into the RX queue; returns accepted count."""
        accepted = 0
        for packet in packets:
            self.stats.rx_packets += 1
            self.stats.rx_bytes += packet.size
            if self.rx_queue.enqueue(packet):
                accepted += 1
            else:
                self.stats.rx_dropped += 1
        return accepted

    def rx_burst(self, max_items: int = 32) -> List[Packet]:
        """Poll the RX queue (what the RX thread does in its loop)."""
        return self.rx_queue.dequeue_burst(max_items)

    def tx(self, packets: Iterable[Packet]) -> int:
        """Hand packets to the TX queue; returns accepted count."""
        accepted = 0
        for packet in packets:
            if self.tx_queue.enqueue(packet):
                accepted += 1
        return accepted

    def drain_to_wire(self) -> List[Packet]:
        """Transmit everything queued (the harness is 'the wire')."""
        out: List[Packet] = []
        while True:
            burst = self.tx_queue.dequeue_burst(64)
            if not burst:
                break
            out.extend(burst)
        for packet in out:
            self.stats.tx_packets += 1
            self.stats.tx_bytes += packet.size
        return out
