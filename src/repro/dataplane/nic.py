"""A simulated NIC port with RX/TX queues and counters.

Stands in for the 10 GbE Intel X540 cards of the paper's testbed.  The NIC
does no policy — it moves packets between "the wire" (lists handed in/out by
the harness) and its queues, and keeps the counters (received, transmitted,
dropped-on-full) that the throughput harness and bypass audits read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.dataplane.packet import Packet
from repro.dataplane.rings import Ring
from repro.util.units import GBPS


@dataclass
class PortStats:
    """Counter snapshot for one port."""

    rx_packets: int = 0
    rx_bytes: int = 0
    rx_dropped: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0


class NIC:
    """One port: an RX queue filled from the wire, a TX queue drained to it."""

    def __init__(
        self,
        name: str,
        link_bps: float = 10 * GBPS,
        rx_queue_size: int = 4096,
        tx_queue_size: int = 4096,
    ) -> None:
        self.name = name
        self.link_bps = link_bps
        self.rx_queue: Ring[Packet] = Ring(f"{name}/rx", rx_queue_size)
        self.tx_queue: Ring[Packet] = Ring(f"{name}/tx", tx_queue_size)
        self.stats = PortStats()

    def receive_from_wire(self, packets: Iterable[Packet]) -> int:
        """DMA packets from the wire into the RX queue; returns accepted count."""
        accepted = 0
        for packet in packets:
            self.stats.rx_packets += 1
            self.stats.rx_bytes += packet.size
            if self.rx_queue.enqueue(packet):
                accepted += 1
            else:
                self.stats.rx_dropped += 1
        return accepted

    def rx_burst(self, max_items: int = 32) -> List[Packet]:
        """Poll the RX queue (what the RX thread does in its loop)."""
        return self.rx_queue.dequeue_burst(max_items)

    def tx(self, packets: Iterable[Packet]) -> int:
        """Hand packets to the TX queue; returns accepted count."""
        accepted = 0
        for packet in packets:
            if self.tx_queue.enqueue(packet):
                accepted += 1
        return accepted

    def drain_to_wire(self) -> List[Packet]:
        """Transmit everything queued (the harness is 'the wire')."""
        out: List[Packet] = []
        while True:
            burst = self.tx_queue.dequeue_burst(64)
            if not burst:
                break
            out.extend(burst)
        for packet in out:
            self.stats.tx_packets += 1
            self.stats.tx_bytes += packet.size
        return out
