"""Traffic traces: record and replay packet waves as JSON lines.

Operators (and bug reports) need reproducible workloads: a trace file
captures a packet stream — five-tuples, sizes, ingress ASes — in a stable,
diff-friendly text format.  Every field round-trips exactly, so a replayed
trace drives the filter to bit-identical verdicts (the decisions are pure
functions of the packets).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.dataplane.packet import FiveTuple, Packet, Protocol
from repro.errors import ConfigurationError

_FORMAT = "vif-trace-v1"


def packet_to_record(packet: Packet) -> dict:
    """JSON-safe encoding of one packet (payload bytes are not traced)."""
    return {
        "src_ip": packet.five_tuple.src_ip,
        "dst_ip": packet.five_tuple.dst_ip,
        "src_port": packet.five_tuple.src_port,
        "dst_port": packet.five_tuple.dst_port,
        "protocol": int(packet.five_tuple.protocol),
        "size": packet.size,
        "ingress_as": packet.ingress_as,
    }


def packet_from_record(record: dict) -> Packet:
    """Inverse of :func:`packet_to_record` (fresh packet id)."""
    return Packet(
        five_tuple=FiveTuple(
            src_ip=str(record["src_ip"]),
            dst_ip=str(record["dst_ip"]),
            src_port=int(record["src_port"]),
            dst_port=int(record["dst_port"]),
            protocol=Protocol(int(record["protocol"])),
        ),
        size=int(record["size"]),
        ingress_as=record.get("ingress_as"),
    )


def save_trace(path: Union[str, Path], packets: Iterable[Packet]) -> int:
    """Write ``packets`` to ``path`` as JSON lines; returns the count.

    The first line is a header carrying the format tag, so loaders can
    reject files that are not traces before parsing anything else.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({"format": _FORMAT}) + "\n")
        for packet in packets:
            fh.write(json.dumps(packet_to_record(packet), sort_keys=True) + "\n")
            count += 1
    return count


def iter_trace(path: Union[str, Path]) -> Iterator[Packet]:
    """Stream packets out of a trace file (constant memory)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not a VIF trace: {exc}") from exc
        if header.get("format") != _FORMAT:
            raise ConfigurationError(
                f"{path} has format {header.get('format')!r}, expected {_FORMAT!r}"
            )
        for line_number, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                yield packet_from_record(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: bad trace record: {exc}"
                ) from exc


def load_trace(path: Union[str, Path]) -> List[Packet]:
    """Load a whole trace into memory."""
    return list(iter_trace(path))
