"""The experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments import figures


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    key: str
    paper_ref: str
    description: str
    run: Callable[[], str]


@dataclass(frozen=True)
class ExperimentResult:
    key: str
    paper_ref: str
    output: str


EXPERIMENTS: Dict[str, Experiment] = {
    e.key: e
    for e in [
        Experiment(
            "fig3",
            "Fig 3a/3b",
            "single-filter throughput and enclave memory vs #rules",
            figures.fig3_rule_scaling,
        ),
        Experiment(
            "fig8",
            "Fig 8 + Fig 13",
            "throughput vs packet size for native / full-copy / zero-copy",
            figures.fig8_13_packet_size,
        ),
        Experiment(
            "latency",
            "Section V-B",
            "average latency at 8 Gb/s constant load",
            figures.latency_table,
        ),
        Experiment(
            "fig14",
            "Fig 14",
            "throughput vs fraction of SHA-256-hashed packets",
            figures.fig14_hash_ratio,
        ),
        Experiment(
            "table1",
            "Table I",
            "exact ILP (first incumbent) vs greedy running time",
            figures.table1_ilp_vs_greedy,
        ),
        Experiment(
            "gap",
            "Section V-C",
            "greedy optimality gap on small instances",
            figures.optimality_gap,
        ),
        Experiment(
            "fig9",
            "Fig 9",
            "greedy runtime scaling, 500 Gb/s lognormal workload",
            figures.fig9_greedy_scaling,
        ),
        Experiment(
            "table2",
            "Table II",
            "batch insertion into a warm multi-bit trie",
            figures.table2_batch_insert,
        ),
        Experiment(
            "fig11",
            "Fig 11",
            "attack sources handled by Top-n regional VIF IXPs",
            figures.fig11_ixp_coverage,
        ),
        Experiment(
            "table3",
            "Table III",
            "top five IXPs per region by member count",
            figures.table3_top_ixps,
        ),
        Experiment(
            "attestation",
            "Appendix G",
            "remote attestation latency",
            figures.attestation_timing,
        ),
        Experiment(
            "cost",
            "Section VI-D",
            "500 Gb/s deployment cost analysis",
            figures.cost_analysis,
        ),
        Experiment(
            "bypass",
            "Section III-B",
            "bypass-attack detection matrix (not a figure; the core claim)",
            figures.bypass_matrix,
        ),
        Experiment(
            "scaleout",
            "Abstract / IV-B",
            "fleet-size validation around the feasibility boundary",
            figures.scaleout_validation,
        ),
        Experiment(
            "isp-baseline",
            "Section VIII-A",
            "IXP deployment vs SENSS-style transit-ISP deployment",
            figures.isp_baseline,
        ),
    ]
}


def list_experiments() -> List[Experiment]:
    """All experiments in registry order."""
    return list(EXPERIMENTS.values())


def get_experiment(key: str) -> Experiment:
    try:
        return EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {key!r}; known: {known}") from None


def run_experiment(key: str) -> ExperimentResult:
    """Run one experiment and return its printable result."""
    experiment = get_experiment(key)
    return ExperimentResult(
        key=experiment.key,
        paper_ref=experiment.paper_ref,
        output=experiment.run(),
    )


def run_all() -> List[ExperimentResult]:
    """Run every experiment (minutes, not hours)."""
    return [run_experiment(key) for key in EXPERIMENTS]
