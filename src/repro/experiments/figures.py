"""Generators for each paper table/figure (shared by CLI and benchmarks).

Every function is deterministic and returns the formatted table as a
string.  Sizes default to laptop-scale (seconds per experiment); the
benchmark suite drives the same code with pass/fail thresholds.
"""

from __future__ import annotations

import time
from typing import List

from repro.adversary import (
    BypassConfig,
    mirai_flood_flows,
    run_bypass_scenario,
)
from repro.core.rules import Action, FilterRule, FlowPattern
from repro.dataplane.cost_model import ImplementationVariant
from repro.dataplane.packet import Protocol
from repro.dataplane.throughput import PAPER_PACKET_SIZES, ThroughputHarness
from repro.deploy import CapacityPlanner, deployment_cost
from repro.interdomain import (
    dns_resolver_population,
    generate_internet,
    ixp_coverage,
    mirai_bot_population,
)
from repro.interdomain.simulation import choose_victims, coverage_rows
from repro.lookup.multibit_trie import MultiBitTrie
from repro.optim.greedy import greedy_solve
from repro.optim.ilp import BranchAndBoundSolver
from repro.optim.problem import RuleDistributionProblem
from repro.tee.attestation import PAPER_ATTESTATION_TIMING
from repro.util.stats import lognormal_bandwidths
from repro.util.tables import format_table
from repro.util.units import GBPS


def fig3_rule_scaling() -> str:
    harness = ThroughputHarness()
    counts = [100, 500, 1000, 2000, 3000, 4000, 5000, 6000, 8000, 10000]
    mpps = harness.rule_count_sweep(counts)
    mb = harness.memory_sweep(counts)
    rows = [
        [k, round(m, 2), round(f, 1), "yes" if f > 92 else "no"]
        for k, m, f in zip(counts, mpps, mb)
    ]
    return format_table(
        ["rules", "throughput (Mpps)", "enclave memory (MB)", "past EPC"],
        rows,
        title="Fig 3a/3b — filter throughput & memory vs #rules (64 B packets)",
    )


def fig8_13_packet_size() -> str:
    harness = ThroughputHarness()
    reports = harness.all_variants_sweep(3000)
    rows = []
    for i, size in enumerate(PAPER_PACKET_SIZES):
        row: List[object] = [size]
        for variant in (
            ImplementationVariant.NATIVE,
            ImplementationVariant.SGX_FULL_COPY,
            ImplementationVariant.SGX_ZERO_COPY,
        ):
            report = reports[variant]
            row.append(f"{report.gbps[i]:.1f} / {report.mpps[i]:.2f}")
        rows.append(row)
    return format_table(
        ["size (B)", "native Gb/s / Mpps", "full-copy", "near zero-copy"],
        rows,
        title="Fig 8 + Fig 13 — throughput vs packet size, 3,000 rules",
    )


def latency_table() -> str:
    harness = ThroughputHarness()
    report = harness.latency_sweep()
    paper = {128: 34, 256: 38, 512: 52, 1024: 80, 1500: 107}
    rows = [
        [size, round(us, 1), paper[size]]
        for size, us in zip(report.packet_sizes, report.latency_us)
    ]
    return format_table(
        ["size (B)", "model latency (us)", "paper (us)"],
        rows,
        title="Section V-B — average latency at 8 Gb/s constant load",
    )


def fig14_hash_ratio() -> str:
    harness = ThroughputHarness()
    ratios = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0]
    series = harness.hash_ratio_sweep(ratios)
    rows = [
        [r] + [round(series[s][i], 2) for s in sorted(series)]
        for i, r in enumerate(ratios)
    ]
    return format_table(
        ["hash ratio"] + [f"{s} B" for s in sorted(series)],
        rows,
        title="Fig 14 — throughput (Gb/s) vs fraction of hashed packets",
    )


def table1_ilp_vs_greedy(ks=(50, 100, 200)) -> str:
    rows = []
    for k in ks:
        bandwidths = lognormal_bandwidths(k, max(10, k // 10) * GBPS, seed=k)
        problem = RuleDistributionProblem(bandwidths=bandwidths)
        start = time.perf_counter()
        greedy_solve(problem)
        greedy_s = time.perf_counter() - start
        solver = BranchAndBoundSolver(
            stop_at_first_incumbent=True,
            use_rounding_heuristic=False,
            node_limit=100_000,
            time_limit_s=600,
        )
        start = time.perf_counter()
        solver.solve(problem)
        ilp_s = time.perf_counter() - start
        rows.append(
            [k, f"{ilp_s:.2f}", f"{greedy_s:.4f}", f"{ilp_s / greedy_s:.0f}x"]
        )
    return format_table(
        ["k rules", "ILP first-incumbent (s)", "greedy (s)", "ratio"],
        rows,
        title=(
            "Table I (scaled instances) — paper @k=5,000..15,000: "
            "210..1,615 s vs 0.31..0.73 s"
        ),
    )


def optimality_gap() -> str:
    rows = []
    gaps = []
    for k in range(10, 16):
        bandwidths = lognormal_bandwidths(k, 25 * GBPS, seed=k)
        problem = RuleDistributionProblem(bandwidths=bandwidths, headroom=0.2)
        exact = BranchAndBoundSolver(node_limit=5000, time_limit_s=300).solve(problem)
        greedy = greedy_solve(problem)
        gap = (greedy.objective() - exact.objective) / exact.objective
        gaps.append(gap)
        rows.append(
            [k, f"{exact.objective:.4e}", f"{greedy.objective():.4e}", f"{gap:.1%}"]
        )
    rows.append(["avg", "", "", f"{sum(gaps) / len(gaps):.1%}"])
    return format_table(
        ["k", "exact optimum", "greedy", "gap"],
        rows,
        title="Section V-C — greedy vs exact optimum (paper: 5.2% average)",
    )


def fig9_greedy_scaling(ks=(10_000, 20_000, 40_000)) -> str:
    rows = []
    for k in ks:
        bandwidths = lognormal_bandwidths(k, 500 * GBPS, seed=k)
        problem = RuleDistributionProblem(bandwidths=bandwidths)
        start = time.perf_counter()
        allocation = greedy_solve(problem)
        elapsed = time.perf_counter() - start
        rows.append([k, f"{elapsed:.2f}", len(allocation.assignments)])
    return format_table(
        ["k rules", "greedy time (s)", "enclaves"],
        rows,
        title="Fig 9 — greedy runtime at 500 Gb/s (paper: <= 40 s at 150 K)",
    )


def table2_batch_insert() -> str:
    trie = MultiBitTrie()
    trie.insert_batch(
        FilterRule(
            rule_id=i,
            pattern=FlowPattern(dst_prefix=f"10.{i % 250}.{i // 250}.0/24"),
            action=Action.DROP,
        )
        for i in range(3000)
    )
    paper = {1: 50, 10: 52, 100: 53, 1000: 75}
    rows = []
    next_id = 10_000
    for batch_size in (1, 10, 100, 1000):
        batch = []
        for i in range(batch_size):
            n = next_id + i
            batch.append(
                FilterRule(
                    rule_id=n,
                    pattern=FlowPattern(
                        src_prefix=f"172.16.{(n // 250) % 250}.{n % 250}/32",
                        dst_prefix="203.0.113.7/32",
                        src_ports=(1024 + n % 60000, 1024 + n % 60000),
                        dst_ports=(80, 80),
                        protocol=Protocol.TCP,
                    ),
                    action=Action.DROP,
                )
            )
        next_id += batch_size
        start = time.perf_counter()
        trie.insert_batch(batch)
        elapsed_ms = (time.perf_counter() - start) * 1000
        rows.append([batch_size, f"{elapsed_ms:.3f}", paper[batch_size]])
    return format_table(
        ["batch size", "measured (ms)", "paper (ms)"],
        rows,
        title="Table II — batch insert into a warm (3,000-rule) lookup trie",
    )


def fig11_ixp_coverage(num_victims: int = 60) -> str:
    graph, ixps = generate_internet()
    victims = choose_victims(graph, num_victims)
    sections = []
    for label, population in (
        ("vulnerable DNS resolvers", dns_resolver_population(graph)),
        ("Mirai botnet", mirai_bot_population(graph)),
    ):
        result = ixp_coverage(graph, ixps, victims, population)
        sections.append(
            format_table(
                ["selection", "p5", "p25", "median", "p75", "p95"],
                coverage_rows(result),
                title=f"Fig 11 — attack sources handled by VIF IXPs ({label})",
            )
        )
    return "\n\n".join(sections)


def table3_top_ixps() -> str:
    _, ixps = generate_internet()
    regions = sorted({ixp.region for ixp in ixps})
    ranked = {
        region: sorted(
            (x for x in ixps if x.region == region), key=lambda x: -x.member_count
        )
        for region in regions
    }
    rows = [
        [rank + 1] + [str(ranked[r][rank].member_count) for r in regions]
        for rank in range(5)
    ]
    return format_table(
        ["rank"] + regions,
        rows,
        title="Table III analogue — member counts of the top-5 IXPs per region",
    )


def attestation_timing() -> str:
    timing = PAPER_ATTESTATION_TIMING
    return format_table(
        ["metric", "value"],
        [
            ["platform work (ms)", timing.platform_work_s * 1000],
            ["IAS RTT (ms)", timing.ias_rtt_s * 1000],
            ["end-to-end (s)", round(timing.end_to_end_s(), 3)],
            ["paper end-to-end (s)", 3.04],
        ],
        title="Appendix G — remote attestation latency (calibrated model)",
    )


def cost_analysis() -> str:
    report = deployment_cost()
    plan = CapacityPlanner(headroom=0.0).plan(500.0, total_rules=150_000)
    return format_table(
        ["metric", "value"],
        report.as_rows()
        + [["racks", plan.num_racks],
           ["attestation setup (s)", round(plan.setup_attestation_s, 1)]],
        title="Section VI-D — 500 Gb/s deployment cost",
    )


def scaleout_validation(total_gbps: float = 50.0, num_rules: int = 15_000) -> str:
    from repro.deploy.scaleout import ScaleOutPlanner

    planner = ScaleOutPlanner()
    minimum = planner.minimum_fleet(total_gbps, num_rules)
    sizes = [max(1, minimum - 2), max(1, minimum - 1), minimum,
             minimum + 1, minimum + 2]
    assessments = planner.sweep(sorted(set(sizes)), total_gbps, num_rules)
    return format_table(
        ["enclaves", "feasible", "peak bw load", "peak rule load", "reason"],
        [a.as_row() for a in assessments],
        title=(
            f"Scale-out validation — {total_gbps:.0f} Gb/s, {num_rules} rules "
            "(paper headline: 500 Gb/s / 150 K rules on ~50 filters)"
        ),
    )


def isp_baseline(num_victims: int = 40) -> str:
    from repro.interdomain.baselines import (
        isp_deployment_coverage,
        top_transit_ases,
    )
    from repro.interdomain.simulation import choose_victims as _choose

    graph, ixps = generate_internet()
    victims = _choose(graph, num_victims)
    sources = dns_resolver_population(graph)
    vif = ixp_coverage(graph, ixps, victims, sources, top_levels=(1, 5))
    isp = isp_deployment_coverage(
        graph, top_transit_ases(graph, 10), victims, sources,
        cumulative_levels=(1, 3, 5, 10),
    )
    rows = [
        ["VIF @ top-1 IXP/region (5 sites)",
         round(vif.summary(1).median, 3), round(vif.summary(1).p75, 3)],
        ["VIF @ top-5 IXPs/region (25 sites)",
         round(vif.summary(5).median, 3), round(vif.summary(5).p75, 3)],
    ] + [
        [f"filters @ top-{n} transit ISPs",
         round(isp.summary(n).median, 3), round(isp.summary(n).p75, 3)]
        for n in (1, 3, 5, 10)
    ]
    return format_table(
        ["deployment", "median coverage", "p75"],
        rows,
        title="§VIII context — IXP deployment vs SENSS-style transit ISPs",
    )


def bypass_matrix() -> str:
    rule = FilterRule(
        rule_id=1,
        pattern=FlowPattern(
            dst_prefix="203.0.113.0/24", dst_ports=(80, 80), protocol=Protocol.TCP
        ),
        p_allow=0.5,
        requested_by="victim.example",
    )
    flows = mirai_flood_flows(300, ingress_ases=(64500, 64501))
    cases = [
        ("honest execution", None),
        ("drop after filtering (30%)", BypassConfig(drop_after_filtering=0.3)),
        ("injection after filtering (50%)", BypassConfig(inject_after_filtering=0.5)),
        ("drop before filtering (AS64500, 40%)",
         BypassConfig(drop_before_filtering={64500: 0.4})),
        ("skip filter for 30% (Goal 2)", BypassConfig(skip_filter_fraction=0.3)),
    ]
    rows = []
    for label, bypass in cases:
        result = run_bypass_scenario([rule], flows, bypass=bypass)
        victim = ", ".join(result.victim_evidence.suspected_attacks) or "-"
        neighbors = (
            "; ".join(
                f"AS{asn}: {', '.join(e.suspected_attacks)}"
                for asn, e in result.neighbor_evidence.items()
                if not e.clean
            )
            or "-"
        )
        rows.append([label, "YES" if result.detected else "no", victim, neighbors])
    return format_table(
        ["attack", "detected", "victim sees", "neighbors see"],
        rows,
        title="Section III-B — bypass-attack detection matrix",
    )
