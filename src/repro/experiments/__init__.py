"""Named, runnable reproductions of every table and figure.

Each experiment is a zero-argument callable returning the printable table
for that paper artifact.  The registry backs both the CLI
(``python -m repro.cli``) and EXPERIMENTS.md; the benchmark suite asserts
the same claims with pass/fail thresholds.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_all",
    "run_experiment",
]
