"""Scale-out validation: can N enclaves really carry this attack?

The paper's scalability headline — "handle larger traffic volume (e.g.,
500 Gb/s) and more complex filtering operations (e.g., 150,000 filter
rules) by parallelizing the TEE-based filters" with ~50 enclaves — reduces
to a feasibility question over the Appendix C constraints.  This module
answers it constructively: given a fleet size, it checks the two capacity
bounds, runs the greedy to produce a concrete allocation, and reports the
loading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, InfeasibleError
from repro.lookup.memory_model import EnclaveMemoryModel, PAPER_MEMORY_MODEL
from repro.optim.greedy import greedy_solve
from repro.optim.problem import Allocation, RuleDistributionProblem
from repro.optim.validation import validate_allocation
from repro.util.stats import lognormal_bandwidths
from repro.util.units import GBPS


@dataclass(frozen=True)
class ScaleOutAssessment:
    """Verdict for one (fleet size, workload) combination."""

    num_enclaves: int
    total_gbps: float
    num_rules: int
    feasible: bool
    reason: str
    allocation: Optional[Allocation] = None
    peak_bandwidth_utilization: float = 0.0
    peak_rule_utilization: float = 0.0

    def as_row(self) -> List[object]:
        return [
            self.num_enclaves,
            "yes" if self.feasible else "no",
            f"{self.peak_bandwidth_utilization:.0%}" if self.feasible else "-",
            f"{self.peak_rule_utilization:.0%}" if self.feasible else "-",
            self.reason,
        ]


class ScaleOutPlanner:
    """Validates fleet sizes against attack workloads."""

    def __init__(
        self,
        enclave_bandwidth: float = 10 * GBPS,
        memory_model: EnclaveMemoryModel = PAPER_MEMORY_MODEL,
    ) -> None:
        if enclave_bandwidth <= 0:
            raise ConfigurationError("enclave bandwidth must be positive")
        self.enclave_bandwidth = enclave_bandwidth
        self.memory_model = memory_model

    def minimum_fleet(self, total_gbps: float, num_rules: int) -> int:
        """The smallest fleet that can possibly work (Appendix C bounds)."""
        if total_gbps <= 0 or num_rules <= 0:
            raise ConfigurationError("workload must be positive")
        by_bandwidth = total_gbps * GBPS / self.enclave_bandwidth
        by_rules = num_rules / max(1, self.memory_model.rule_capacity())
        return max(1, math.ceil(max(by_bandwidth, by_rules)))

    def assess(
        self,
        num_enclaves: int,
        total_gbps: float,
        num_rules: int,
        workload_seed: int = 0,
        solve: bool = True,
    ) -> ScaleOutAssessment:
        """Check one fleet size; optionally produce the concrete allocation.

        ``solve=False`` skips the greedy run (bounds check only), useful for
        sweeping many infeasible sizes cheaply.
        """
        if num_enclaves <= 0:
            raise ConfigurationError("fleet size must be positive")
        rule_capacity = self.memory_model.rule_capacity()
        if total_gbps * GBPS > num_enclaves * self.enclave_bandwidth:
            return ScaleOutAssessment(
                num_enclaves=num_enclaves,
                total_gbps=total_gbps,
                num_rules=num_rules,
                feasible=False,
                reason=(
                    f"bandwidth: {total_gbps:.0f} Gb/s exceeds "
                    f"{num_enclaves} x 10 Gb/s"
                ),
            )
        if num_rules > num_enclaves * rule_capacity:
            return ScaleOutAssessment(
                num_enclaves=num_enclaves,
                total_gbps=total_gbps,
                num_rules=num_rules,
                feasible=False,
                reason=(
                    f"rules: {num_rules} exceed {num_enclaves} x "
                    f"{rule_capacity} per enclave"
                ),
            )
        if not solve:
            return ScaleOutAssessment(
                num_enclaves=num_enclaves,
                total_gbps=total_gbps,
                num_rules=num_rules,
                feasible=True,
                reason="within bounds (not solved)",
            )

        bandwidths = lognormal_bandwidths(
            num_rules, total_gbps * GBPS, seed=workload_seed
        )
        problem = RuleDistributionProblem(
            bandwidths=bandwidths,
            enclave_bandwidth=self.enclave_bandwidth,
            memory_budget=self.memory_model.performance_budget_bytes,
            bytes_per_rule=self.memory_model.bytes_per_rule,
            base_bytes=self.memory_model.base_bytes,
            enclaves_override=num_enclaves,
        )
        try:
            allocation = greedy_solve(problem)
        except InfeasibleError as exc:
            return ScaleOutAssessment(
                num_enclaves=num_enclaves,
                total_gbps=total_gbps,
                num_rules=num_rules,
                feasible=False,
                reason=f"no packing found: {exc}",
            )
        violations = validate_allocation(allocation)
        if violations:
            return ScaleOutAssessment(
                num_enclaves=num_enclaves,
                total_gbps=total_gbps,
                num_rules=num_rules,
                feasible=False,
                reason=f"allocation invalid: {violations[0]}",
            )
        loads = [
            allocation.bandwidth_on(j) / self.enclave_bandwidth
            for j in range(len(allocation.assignments))
        ]
        rules = [
            len(allocation.assignments[j]) / max(1, problem.rule_capacity_per_enclave)
            for j in range(len(allocation.assignments))
        ]
        return ScaleOutAssessment(
            num_enclaves=num_enclaves,
            total_gbps=total_gbps,
            num_rules=num_rules,
            feasible=True,
            reason="allocation found",
            allocation=allocation,
            peak_bandwidth_utilization=max(loads),
            peak_rule_utilization=max(rules),
        )

    def sweep(
        self,
        fleet_sizes: Sequence[int],
        total_gbps: float,
        num_rules: int,
        solve_feasible: bool = True,
    ) -> List[ScaleOutAssessment]:
        """Assess several fleet sizes (bounds-only below the minimum)."""
        minimum = self.minimum_fleet(total_gbps, num_rules)
        out: List[ScaleOutAssessment] = []
        for n in fleet_sizes:
            solve = solve_feasible and n >= minimum
            out.append(self.assess(n, total_gbps, num_rules, solve=solve))
        return out
