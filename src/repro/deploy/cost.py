"""The paper's VI-D deployment cost analysis.

"With a commodity server cost [of] approximately US$2,000, the filtering
IXP only needs to spend ... US$100K [one-time] to offer an extremely large
defense capability of 500 Gb/s", amortizable over hundreds of member ASes
or recovered through victim service fees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deploy.capacity import CapacityPlanner
from repro.errors import ConfigurationError

#: Paper's commodity SGX server estimate.
SERVER_UNIT_COST_USD = 2_000.0


@dataclass(frozen=True)
class CostReport:
    """One-time capital expenditure breakdown for a VIF deployment."""

    target_gbps: float
    num_servers: int
    server_unit_cost_usd: float
    total_capex_usd: float
    member_ases: int
    capex_per_member_usd: float

    def as_rows(self):
        return [
            ["target capacity (Gb/s)", round(self.target_gbps, 1)],
            ["servers", self.num_servers],
            ["server unit cost (USD)", round(self.server_unit_cost_usd, 2)],
            ["total capex (USD)", round(self.total_capex_usd, 2)],
            ["member ASes", self.member_ases],
            ["capex per member (USD)", round(self.capex_per_member_usd, 2)],
        ]


def deployment_cost(
    target_gbps: float = 500.0,
    member_ases: int = 500,
    server_unit_cost_usd: float = SERVER_UNIT_COST_USD,
    planner: CapacityPlanner = None,
    headroom: float = 0.0,
) -> CostReport:
    """Compute the VI-D estimate.

    The paper's headline number uses exactly ``capacity / 10 Gb/s`` servers
    (no λ headroom), so ``headroom`` defaults to zero here.
    """
    if member_ases <= 0:
        raise ConfigurationError("member_ases must be positive")
    if server_unit_cost_usd <= 0:
        raise ConfigurationError("server cost must be positive")
    if planner is None:
        planner = CapacityPlanner(headroom=headroom)
    plan = planner.plan(target_gbps)
    capex = plan.num_servers * server_unit_cost_usd
    return CostReport(
        target_gbps=target_gbps,
        num_servers=plan.num_servers,
        server_unit_cost_usd=server_unit_cost_usd,
        total_capex_usd=capex,
        member_ases=member_ases,
        capex_per_member_usd=capex / member_ases,
    )
