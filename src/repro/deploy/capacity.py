"""Capacity planning for a VIF deployment (paper IV, VI-D).

Sizing follows the two per-enclave bottlenecks of section IV-A: 10 Gb/s of
traffic and ~3,000 filter rules.  One commodity server with four SGX cores
hosts one line-rate filter pipeline, so servers == enclaves in the default
plan (the paper's 500 Gb/s = 50 servers example).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.lookup.memory_model import EnclaveMemoryModel, PAPER_MEMORY_MODEL
from repro.tee.attestation import (
    AttestationTimingModel,
    PAPER_ATTESTATION_TIMING,
)
from repro.util.units import GBPS


@dataclass(frozen=True)
class CapacityPlan:
    """The result of sizing a deployment."""

    target_gbps: float
    total_rules: int
    num_enclaves: int
    num_servers: int
    num_racks: int
    setup_attestation_s: float

    def as_rows(self):
        return [
            ["target capacity (Gb/s)", round(self.target_gbps, 1)],
            ["filter rules", self.total_rules],
            ["enclaves", self.num_enclaves],
            ["servers", self.num_servers],
            ["racks", self.num_racks],
            ["attestation setup (s)", round(self.setup_attestation_s, 2)],
        ]


class CapacityPlanner:
    """Sizes enclave fleets for a capacity/rule target."""

    def __init__(
        self,
        enclave_bandwidth_bps: float = 10 * GBPS,
        memory_model: EnclaveMemoryModel = PAPER_MEMORY_MODEL,
        headroom: float = 0.1,
        servers_per_rack: int = 42,
        attestation_timing: AttestationTimingModel = PAPER_ATTESTATION_TIMING,
        parallel_attestations: int = 8,
    ) -> None:
        if enclave_bandwidth_bps <= 0:
            raise ConfigurationError("enclave bandwidth must be positive")
        if servers_per_rack <= 0:
            raise ConfigurationError("servers_per_rack must be positive")
        self.enclave_bandwidth_bps = enclave_bandwidth_bps
        self.memory_model = memory_model
        self.headroom = headroom
        self.servers_per_rack = servers_per_rack
        self.attestation_timing = attestation_timing
        self.parallel_attestations = parallel_attestations

    def plan(self, target_gbps: float, total_rules: int = 0) -> CapacityPlan:
        """Size a fleet for ``target_gbps`` of traffic and ``total_rules``.

        The enclave count is the max of the bandwidth-driven and
        rule-capacity-driven requirements, inflated by the optimizer's λ
        headroom (paper IV-B).
        """
        if target_gbps <= 0:
            raise ConfigurationError("target capacity must be positive")
        if total_rules < 0:
            raise ConfigurationError("total_rules must be non-negative")
        by_bandwidth = target_gbps * GBPS / self.enclave_bandwidth_bps
        rule_capacity = max(1, self.memory_model.rule_capacity())
        by_rules = total_rules / rule_capacity
        enclaves = max(1, math.ceil(max(by_bandwidth, by_rules) * (1 + self.headroom)))
        servers = enclaves  # one 4-core SGX pipeline per commodity server
        racks = math.ceil(servers / self.servers_per_rack)
        # Attestations run in parallel batches; each round trip dominated by
        # the IAS exchange (Appendix G).
        batches = math.ceil(enclaves / self.parallel_attestations)
        setup_s = batches * self.attestation_timing.end_to_end_s()
        return CapacityPlan(
            target_gbps=target_gbps,
            total_rules=total_rules,
            num_enclaves=enclaves,
            num_servers=servers,
            num_racks=racks,
            setup_attestation_s=setup_s,
        )
