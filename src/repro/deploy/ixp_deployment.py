"""A complete VIF deployment at an IXP from the inter-domain model.

Ties the pieces together (paper Fig 10): the IXP (with its member ASes as
potential neighbor auditors), a controller with an enclave fleet sized by
the capacity planner, and a redistribution protocol.  Victims open sessions
against the deployment; the example scripts drive full campaigns through
this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.bypass import NeighborAuditor
from repro.core.controller import IXPController
from repro.core.distribution import RuleDistributionProtocol
from repro.core.rules import RPKIRegistry
from repro.core.session import VIFSession
from repro.deploy.capacity import CapacityPlan, CapacityPlanner
from repro.errors import ConfigurationError
from repro.interdomain.ixp import IXP
from repro.tee.attestation import IASService


@dataclass
class IXPDeployment:
    """One VIF-enabled IXP."""

    ixp: IXP
    controller: IXPController
    protocol: RuleDistributionProtocol
    plan: CapacityPlan

    @classmethod
    def create(
        cls,
        ixp: IXP,
        target_gbps: float,
        ias: Optional[IASService] = None,
        expected_rules: int = 3000,
        planner: Optional[CapacityPlanner] = None,
    ) -> "IXPDeployment":
        """Stand up a deployment sized for ``target_gbps`` at ``ixp``."""
        if target_gbps <= 0:
            raise ConfigurationError("target capacity must be positive")
        planner = planner or CapacityPlanner()
        plan = planner.plan(target_gbps, total_rules=expected_rules)
        controller = IXPController(
            ias or IASService(service_name=f"ias-{ixp.ixp_id}"),
            enclave_secret_seed=f"vif/{ixp.ixp_id}",
        )
        controller.launch_filters(plan.num_enclaves, scale_out=plan.num_enclaves > 1)
        protocol = RuleDistributionProtocol(controller)
        return cls(ixp=ixp, controller=controller, protocol=protocol, plan=plan)

    def open_session(
        self,
        victim_name: str,
        rpki: RPKIRegistry,
        ias: IASService,
        audit_tolerance: int = 0,
    ) -> VIFSession:
        """A victim opens (and attests) a filtering session here."""
        session = VIFSession(
            victim_name,
            rpki,
            ias,
            self.controller,
            audit_tolerance=audit_tolerance,
        )
        session.attest_filters()
        return session

    def neighbor_auditors(self, limit: Optional[int] = None) -> Dict[int, NeighborAuditor]:
        """Auditors for (up to ``limit``) member ASes of this IXP."""
        members = sorted(self.ixp.members)
        if limit is not None:
            members = members[:limit]
        return {asn: NeighborAuditor(asn) for asn in members}

    @property
    def capacity_gbps(self) -> float:
        return self.plan.num_enclaves * 10.0
