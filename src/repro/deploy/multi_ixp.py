"""Multi-IXP defense campaigns: the operational face of Fig 11.

Fig 11 counts how many attack *sources* have a VIF IXP on their path; this
module closes the loop by actually running the defense: the victim opens a
session at each selected IXP, submits the same rules everywhere, and attack
traffic is filtered at the **first** VIF IXP its AS path crosses (or
reaches the victim unfiltered when no selected IXP is on path).  The result
is the end-to-end quantity operators care about — residual attack volume at
the victim as a function of how many IXPs offer VIF.

Everything composes from existing parts: the synthetic Internet and policy
routing pick the interception points; each interception point is a real
:class:`~repro.deploy.ixp_deployment.IXPDeployment` with attested enclaves,
sealed rule installs and sketch audits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.bypass import BypassEvidence
from repro.core.rules import FilterRule, RPKIRegistry
from repro.core.session import VIFSession
from repro.dataplane.packet import Packet
from repro.deploy.ixp_deployment import IXPDeployment
from repro.errors import ConfigurationError
from repro.interdomain.ixp import IXP, top_ixps_by_region
from repro.interdomain.routing import as_path, route_tree
from repro.interdomain.topology import ASGraph
from repro.tee.attestation import IASService

DeliveryFn = Callable[[Iterable[Packet]], List[Packet]]


@dataclass
class MitigationReport:
    """Outcome of one attack wave through the multi-IXP defense."""

    packets_sent: int = 0
    packets_filtered_at_ixps: int = 0
    packets_delivered: int = 0
    packets_unintercepted: int = 0
    per_ixp_processed: Dict[str, int] = field(default_factory=dict)

    @property
    def interception_ratio(self) -> float:
        """Fraction of attack packets that met a VIF filter (Fig 11's
        per-packet analogue)."""
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_unintercepted / self.packets_sent

    @property
    def residual_ratio(self) -> float:
        """Fraction of attack packets that reached the victim."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_delivered / self.packets_sent


class MultiIXPDefense:
    """A victim's VIF contracts across the Top-n IXPs of every region."""

    def __init__(
        self,
        graph: ASGraph,
        ixps: Sequence[IXP],
        victim_asn: int,
        victim_name: str,
        victim_prefix: str,
        top_n: int = 1,
        per_ixp_gbps: float = 20.0,
    ) -> None:
        if victim_asn not in graph:
            raise ConfigurationError(f"victim AS{victim_asn} not in topology")
        self.graph = graph
        self.victim_asn = victim_asn
        self.victim_name = victim_name
        self.victim_prefix = victim_prefix
        self.selected = top_ixps_by_region(ixps, top_n)
        self._routes = route_tree(graph, victim_asn)
        self._interception_cache: Dict[int, Optional[str]] = {}

        self.ias = IASService(service_name=f"ias-{victim_name}")
        self.rpki = RPKIRegistry()
        self.rpki.authorize(victim_name, victim_prefix)
        self._all_ixps = list(ixps)
        self._per_ixp_gbps = per_ixp_gbps
        self.deployments: Dict[str, IXPDeployment] = {}
        self.sessions: Dict[str, VIFSession] = {}
        #: Test/adversary hook: per-IXP delivery function replacing the
        #: honest ``controller.carry`` (e.g. a MaliciousFilteringNetwork).
        self.delivery_overrides: Dict[str, DeliveryFn] = {}
        self._installed_rules: List[FilterRule] = []
        for ixp in self.selected:
            self._contract(ixp)

    def _contract(self, ixp: IXP) -> None:
        deployment = IXPDeployment.create(
            ixp, target_gbps=self._per_ixp_gbps, ias=self.ias
        )
        self.deployments[ixp.ixp_id] = deployment
        self.sessions[ixp.ixp_id] = deployment.open_session(
            self.victim_name, self.rpki, self.ias
        )

    # -- contract management ---------------------------------------------------

    def submit_rules(self, rules: Sequence[FilterRule]) -> None:
        """Install the same rule set at every contracted IXP (paper VI-B)."""
        self._installed_rules = list(rules)
        for session in self.sessions.values():
            session.submit_rules(list(rules))

    def replace_contract(self, ixp_id: str) -> Optional[str]:
        """Drop a (misbehaving) IXP and contract its region's next-largest.

        The paper's remedy for detected misbehavior is to abort the
        contract; operationally the victim then wants a replacement
        interception point in the same region.  Returns the new IXP id, or
        None when the region has no uncontracted IXP left (the slot simply
        goes dark).  The old session stays in the audit log as evidence.
        """
        old = next((x for x in self.selected if x.ixp_id == ixp_id), None)
        if old is None:
            raise ConfigurationError(f"{ixp_id!r} is not a contracted IXP")
        self.sessions[ixp_id].abort()
        contracted = {x.ixp_id for x in self.selected}
        candidates = sorted(
            (
                x for x in self._all_ixps
                if x.region == old.region and x.ixp_id not in contracted
            ),
            key=lambda x: (-x.member_count, x.ixp_id),
        )
        self.selected = [x for x in self.selected if x.ixp_id != ixp_id]
        self.deployments.pop(ixp_id, None)
        self.sessions.pop(ixp_id, None)
        self.delivery_overrides.pop(ixp_id, None)
        self._interception_cache.clear()
        if not candidates:
            return None
        replacement = candidates[0]
        self.selected.append(replacement)
        self._contract(replacement)
        if self._installed_rules:
            self.sessions[replacement.ixp_id].submit_rules(
                list(self._installed_rules)
            )
        return replacement.ixp_id

    # -- path interception --------------------------------------------------------

    def interception_point(self, source_asn: int) -> Optional[str]:
        """The first selected IXP on the path source -> victim, or None.

        "First" is in forwarding order: filtering happens at the earliest
        VIF hop, closest to the source — the paper's motivation for pushing
        filters upstream.
        """
        if source_asn in self._interception_cache:
            return self._interception_cache[source_asn]
        path = as_path(self._routes, source_asn)
        found: Optional[str] = None
        if path is not None:
            for a, b in zip(path, path[1:]):
                for ixp in self.selected:
                    if a in ixp.members and b in ixp.members:
                        found = ixp.ixp_id
                        break
                if found:
                    break
        self._interception_cache[source_asn] = found
        return found

    # -- the attack wave --------------------------------------------------------------

    def carry_attack(
        self, packets_by_source: Sequence[Tuple[int, Packet]]
    ) -> MitigationReport:
        """Run one wave; each packet is (source ASN, packet).

        Packets crossing a contracted IXP go through its real deployment
        (and are observed by the victim's auditor for that session);
        unintercepted packets reach the victim directly.
        """
        report = MitigationReport()
        by_ixp: Dict[str, List[Packet]] = {}
        direct: List[Packet] = []
        for source_asn, packet in packets_by_source:
            report.packets_sent += 1
            ixp_id = self.interception_point(source_asn)
            if ixp_id is None:
                direct.append(packet)
            else:
                by_ixp.setdefault(ixp_id, []).append(packet)

        delivered: List[Packet] = list(direct)
        report.packets_unintercepted = len(direct)
        for ixp_id, packets in by_ixp.items():
            deployment = self.deployments[ixp_id]
            deliver = self.delivery_overrides.get(
                ixp_id, deployment.controller.carry
            )
            out = deliver(packets)
            report.per_ixp_processed[ixp_id] = len(packets)
            report.packets_filtered_at_ixps += len(packets) - len(out)
            self.sessions[ixp_id].observe_delivered(out)
            delivered.extend(out)

        report.packets_delivered = len(delivered)
        return report

    def carry_attack_by_ip(self, packets: Sequence[Packet]) -> MitigationReport:
        """Like :meth:`carry_attack`, deriving each packet's origin AS from
        its source address (requires the synthetic addressing plan —
        :mod:`repro.interdomain.addressing`).  Packets whose source lies
        outside the encoded space are treated as unintercepted.
        """
        from repro.interdomain.addressing import asn_of_ip

        pairs: List[Tuple[int, Packet]] = []
        for packet in packets:
            asn = asn_of_ip(packet.five_tuple.src_ip)
            pairs.append((asn if asn is not None and asn in self.graph else -1,
                          packet))
        return self.carry_attack(pairs)

    # -- verification ---------------------------------------------------------------------

    def audit_all(self) -> Dict[str, BypassEvidence]:
        """Run the sketch audit at every contracted IXP.

        Per-contract sessions isolate blame: a cheating IXP dirties only
        its own audit, so the victim knows exactly which contract to abort.
        """
        return {
            ixp_id: session.audit_round()
            for ixp_id, session in self.sessions.items()
        }

    def audit_and_replace(self) -> Tuple[Dict[str, BypassEvidence], List[str]]:
        """Audit every contract; replace the dirty ones.

        Returns ``(evidence_by_ixp, replacement_ixp_ids)``.
        """
        evidence = self.audit_all()
        replacements: List[str] = []
        for ixp_id, ev in list(evidence.items()):
            if not ev.clean:
                new_id = self.replace_contract(ixp_id)
                if new_id is not None:
                    replacements.append(new_id)
        return evidence, replacements

    @property
    def num_contracts(self) -> int:
        return len(self.sessions)
