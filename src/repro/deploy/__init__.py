"""Deployment planning at IXPs (paper VI-B, VI-D).

* :mod:`repro.deploy.capacity` — how many SGX servers/enclaves a target
  filtering capacity needs (10 Gb/s and ~3,000 rules per enclave);
* :mod:`repro.deploy.cost` — the paper's ballpark economics: 500 Gb/s from
  50 commodity servers ≈ US$100K one-time, amortizable over member ASes;
* :mod:`repro.deploy.ixp_deployment` — stands up a full VIF deployment
  (controller + enclave fleet sized by the planner) at an IXP from the
  inter-domain model.
"""

from repro.deploy.capacity import CapacityPlan, CapacityPlanner
from repro.deploy.cost import CostReport, deployment_cost
from repro.deploy.ixp_deployment import IXPDeployment
from repro.deploy.scaleout import ScaleOutAssessment, ScaleOutPlanner

__all__ = [
    "CapacityPlan",
    "CapacityPlanner",
    "CostReport",
    "IXPDeployment",
    "ScaleOutAssessment",
    "ScaleOutPlanner",
    "deployment_cost",
]
