"""Hash families for sketching.

The paper uses "2 independent linear hash functions" per sketch.  We derive
*all* of a key's row indexes from a **single SHA-256 digest**: the digest is
cut into 8-byte big-endian slices, one per row, and extended by counter-mode
rehashing when the family is deeper than four rows (32 bytes / 8).  That
costs ``ceil(depth / 4)`` digests per key — one at the paper's depth-2
configuration — instead of the one-digest-per-row scheme this replaced,
while staying stable across processes, which is required because the victim
and the enclave each build sketches locally and then compare them bin by
bin.

The derivation is **version-tagged** (:data:`FAMILY_VERSION`).  Two parties
can only compare sketches built under the same derivation, so the version
participates in :meth:`HashFamily.compatible_with` and travels inside the
serialized sketch blob — a blob hashed under a different derivation fails
loudly at deserialization instead of comparing garbage bins.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, Union

from repro.obs import LazyCounter

Key = Union[str, bytes]

#: Version of the index derivation scheme.  Version 1 was one salted SHA-256
#: per row (``"<seed>/row-<r>"`` salts); version 2 is the single-digest
#: slicing above.  Bump whenever the key → indexes mapping changes.
FAMILY_VERSION = 2

_DIGESTS = LazyCounter(
    "vif_fastpath_sha256_digests_total",
    help="SHA-256 digests computed by data-path hashing",
)

#: Rows served by one SHA-256 digest (32 bytes / 8 bytes per row).
_ROWS_PER_DIGEST = 4


class HashFamily:
    """A family of ``depth`` independent hash functions onto ``width`` bins.

    Two parties comparing sketches must construct them with the same
    ``family_seed`` *and derivation version* — in VIF the seed is part of
    the filtering contract the victim negotiates over the secure channel,
    and the version rides in the serialized blob.
    """

    version = FAMILY_VERSION

    def __init__(self, depth: int, width: int, family_seed: str = "vif") -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        if width <= 0:
            raise ValueError("width must be positive")
        self.depth = depth
        self.width = width
        self.family_seed = family_seed
        # One precomputed prefix per digest block: seed, a one-byte domain
        # tag, the 4-byte block counter, and a separator before the key.
        blocks = (depth + _ROWS_PER_DIGEST - 1) // _ROWS_PER_DIGEST
        self._block_prefixes: List[bytes] = [
            family_seed.encode("utf-8") + b"\x02" + block.to_bytes(4, "big") + b"\x00"
            for block in range(blocks)
        ]
        self._sha256 = hashlib.sha256  # bound once; the hot path calls this

    # -- derivation ---------------------------------------------------------

    def _digest_bytes(self, key: bytes) -> bytes:
        """Concatenated counter-mode digests covering all ``depth`` rows."""
        prefixes = self._block_prefixes
        _DIGESTS.inc(len(prefixes))
        sha256 = self._sha256
        if len(prefixes) == 1:  # the common (depth <= 4) single-digest case
            return sha256(prefixes[0] + key).digest()
        return b"".join(sha256(prefix + key).digest() for prefix in prefixes)

    def indexes(self, key: Key) -> Sequence[int]:
        """Return the bin index of ``key`` in each of the ``depth`` rows."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        buf = self._digest_bytes(key)
        width = self.width
        from_bytes = int.from_bytes
        return [
            from_bytes(buf[8 * row : 8 * row + 8], "big") % width
            for row in range(self.depth)
        ]

    def lanes(self, key: Key) -> List[int]:
        """The raw 64-bit digest slices for ``key``, *before* the width modulus.

        One slice per row, in row order — :meth:`indexes` is exactly
        ``[lane % width for lane in lanes(key)]``.  Callers that need the
        same key hashed into *differently sized* spaces (the membership
        tier's Bloom bit array and cuckoo bucket array) take the lanes once
        and apply their own moduli, paying a single digest per key.
        """
        if isinstance(key, str):
            key = key.encode("utf-8")
        buf = self._digest_bytes(key)
        from_bytes = int.from_bytes
        return [
            from_bytes(buf[8 * row : 8 * row + 8], "big")
            for row in range(self.depth)
        ]

    def index_vectors(self, keys: Iterable[Key]) -> List[List[int]]:
        """Per-row index vectors for a batch of keys (bulk sketch updates).

        ``result[row][k]`` is the bin of ``keys[k]`` in ``row`` — the same
        values :meth:`indexes` yields key by key (it is literally a
        transpose of per-key :meth:`indexes` calls), but laid out so a
        caller can walk one counter row at a time.
        """
        per_key = [self.indexes(key) for key in keys]
        if not per_key:
            return [[] for _ in range(self.depth)]
        return [list(row) for row in zip(*per_key)]

    def compatible_with(self, other: "HashFamily") -> bool:
        """True when two families hash identically (same derivation/seed/shape)."""
        return (
            self.version == other.version
            and self.depth == other.depth
            and self.width == other.width
            and self.family_seed == other.family_seed
        )
