"""Hash families for sketching.

The paper uses "2 independent linear hash functions" per sketch.  We derive
each row's hash from SHA-256 with a distinct salt (see
:func:`repro.util.rng.stable_hash64`), which is stable across processes —
required because the victim and the enclave each build sketches locally and
then compare them bin by bin.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.util.rng import stable_hash64

Key = Union[str, bytes]


class HashFamily:
    """A family of ``depth`` independent hash functions onto ``width`` bins.

    Two parties comparing sketches must construct them with the same
    ``family_seed`` — in VIF this seed is part of the filtering contract the
    victim negotiates over the secure channel.
    """

    def __init__(self, depth: int, width: int, family_seed: str = "vif") -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        if width <= 0:
            raise ValueError("width must be positive")
        self.depth = depth
        self.width = width
        self.family_seed = family_seed
        self._salts: List[bytes] = [
            f"{family_seed}/row-{row}".encode("utf-8") for row in range(depth)
        ]

    def indexes(self, key: Key) -> Sequence[int]:
        """Return the bin index of ``key`` in each of the ``depth`` rows."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        return [stable_hash64(key, salt) % self.width for salt in self._salts]

    def index_vectors(self, keys: Iterable[Key]) -> List[List[int]]:
        """Per-row index vectors for a batch of keys (bulk sketch updates).

        ``result[row][k]`` is the bin of ``keys[k]`` in ``row`` — the same
        values ``indexes`` yields key by key, but laid out so a caller can
        walk one counter row at a time.
        """
        encoded = [
            key.encode("utf-8") if isinstance(key, str) else key for key in keys
        ]
        width = self.width
        return [
            [stable_hash64(key, salt) % width for key in encoded]
            for salt in self._salts
        ]

    def compatible_with(self, other: "HashFamily") -> bool:
        """True when two families hash identically (same seed/shape)."""
        return (
            self.depth == other.depth
            and self.width == other.width
            and self.family_seed == other.family_seed
        )
