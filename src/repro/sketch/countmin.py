"""Count-min sketch (Cormode & Muthukrishnan) with 64-bit saturating counters.

Configuration defaults follow the paper (section V-A): depth 2, width 64 K,
64-bit counters — about 1 MB of enclave memory per instance.  The sketch
supports the operations VIF needs: point update/query, merge (for sketches
collected from parallel enclaves), serialization (the victim fetches the
authenticated sketch over the secure channel), and exact bin-wise access for
discrepancy detection.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from repro.sketch.hashing import HashFamily

Key = Union[str, bytes]

#: Paper configuration: "2 independent linear hash functions, 64K sketch
#: bins, and 64 bit counters".
PAPER_DEPTH = 2
PAPER_WIDTH = 64 * 1024
_COUNTER_MAX = 2**64 - 1


class CountMinSketch:
    """A count-min sketch over string/bytes keys.

    The estimate returned by :meth:`estimate` never underestimates the true
    count (the classic CM guarantee), which is what makes the bypass
    detection sound: a *lower* enclave count than the victim's for any key is
    impossible unless packets were dropped or injected outside the enclave.
    """

    def __init__(
        self,
        depth: int = PAPER_DEPTH,
        width: int = PAPER_WIDTH,
        family_seed: str = "vif",
    ) -> None:
        self.family = HashFamily(depth, width, family_seed)
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self._total = 0

    # -- core operations ---------------------------------------------------

    def update(self, key: Key, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key`` (count may be any positive int)."""
        if count <= 0:
            raise ValueError("count must be positive")
        for row, idx in zip(self._rows, self.family.indexes(key)):
            row[idx] = min(row[idx] + count, _COUNTER_MAX)
        self._total += count

    def estimate(self, key: Key) -> int:
        """Upper-bounded frequency estimate of ``key`` (never underestimates)."""
        return min(
            row[idx] for row, idx in zip(self._rows, self.family.indexes(key))
        )

    @property
    def total(self) -> int:
        """Total number of updates applied (exact, not estimated)."""
        return self._total

    @property
    def depth(self) -> int:
        return self.family.depth

    @property
    def width(self) -> int:
        return self.family.width

    # -- composition -------------------------------------------------------

    def merge(self, other: "CountMinSketch") -> None:
        """Add ``other``'s counters into this sketch (same family required).

        Used when the victim aggregates the outgoing logs of several parallel
        enclaves into a single comparable log.
        """
        if not self.family.compatible_with(other.family):
            raise ValueError("cannot merge sketches with different hash families")
        for mine, theirs in zip(self._rows, other._rows):
            for i, value in enumerate(theirs):
                mine[i] = min(mine[i] + value, _COUNTER_MAX)
        self._total += other._total

    def copy(self) -> "CountMinSketch":
        """Deep copy, preserving the hash family."""
        clone = CountMinSketch(self.depth, self.width, self.family.family_seed)
        clone._rows = [row[:] for row in self._rows]
        clone._total = self._total
        return clone

    def clear(self) -> None:
        """Reset all counters (start of a new filtering round)."""
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        self._total = 0

    # -- inspection / transport ---------------------------------------------

    def bins(self) -> List[Tuple[int, ...]]:
        """Return the raw counter matrix as a list of row tuples."""
        return [tuple(row) for row in self._rows]

    def nonzero_bins(self) -> Dict[Tuple[int, int], int]:
        """Sparse view ``{(row, index): count}`` of non-zero counters."""
        sparse: Dict[Tuple[int, int], int] = {}
        for r, row in enumerate(self._rows):
            for i, value in enumerate(row):
                if value:
                    sparse[(r, i)] = value
        return sparse

    def memory_bytes(self) -> int:
        """Enclave memory footprint of the counters (8 bytes per bin)."""
        return self.depth * self.width * 8

    def serialize(self) -> bytes:
        """Serialize counters for transport over the secure channel."""
        out = bytearray()
        out += self.depth.to_bytes(4, "big")
        out += self.width.to_bytes(4, "big")
        seed = self.family.family_seed.encode("utf-8")
        out += len(seed).to_bytes(4, "big")
        out += seed
        for row in self._rows:
            for value in row:
                out += value.to_bytes(8, "big")
        return bytes(out)

    @classmethod
    def deserialize(cls, blob: bytes) -> "CountMinSketch":
        """Inverse of :meth:`serialize`."""
        if len(blob) < 12:
            raise ValueError("sketch blob too short")
        depth = int.from_bytes(blob[0:4], "big")
        width = int.from_bytes(blob[4:8], "big")
        seed_len = int.from_bytes(blob[8:12], "big")
        offset = 12
        seed = blob[offset : offset + seed_len].decode("utf-8")
        offset += seed_len
        expected = offset + depth * width * 8
        if len(blob) != expected:
            raise ValueError(
                f"sketch blob length {len(blob)} does not match header "
                f"(expected {expected})"
            )
        sketch = cls(depth, width, seed)
        total = 0
        for r in range(depth):
            row = sketch._rows[r]
            for i in range(width):
                row[i] = int.from_bytes(blob[offset : offset + 8], "big")
                offset += 8
            total = max(total, sum(row))
        # The exact total is not carried in the blob; the max row sum equals
        # it as long as counters never saturated, which holds at VIF scales.
        sketch._total = total
        return sketch

    def update_many(self, keys: Iterable[Key]) -> None:
        """Bulk update convenience used by the data-plane pipeline."""
        for key in keys:
            self.update(key)
