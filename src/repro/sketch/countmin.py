"""Count-min sketch (Cormode & Muthukrishnan) with 64-bit saturating counters.

Configuration defaults follow the paper (section V-A): depth 2, width 64 K,
64-bit counters — about 1 MB of enclave memory per instance.  Counter rows
are flat ``array('Q')`` buffers (one machine word per bin, as the C enclave
would keep them) rather than Python lists, which keeps the memory footprint
honest and makes the bulk data-path update a tight loop.  The sketch
supports the operations VIF needs: point update/query, bulk update (the
burst ECall fast path), merge (for sketches collected from parallel
enclaves), serialization (the victim fetches the authenticated sketch over
the secure channel), and exact bin-wise access for discrepancy detection.
"""

from __future__ import annotations

import sys
import time
from array import array
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro import obs
from repro.sketch.hashing import FAMILY_VERSION, HashFamily

Key = Union[str, bytes]

#: Paper configuration: "2 independent linear hash functions, 64K sketch
#: bins, and 64 bit counters".
PAPER_DEPTH = 2
PAPER_WIDTH = 64 * 1024
_COUNTER_MAX = 2**64 - 1

#: Serialized-blob format version.  Version 2 added the leading version byte
#: and the exact update total (version-1 blobs reconstructed the total as
#: the max row sum, which silently diverges once any counter saturates).
#: Version 3 added the hash-family derivation version byte: counters hashed
#: under a different key → bin derivation must fail at deserialization, not
#: compare garbage bins during a bypass audit.
BLOB_VERSION = 3


def _zero_row(width: int) -> array:
    """A fresh all-zero counter row (``array('Q')`` of ``width`` bins)."""
    return array("Q", bytes(8 * width))


class CountMinSketch:
    """A count-min sketch over string/bytes keys.

    The estimate returned by :meth:`estimate` never underestimates the true
    count (the classic CM guarantee), which is what makes the bypass
    detection sound: a *lower* enclave count than the victim's for any key is
    impossible unless packets were dropped or injected outside the enclave.
    """

    def __init__(
        self,
        depth: int = PAPER_DEPTH,
        width: int = PAPER_WIDTH,
        family_seed: str = "vif",
    ) -> None:
        self.family = HashFamily(depth, width, family_seed)
        self._rows: List[array] = [_zero_row(width) for _ in range(depth)]
        self._total = 0
        # One cumulative counter for all sketches (no per-instance label:
        # sketches are created per round and a label per instance would
        # leak series).  Cached so the hot path pays two attribute loads.
        self._updates_c = obs.get_registry().counter(
            "vif_sketch_updates_total",
            help="Key updates applied across all count-min sketches",
        )

    # -- core operations ---------------------------------------------------

    def update(self, key: Key, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key`` (count may be any positive int)."""
        if count <= 0:
            raise ValueError("count must be positive")
        for row, idx in zip(self._rows, self.family.indexes(key)):
            value = row[idx] + count
            row[idx] = value if value <= _COUNTER_MAX else _COUNTER_MAX
        self._total += count
        self._updates_c.inc()

    def update_many(self, keys: Iterable[Key], count: int = 1) -> int:
        """Bulk update: add ``count`` occurrences of every key in ``keys``.

        The data-plane burst path: hash indexes for the whole batch are
        precomputed per row (:meth:`HashFamily.index_vectors`), then each
        counter row is walked once — equivalent to calling :meth:`update`
        per key, without the per-key dispatch.  Returns the number of keys
        applied.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        keys = list(keys)
        if not keys:
            return 0
        timed = obs.timing_enabled()
        start = time.perf_counter() if timed else 0.0
        for row, indexes in zip(self._rows, self.family.index_vectors(keys)):
            for idx in indexes:
                value = row[idx] + count
                row[idx] = value if value <= _COUNTER_MAX else _COUNTER_MAX
        self._total += count * len(keys)
        self._updates_c.inc(len(keys))
        if timed:
            obs.get_registry().histogram(
                "vif_sketch_update_many_seconds",
                help="Bulk sketch update cost per batch (timing-enabled only)",
            ).observe(time.perf_counter() - start)
        return len(keys)

    def update_weighted(self, counts: Mapping[Key, int]) -> int:
        """Bulk update with a per-key multiplicity: ``{key: count}``.

        The flow-coalesced burst path: a burst's keys are pre-aggregated by
        the caller, so each *unique* key is hashed once and its counter bins
        advance by the full multiplicity.  Bit-identical to calling
        :meth:`update` once per occurrence (counter addition commutes, and
        saturation clamps at the same ceiling either way).  Returns the
        number of occurrences applied.
        """
        total = 0
        rows = self._rows
        family_indexes = self.family.indexes
        for key, count in counts.items():
            if count <= 0:
                raise ValueError("count must be positive")
            for row, idx in zip(rows, family_indexes(key)):
                value = row[idx] + count
                row[idx] = value if value <= _COUNTER_MAX else _COUNTER_MAX
            total += count
        self._total += total
        self._updates_c.inc(total)
        return total

    def estimate(self, key: Key) -> int:
        """Upper-bounded frequency estimate of ``key`` (never underestimates)."""
        return min(
            row[idx] for row, idx in zip(self._rows, self.family.indexes(key))
        )

    @property
    def total(self) -> int:
        """Total number of updates applied (exact, not estimated)."""
        return self._total

    @property
    def depth(self) -> int:
        return self.family.depth

    @property
    def width(self) -> int:
        return self.family.width

    # -- composition -------------------------------------------------------

    def merge(self, other: "CountMinSketch") -> None:
        """Add ``other``'s counters into this sketch (same family required).

        Used when the victim aggregates the outgoing logs of several parallel
        enclaves — or the coordinator the per-worker sketches of the sharded
        data plane — into a single comparable log.

        The merged occurrences are accounted into ``vif_sketch_updates_total``
        exactly like :meth:`update_weighted` would account them (``other``'s
        exact total), so the registry's books balance against the counts
        *applied to this instance* even when the updates originally happened
        in another process whose registry this one never saw.

        Rows are added word-wise: each 64-bit counter row is reinterpreted as
        one little-endian big integer and the two integers are summed — lane
        sums below 2**64 cannot carry across lanes, so a single bignum add is
        exactly bin-wise addition without a Python-level loop over 64 K bins.
        Rows where saturation is possible (``max(a) + max(b)`` would
        overflow a lane) fall back to the per-bin saturating loop.
        """
        if not self.family.compatible_with(other.family):
            raise ValueError("cannot merge sketches with different hash families")
        nbytes = 8 * self.width
        for r, theirs in enumerate(other._rows):
            their_max = max(theirs)
            if not their_max:
                continue  # all-zero row: nothing to add
            mine = self._rows[r]
            if max(mine) + their_max <= _COUNTER_MAX:
                a, b = mine, theirs
                if sys.byteorder != "little":
                    a, b = a[:], b[:]
                    a.byteswap()
                    b.byteswap()
                summed = int.from_bytes(a.tobytes(), "little") + int.from_bytes(
                    b.tobytes(), "little"
                )
                merged = array("Q")
                merged.frombytes(summed.to_bytes(nbytes, "little"))
                if sys.byteorder != "little":
                    merged.byteswap()
                self._rows[r] = merged
            else:  # saturation possible: clamp bin by bin
                for i, value in enumerate(theirs):
                    if value:
                        total = mine[i] + value
                        mine[i] = total if total <= _COUNTER_MAX else _COUNTER_MAX
        self._total += other._total
        if other._total:
            self._updates_c.inc(other._total)

    def copy(self) -> "CountMinSketch":
        """Deep copy, preserving the hash family."""
        clone = CountMinSketch(self.depth, self.width, self.family.family_seed)
        clone._rows = [row[:] for row in self._rows]
        clone._total = self._total
        return clone

    def clear(self) -> None:
        """Reset all counters (start of a new filtering round)."""
        self._rows = [_zero_row(self.width) for _ in range(self.depth)]
        self._total = 0

    # -- inspection / transport ---------------------------------------------

    def bins(self) -> List[Tuple[int, ...]]:
        """Return the raw counter matrix as a list of row tuples."""
        return [tuple(row) for row in self._rows]

    def nonzero_bins(self) -> Dict[Tuple[int, int], int]:
        """Sparse view ``{(row, index): count}`` of non-zero counters."""
        sparse: Dict[Tuple[int, int], int] = {}
        for r, row in enumerate(self._rows):
            for i, value in enumerate(row):
                if value:
                    sparse[(r, i)] = value
        return sparse

    def memory_bytes(self) -> int:
        """Enclave memory footprint of the counters (8 bytes per bin)."""
        return self.depth * self.width * 8

    def serialize(self) -> bytes:
        """Serialize counters for transport over the secure channel.

        Blob layout (version :data:`BLOB_VERSION`): 1-byte blob version,
        1-byte hash-family derivation version
        (:data:`~repro.sketch.hashing.FAMILY_VERSION`), 4-byte depth, 4-byte
        width, 4-byte seed length, the seed, 4-byte total length plus the
        exact update total (big-endian, arbitrary precision — the total is
        exact even past counter saturation), then the counter rows as
        little-endian 64-bit words.
        """
        out = bytearray()
        out += BLOB_VERSION.to_bytes(1, "big")
        out += self.family.version.to_bytes(1, "big")
        out += self.depth.to_bytes(4, "big")
        out += self.width.to_bytes(4, "big")
        seed = self.family.family_seed.encode("utf-8")
        out += len(seed).to_bytes(4, "big")
        out += seed
        total_bytes = self._total.to_bytes((self._total.bit_length() + 7) // 8, "big")
        out += len(total_bytes).to_bytes(4, "big")
        out += total_bytes
        for row in self._rows:
            if sys.byteorder != "little":
                row = row[:]
                row.byteswap()
            out += row.tobytes()
        return bytes(out)

    @classmethod
    def deserialize(cls, blob: bytes) -> "CountMinSketch":
        """Inverse of :meth:`serialize`; rejects unknown format versions."""
        if len(blob) < 18:
            raise ValueError("sketch blob too short")
        version = blob[0]
        if version != BLOB_VERSION:
            raise ValueError(
                f"unsupported sketch blob version {version} "
                f"(expected {BLOB_VERSION})"
            )
        family_version = blob[1]
        if family_version != FAMILY_VERSION:
            raise ValueError(
                f"sketch hashed under family derivation v{family_version}; "
                f"this process derives v{FAMILY_VERSION} — bins are not "
                "comparable"
            )
        depth = int.from_bytes(blob[2:6], "big")
        width = int.from_bytes(blob[6:10], "big")
        seed_len = int.from_bytes(blob[10:14], "big")
        offset = 14
        seed = blob[offset : offset + seed_len].decode("utf-8")
        offset += seed_len
        if len(blob) < offset + 4:
            raise ValueError("sketch blob truncated before total")
        total_len = int.from_bytes(blob[offset : offset + 4], "big")
        offset += 4
        if len(blob) < offset + total_len:
            # Without this check a blob cut inside the total silently parses
            # a short (garbage) total and fails later with a misleading
            # trailing-length mismatch.
            raise ValueError("sketch blob truncated before total")
        total = int.from_bytes(blob[offset : offset + total_len], "big")
        offset += total_len
        expected = offset + depth * width * 8
        if len(blob) != expected:
            raise ValueError(
                f"sketch blob length {len(blob)} does not match header "
                f"(expected {expected})"
            )
        sketch = cls(depth, width, seed)
        for r in range(depth):
            row = array("Q")
            row.frombytes(blob[offset : offset + width * 8])
            if sys.byteorder != "little":
                row.byteswap()
            sketch._rows[r] = row
            offset += width * 8
        sketch._total = total
        return sketch
