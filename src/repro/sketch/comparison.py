"""Sketch discrepancy detection for VIF bypass auditing (paper III-B).

The victim compares the enclave's authenticated **outgoing** log with its own
locally measured sketch of what it actually received; a neighbor AS compares
its own sketch of what it handed to the filtering network with the enclave's
**incoming** log.  Bin-wise differences classify the misbehavior:

* enclave bin > observer bin  →  packets the enclave forwarded (or logged as
  arrived) never reached the observer: *drop after filtering* (victim view)
  or packets vanished before the filter (neighbor view cannot see this side).
* observer bin > enclave bin  →  the observer saw packets the enclave never
  forwarded/received: *injection after filtering* (victim view) or *drop
  before filtering* (neighbor view).

A small ``tolerance`` absorbs benign loss on the path between the filter and
the observer; sustained discrepancies above it are reported as evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sketch.countmin import CountMinSketch


@dataclass(frozen=True)
class Discrepancy:
    """One sketch bin whose counters disagree beyond tolerance."""

    row: int
    index: int
    enclave_count: int
    observer_count: int

    @property
    def missing_at_observer(self) -> int:
        """Packets the enclave logged that the observer never saw."""
        return max(0, self.enclave_count - self.observer_count)

    @property
    def extra_at_observer(self) -> int:
        """Packets the observer saw that the enclave never logged."""
        return max(0, self.observer_count - self.enclave_count)


@dataclass
class SketchComparison:
    """Result of comparing an enclave sketch against an observer sketch.

    ``total_missing``/``total_extra`` estimate the number of *packets*
    affected: per-bin differences are summed within each hash row and the
    maximum row total is reported (every packet lands once per row, so each
    row's sum independently estimates the same quantity).

    The sketch geometry (``depth``/``width``) and the exact update totals
    of both sides ride along so downstream scoring (the audit timeline)
    can normalize divergence by the count-min error budget ``ε·N`` without
    holding references to the sketches themselves.
    """

    discrepancies: List[Discrepancy] = field(default_factory=list)
    total_missing: int = 0
    total_extra: int = 0
    depth: int = 0
    width: int = 0
    enclave_total: int = 0
    observer_total: int = 0

    @property
    def clean(self) -> bool:
        """True when no bin disagrees beyond tolerance."""
        return not self.discrepancies

    @property
    def drop_suspected(self) -> bool:
        """Enclave counted packets the observer never received."""
        return self.total_missing > 0

    @property
    def injection_suspected(self) -> bool:
        """Observer received packets the enclave never logged."""
        return self.total_extra > 0


def compare_sketches(
    enclave_sketch: CountMinSketch,
    observer_sketch: CountMinSketch,
    tolerance: int = 0,
) -> SketchComparison:
    """Compare two sketches bin-by-bin and aggregate the discrepancies.

    ``tolerance`` is the per-bin absolute slack (in packets) below which a
    difference is attributed to benign loss and ignored.
    """
    if not enclave_sketch.family.compatible_with(observer_sketch.family):
        raise ValueError("sketches use different hash families; cannot compare")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")

    result = SketchComparison(
        depth=enclave_sketch.depth,
        width=enclave_sketch.width,
        enclave_total=enclave_sketch.total,
        observer_total=observer_sketch.total,
    )
    enclave_rows = enclave_sketch.bins()
    observer_rows = observer_sketch.bins()
    for r, (erow, orow) in enumerate(zip(enclave_rows, observer_rows)):
        row_missing = 0
        row_extra = 0
        for i, (e, o) in enumerate(zip(erow, orow)):
            if abs(e - o) <= tolerance:
                continue
            disc = Discrepancy(row=r, index=i, enclave_count=e, observer_count=o)
            result.discrepancies.append(disc)
            row_missing += disc.missing_at_observer
            row_extra += disc.extra_at_observer
        result.total_missing = max(result.total_missing, row_missing)
        result.total_extra = max(result.total_extra, row_extra)
    return result
