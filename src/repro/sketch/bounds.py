"""Count-min error bounds (Cormode & Muthukrishnan 2005).

For a sketch of width ``w`` and depth ``d`` over a stream of ``N`` updates:

* every estimate satisfies ``truth <= estimate`` (always), and
* ``estimate <= truth + (e / w) * N`` with probability ``>= 1 - e^-d``.

These utilities size sketches for a target (ε, δ) and quantify what the
paper's 2 x 64 K configuration guarantees — used by the sketch-accuracy
ablation and by operators choosing per-victim sketch budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ErrorBound:
    """The (ε, δ) guarantee of a sketch configuration."""

    width: int
    depth: int

    @property
    def epsilon(self) -> float:
        """Additive error factor: estimates exceed truth by ≤ ε·N w.h.p."""
        return math.e / self.width

    @property
    def delta(self) -> float:
        """Failure probability of the ε bound per query."""
        return math.exp(-self.depth)

    def max_overcount(self, total_updates: int) -> float:
        """The w.h.p. additive error after ``total_updates`` updates."""
        if total_updates < 0:
            raise ValueError("total_updates must be non-negative")
        return self.epsilon * total_updates

    def memory_bytes(self, counter_bytes: int = 8) -> int:
        """Sketch footprint under the given counter size."""
        return self.width * self.depth * counter_bytes


def paper_bound() -> ErrorBound:
    """The paper's configuration: 64 K bins x 2 rows."""
    return ErrorBound(width=64 * 1024, depth=2)


def dimensions_for(epsilon: float, delta: float) -> ErrorBound:
    """Smallest (width, depth) achieving additive error ε·N with
    failure probability ≤ δ."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    width = math.ceil(math.e / epsilon)
    depth = math.ceil(math.log(1.0 / delta))
    return ErrorBound(width=width, depth=depth)
